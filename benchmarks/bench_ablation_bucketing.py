"""Ablation: bucketing backends (Julienne vs Fibonacci heap vs dense array).

The paper proves Theorem 4.2 with the batch-parallel Fibonacci heap but
ships Julienne "which we found to be more efficient in practice"; the
appendix adds the dense-array variant that trades s-clique-proportional
space for full work-efficiency.  This ablation quantifies that choice on
our surrogates: identical outputs, different bucketing work.
"""

from repro.core.config import NucleusConfig
from repro.experiments.harness import format_table, run_arb
from repro.graph.datasets import load_dataset

GRAPHS = ["dblp", "skitter"]
BACKENDS = ["julienne", "fibonacci", "dense"]


def test_ablation_bucketing(benchmark):
    def run():
        rows = []
        for name in GRAPHS:
            graph = load_dataset(name)
            outputs = {}
            for backend in BACKENDS:
                cfg = NucleusConfig(bucketing=backend)
                arb = run_arb(graph, 2, 3, cfg, name)
                outputs[backend] = arb.result.max_core
                rows.append({
                    "graph": name, "backend": backend,
                    "T60": arb.time_parallel,
                    "bucket_work": arb.result.tracker.phases["peel"].work
                    + arb.result.tracker.phases["bucket"].work,
                    "max_core": arb.result.max_core,
                })
            assert len(set(outputs.values())) == 1  # identical answers
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, ["graph", "backend", "T60", "bucket_work",
                              "max_core"],
                       "Bucketing backend ablation, (2,3)"))
    # Julienne (the paper's practical choice) is never the slowest option.
    for name in GRAPHS:
        times = {row["backend"]: row["T60"] for row in rows
                 if row["graph"] == name}
        assert times["julienne"] <= 1.2 * min(times.values())
