"""Ablation: O(alpha)-orientation algorithms.

The clique-listing work depends on the orientation's maximum out-degree.
The exact degeneracy (smallest-last) order minimizes it but is inherently
sequential; the parallel Goodrich--Pszona and Barenboim--Elkin orders pay a
(2 + eps) approximation factor for O(log n) rounds; plain degree ordering
is cheapest but loosest.  This ablation measures all four on the (3,4)
decomposition: out-degree bound, orientation cost, and end-to-end time.
"""

from repro.core.config import NucleusConfig
from repro.cliques.orient import orient
from repro.experiments.harness import format_table, run_arb
from repro.graph.datasets import load_dataset

GRAPHS = ["dblp", "skitter"]
METHODS = ["degeneracy", "goodrich_pszona", "barenboim_elkin", "degree"]


def test_ablation_orientation(benchmark):
    def run():
        rows = []
        for name in GRAPHS:
            graph = load_dataset(name)
            outputs = set()
            for method in METHODS:
                dg, _ = orient(graph, method)
                cfg = NucleusConfig(orientation=method)
                arb = run_arb(graph, 3, 4, cfg, name)
                outputs.add(arb.result.max_core)
                rows.append({
                    "graph": name, "method": method,
                    "max_out_degree": dg.max_out_degree,
                    "orient_span": arb.result.tracker.phases["orient"].span,
                    "T60": arb.time_parallel,
                })
            assert len(outputs) == 1  # the orientation never changes output
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, ["graph", "method", "max_out_degree",
                              "orient_span", "T60"],
                       "Orientation algorithm ablation, (3,4)"))
    for name in GRAPHS:
        stats = {row["method"]: row for row in rows if row["graph"] == name}
        # Degeneracy gives the tightest out-degree bound...
        assert stats["degeneracy"]["max_out_degree"] == min(
            s["max_out_degree"] for s in stats.values())
        # ...but is serial: the parallel orders have far shorter spans.
        assert stats["goodrich_pszona"]["orient_span"] < \
            0.2 * stats["degeneracy"]["orient_span"]
        # The parallel orders stay within the (2+eps) guarantee.
        assert stats["goodrich_pszona"]["max_out_degree"] <= \
            4 * stats["degeneracy"]["max_out_degree"] + 4
