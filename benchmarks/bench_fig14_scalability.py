"""Figure 14: self-relative speedup versus thread count.

(2,3), (2,4), and (3,4) on the dblp, skitter, and livejournal surrogates,
evaluated on the simulated 30-core (60 hyper-thread) machine at 1..60
threads.  The paper's curves are near-linear up to the physical core count
and flatten across the hyper-threading region; the model reproduces both.
"""

from repro.experiments.figures import fig14

GRAPHS = ["dblp", "skitter", "livejournal"]
RS = [(2, 3), (2, 4), (3, 4)]
THREADS = [1, 2, 4, 8, 16, 30, 60]


def test_fig14_scalability(figure):
    result = figure(fig14, graphs=GRAPHS, rs_list=RS,
                    thread_counts=THREADS)
    for row in result.rows:
        speedups = [row[f"S{p}"] for p in THREADS]
        # Monotone scaling, near-linear at low thread counts.
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert row["S2"] > 1.5
        # Overall self-relative speedup in the paper's 3.31-40.14x band.
        assert 3.0 < row["S60"] <= 45.0
        # Hyper-threads yield less than physical cores: the 30->60 gain is
        # far below 2x.
        assert row["S60"] / row["S30"] < 1.6

    # Larger graphs scale better (more work to amortize each barrier).
    s60 = {(row["graph"], row["rs"]): row["S60"] for row in result.rows}
    assert s60[("livejournal", "(2,3)")] > s60[("dblp", "(2,3)")]
