"""Figure 11: relabeling, update aggregation, and contraction speedups.

Measured over the two-level contiguous stored-pointer baseline with
simple-array aggregation, for (2,3), (2,4), and (3,4), plus the combined
best-vs-unoptimized comparison of Section 6.2 (paper: up to 5.10x).
"""

from repro.experiments.figures import fig11
from repro.experiments.harness import geometric_mean

GRAPHS = ["amazon", "dblp", "youtube", "skitter"]


def test_fig11_other_optimizations(figure):
    result = figure(fig11, rs_list=[(2, 3), (2, 4), (3, 4)], graphs=GRAPHS)
    by_variant: dict[str, list[float]] = {}
    for row in result.rows:
        by_variant.setdefault(row["variant"], []).append(row["speedup"])

    # Aggregation is the headline optimization (paper: up to ~4x): both
    # list buffer and hash beat the contended simple array on average.
    assert geometric_mean(by_variant["U=list-buffer"]) > 1.05
    assert geometric_mean(by_variant["U=hash"]) > 1.05

    # Relabeling is a mild but non-destructive optimization (paper: up to
    # 1.29x speedup, up to 1.11x slowdown on (2,3)).
    assert geometric_mean(by_variant["relabel"]) > 0.9

    # Contraction applies only to (2,3) and is within noise of break-even
    # (paper: up to 1.08x speedup, up to 1.11x slowdown on small graphs).
    assert all(s > 0.85 for s in by_variant["contraction"])

    # Combined optimizations give a solid end-to-end win (paper: 5.10x).
    combined = by_variant["combined(best/unopt)"]
    assert geometric_mean(combined) > 1.3
    assert max(combined) > 2.0
