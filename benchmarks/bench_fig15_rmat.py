"""Figure 15: running times on rMAT graphs of varying size and density.

(2,3), (3,4), and (4,5) on rMAT graphs with the paper's parameters
(a=0.5, b=c=0.1, d=0.3, duplicate edges removed) across a size and
edge-factor sweep.  The paper's observation: running time scales with the
number of s-cliques, which grows with density.
"""

import numpy as np

from repro.experiments.figures import fig15

SCALES = [8, 9, 10, 11]
EDGE_FACTORS = [4, 8, 16]
RS = [(2, 3), (3, 4), (4, 5)]


def test_fig15_rmat_scaling(figure):
    result = figure(fig15, scales=SCALES, edge_factors=EDGE_FACTORS,
                    rs_list=RS)
    rows = result.rows
    assert len(rows) == len(SCALES) * len(EDGE_FACTORS)

    # Time grows with graph scale at fixed edge factor.
    for ef in EDGE_FACTORS:
        series = [row["T(2,3)"] for row in rows if row["edge_factor"] == ef]
        assert series[-1] > series[0]

    # Time grows with density at fixed scale (the paper's density sweep).
    for scale in SCALES:
        series = [row["T(2,3)"] for row in rows if row["scale"] == scale]
        assert series == sorted(series)

    # Running time tracks the s-clique count (paper Section 6.3): the
    # correlation across the sweep is strongly positive.
    times = np.array([row["T(3,4)"] for row in rows])
    cliques = np.array([row["n_s(3,4)"] for row in rows], dtype=float)
    mask = cliques > 0
    if mask.sum() > 3:
        corr = np.corrcoef(np.log(times[mask]),
                           np.log(cliques[mask] + 1))[0, 1]
        assert corr > 0.6
