"""Ablation: ARB's clique-counting subroutine versus Sariyuce et al.'s.

Section 6.3 reports a subroutine-swap experiment: replacing ARB's
work-efficient (O(alpha)-oriented) clique counting with the subroutine
Sariyuce et al. use changes little on most graphs (median 1.03x) but up to
3.04x on the dense skewed ones.  Enumerating without a low-out-degree
orientation is equivalent to enumerating under an *arbitrary* acyclic
orientation, so the swap is the ``orientation="identity"`` configuration
(vertex-id order: rMAT hubs sit at low ids, which is the adversarial
placement).

The counting-phase work ratio isolates the subroutine; end to end, the
orientation's own cost partly offsets the gain on small graphs --- exactly
why the paper's median is only 1.03x.
"""

from repro.core.config import NucleusConfig
from repro.experiments.harness import format_table, run_arb
from repro.graph.datasets import load_dataset

#: Ordered small -> large/dense; the subroutine gap must grow along it.
GRAPHS = ["amazon", "dblp", "skitter", "orkut"]


def test_ablation_counting_subroutine(benchmark):
    def run():
        rows = []
        for name in GRAPHS:
            graph = load_dataset(name)
            efficient = run_arb(
                graph, 3, 4,
                NucleusConfig(orientation="goodrich_pszona", relabel=False),
                name)
            arbitrary = run_arb(
                graph, 3, 4,
                NucleusConfig(orientation="identity", relabel=False), name)
            assert efficient.result.as_dict() == arbitrary.result.as_dict()
            count_eff = efficient.result.tracker.phases["count_s"].work
            count_arb = arbitrary.result.tracker.phases["count_s"].work
            rows.append({
                "graph": name,
                "counting_work_ratio": count_arb / count_eff,
                "end_to_end_ratio": (arbitrary.time_parallel
                                     / efficient.time_parallel),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        rows, ["graph", "counting_work_ratio", "end_to_end_ratio"],
        "Counting-subroutine ablation, (3,4): arbitrary order vs O(alpha) "
        "orientation (ratios > 1 favor the efficient subroutine)"))
    ratios = [row["counting_work_ratio"] for row in rows]
    # The enumeration penalty of the arbitrary order grows with density
    # and skew, and is substantial on the densest surrogate...
    assert ratios[-1] > 1.1
    assert ratios[-1] > ratios[0]
    # ...while end to end the difference stays modest on small graphs
    # (the paper's median across its suite is just 1.03x).
    assert all(row["end_to_end_ratio"] < 2.0 for row in rows)