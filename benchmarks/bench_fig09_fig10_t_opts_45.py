"""Figures 9-10: T-layout speedups and space savings for (4,5).

Same sweep as Figure 8 at (r,s) = (4,5) on the four smallest surrogates;
livejournal, orkut, and friendster are omitted, matching the paper's OOMs.
At r = 4 the layered layouts share more vertices per key, so the space
savings exceed the (3,4) ones (paper: up to 2.51x) and the 3-multi-level
option becomes competitive.
"""

from repro.experiments.figures import fig08, fig09_fig10

GRAPHS = ["amazon", "dblp", "youtube", "skitter"]


def test_fig09_fig10_t_optimizations_45(figure):
    result = figure(fig09_fig10, graphs=GRAPHS)
    by_combo: dict[str, list[dict]] = {}
    for row in result.rows:
        by_combo.setdefault(row["combo"], []).append(row)

    # The 3-multi-level option exists at r=4 and saves space on the
    # clique-rich graphs.
    multi3 = by_combo["3-multi/contig/stored"]
    assert any(r["space_saving"] > 1.0 for r in multi3)

    # Paper's (4,5)-specific claim: deeper tables save more at r=4 than
    # at r=3 on the same graph (more shared prefix per key).
    fig8_rows = fig08(graphs=["dblp"]).rows
    saving_34 = next(r["space_saving"] for r in fig8_rows
                     if r["combo"] == "3-multi/contig/stored")
    saving_45 = next(r["space_saving"] for r in multi3
                     if r["graph"] == "dblp")
    assert saving_45 >= 0.8 * saving_34  # at least comparable, usually more

    chosen = by_combo["2-level/contig/stored"]
    assert all(r["speedup"] > 0.85 for r in chosen)
