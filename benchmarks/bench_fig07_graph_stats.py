"""Figure 7: graph sizes, peeling complexity rho(r,s), max (r,s)-cores.

Regenerates the right-hand table of the paper's Figure 7 on the surrogate
datasets: for each graph and each feasible (r,s) pair, the number of
peeling rounds and the maximum core number.
"""

from repro.experiments.figures import fig07


def test_fig07_graph_statistics(figure):
    result = figure(fig07)
    by_graph = {row["graph"]: row for row in result.rows}

    # Sizes are positive and ordered like the paper's suite.
    assert by_graph["friendster"]["m"] > by_graph["youtube"]["m"]

    for row in result.rows:
        for key, value in row.items():
            if key.startswith("rho"):
                # rho = 0 only when the graph has no r-cliques at all
                # (possible for large (r,s) on the sparsest surrogates).
                assert value >= 0
            if key.startswith("max"):
                assert value >= 0
        assert row["rho(1,2)"] >= 1 and row["rho(2,3)"] >= 1
        # Peeling at least one r-clique per round: rho is sane.
        assert row["rho(2,3)"] <= row["m"]
        # The (1,2) max core (degeneracy) bounds nothing below zero.
        assert row["max(1,2)"] >= 1

    # dblp's planted co-author cliques give it the standout core numbers,
    # mirroring the paper's dblp column.
    assert by_graph["dblp"]["max(2,3)"] >= \
        by_graph["amazon"]["max(2,3)"]
