"""Figure 8: T-layout optimization speedups and space savings for (3,4).

Sweeps the table-layout combinations (levels x contiguity x inverse map)
against the one-level baseline, with the cache simulator attached, printing
both the speedup series (Figure 8 left) and the space-saving series
(Figure 8 right).  friendster is omitted, as in the paper (OOM there).
"""

from repro.experiments.figures import fig08
from repro.experiments.harness import geometric_mean

GRAPHS = ["amazon", "dblp", "youtube", "skitter", "livejournal", "orkut"]


def test_fig08_t_optimizations_34(figure):
    result = figure(fig08, graphs=GRAPHS)
    by_combo: dict[str, list[dict]] = {}
    for row in result.rows:
        by_combo.setdefault(row["combo"], []).append(row)

    # Space: every two-level/multi-level layout saves memory on the
    # mid-size-and-up graphs (paper: up to 2.15x for (3,4)).
    for combo, rows in by_combo.items():
        if combo == "one-level":
            continue
        larger = [r for r in rows if r["graph"] not in ("amazon",)]
        assert all(r["space_saving"] > 1.0 for r in larger), combo

    # Speed: the paper's chosen combo (two-level/contig/stored) is at
    # worst comparable to one-level on every graph, and wins on average.
    chosen = by_combo["2-level/contig/stored"]
    assert all(r["speedup"] > 0.9 for r in chosen)
    assert geometric_mean([r["speedup"] for r in chosen]) >= 1.0

    # Locality: layered layouts lower the T miss rate on the larger graphs.
    one_level = {r["graph"]: r for r in by_combo["one-level"]}
    for row in by_combo["2-level/contig/binsearch"]:
        if row["graph"] in ("skitter", "livejournal"):
            assert row["miss_rate"] <= one_level[row["graph"]]["miss_rate"]
