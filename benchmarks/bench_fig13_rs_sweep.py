"""Figure 13: relative cost of each (r,s) on each graph.

For every feasible (r,s) with r < s <= 7 (excluding (2,3) and (3,4), which
Figure 12 covers), the slowdown of parallel ARB-NUCLEUS-DECOMP over the
fastest (r,s) on the same graph.
"""

from repro.experiments.figures import fig13

GRAPHS = ["amazon", "dblp", "youtube", "skitter"]


def test_fig13_rs_sweep(figure):
    result = figure(fig13, graphs=GRAPHS)
    assert result.rows, "sweep produced no rows"

    for row in result.rows:
        assert row["slowdown_vs_fastest"] >= 1.0 - 1e-9
        assert row["rs"] not in ("(2,3)", "(3,4)")

    # On every graph some (r,s) is substantially more expensive than the
    # cheapest -- the spread the paper's Figure 13 displays.
    for graph in GRAPHS:
        spread = [row["slowdown_vs_fastest"] for row in result.rows
                  if row["graph"] == graph]
        assert max(spread) > 1.5
