"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark runs one figure driver exactly once (``pedantic`` with one
round: the drivers are deterministic simulations, so repeated timing adds
nothing), prints the paper-style table it produces, and asserts the
qualitative shape the paper reports.

Run the full suite with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_figure(benchmark, driver, **kwargs):
    """Execute a figure driver once under pytest-benchmark and print it."""
    result = benchmark.pedantic(lambda: driver(**kwargs), rounds=1,
                                iterations=1)
    print()
    print(result.show())
    return result


@pytest.fixture
def figure(benchmark):
    def _run(driver, **kwargs):
        return run_figure(benchmark, driver, **kwargs)
    return _run
