"""Figure 12: every competitor versus parallel ARB-NUCLEUS-DECOMP.

Reruns the paper's headline comparison for (2,3) and (3,4) on all seven
surrogates: slowdowns of serial ARB, ND, PND, AND, AND-NN, and (for (2,3))
PKT, PKT-OPT-CPU, and MSP, plus the Section 6.3 counters (s-clique visit
ratios, peeling-round ratios).  Rows the paper reports as OOM are marked,
not run (see repro.experiments.harness.PAPER_OMISSIONS).
"""

from repro.experiments.figures import fig12

GRAPHS = ["amazon", "dblp", "youtube", "skitter", "livejournal", "orkut",
          "friendster"]


def collect(rows, algorithm, field="slowdown"):
    return [row[field] for row in rows
            if row["algorithm"] == algorithm and field in row]


def test_fig12_23_baselines(figure):
    result = figure(fig12, graphs=GRAPHS, rs_list=[(2, 3)])
    rows = result.rows
    from repro.experiments.harness import headline_statistics
    print("Headline ranges (cf. the paper's abstract):")
    for label, (lo, hi) in headline_statistics(rows).items():
        print(f"  {label}: {lo:.2f}x - {hi:.2f}x")

    # Work-inefficient competitors lose decisively (paper: ND 8.2-58x,
    # PND 3.8-55x, AND 1.3-60x over the best graphs).
    assert all(s > 3 for s in collect(rows, "ND"))
    assert all(s > 1.5 for s in collect(rows, "PND"))
    assert all(s > 1.0 for s in collect(rows, "AND"))

    # ARB's own self-relative speedups (paper: 3.31-40.14x).
    speedups = collect(rows, "ARB", "self_speedup")
    assert all(3 < s <= 45 for s in speedups)

    # PKT loses everywhere (paper: ARB 1.07-2.88x faster); PKT-OPT-CPU
    # wins on the larger graphs (paper: up to 2.27x) -- the crossover.
    assert all(s > 1.0 for s in collect(rows, "PKT"))
    opt = {row["graph"]: row["slowdown"] for row in rows
           if row["algorithm"] == "PKT-OPT-CPU"}
    assert opt["livejournal"] < 1.0 and opt["orkut"] < 1.0
    assert opt["amazon"] > 0.9  # small graphs: roughly even or ARB ahead

    # MSP is the slowest truss family member on the large graphs.
    msp = {row["graph"]: row["slowdown"] for row in rows
           if row["algorithm"] == "MSP" and "slowdown" in row}
    assert all(msp[g] > opt[g] for g in msp if g in opt)

    # Section 6.3 counters: AND re-discovers s-cliques many times over
    # (paper: 1.69-46x, median ~15x); notification reduces it.
    and_ratio = collect(rows, "AND", "visit_ratio")
    nn_ratio = collect(rows, "AND-NN", "visit_ratio")
    assert all(v > 1.0 for v in and_ratio)
    assert max(nn_ratio) < max(and_ratio)

    # PND performs orders of magnitude more rounds (paper: 5608-84170x).
    assert all(v > 50 for v in collect(rows, "PND", "round_ratio"))

    # Paper-reported OOMs are surfaced as notes, not silently skipped.
    noted = {(row["graph"], row["algorithm"]) for row in rows
             if row.get("note")}
    assert ("friendster", "PND") in noted
    assert ("skitter", "AND-NN") in noted


def test_fig12_34_baselines(figure):
    result = figure(fig12, graphs=GRAPHS, rs_list=[(3, 4)])
    rows = result.rows
    assert all(s > 3 for s in collect(rows, "ND"))
    assert all(s > 1.0 for s in collect(rows, "AND"))
    # AND re-discovers s-cliques every sweep; on the tiniest surrogates it
    # converges in ~3 sweeps so the ratio can dip toward 1, but it exceeds
    # 1 wherever convergence takes real work (paper: 1.69-46x).
    ratios = collect(rows, "AND", "visit_ratio")
    assert all(v > 0.5 for v in ratios)
    assert max(ratios) > 1.0
    # friendster (3,4) is an ARB OOM row in the paper.
    assert any(row["graph"] == "friendster" and row.get("note")
               for row in rows if row["algorithm"] == "ARB")
