"""Ablation: fractional (-1/a) versus representative update arithmetic.

The paper's UPDATE-FUNC atomically subtracts 1/a per discovery so that
simultaneously-peeled r-cliques jointly subtract exactly 1 per destroyed
s-clique.  The exact-integer alternative (only the least peeling r-clique
subtracts 1) does the same discoveries but fewer atomic count updates.
Outputs must be identical; the ablation shows the accounting difference.
"""

from repro.core.config import NucleusConfig
from repro.experiments.harness import format_table, run_arb
from repro.graph.datasets import load_dataset

GRAPHS = ["dblp", "skitter"]


def test_ablation_update_arithmetic(benchmark):
    def run():
        rows = []
        for name in GRAPHS:
            graph = load_dataset(name)
            results = {}
            for mode in ("fractional", "representative"):
                cfg = NucleusConfig(update_arithmetic=mode)
                arb = run_arb(graph, 3, 4, cfg, name)
                results[mode] = arb.result.as_dict()
                rows.append({
                    "graph": name, "mode": mode,
                    "atomics": arb.result.tracker.total.atomic_ops,
                    "T60": arb.time_parallel,
                })
            assert results["fractional"] == results["representative"]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, ["graph", "mode", "atomics", "T60"],
                       "Update arithmetic ablation, (3,4)"))
    for name in GRAPHS:
        stats = {row["mode"]: row for row in rows if row["graph"] == name}
        # The representative mode performs no more atomic count updates.
        assert stats["representative"]["atomics"] <= \
            stats["fractional"]["atomics"]
