"""Tests for simulated atomics and contention metering."""

import numpy as np

from repro.parallel.atomics import AtomicArray, ContentionMeter
from repro.parallel.runtime import CostTracker


class TestContentionMeter:
    def test_no_conflicts_no_span(self):
        meter = ContentionMeter()
        for addr in range(10):
            meter.record(addr)
        assert meter.settle(CostTracker()) == 0.0

    def test_collisions_serialize(self):
        meter = ContentionMeter()
        for _ in range(5):
            meter.record(42)
        tracker = CostTracker()
        assert meter.settle(tracker) == 4.0
        assert tracker.total.contention == 4.0

    def test_worst_address_governs(self):
        meter = ContentionMeter()
        for _ in range(3):
            meter.record(1)
        for _ in range(7):
            meter.record(2)
        assert meter.settle(CostTracker()) == 6.0

    def test_settle_resets(self):
        meter = ContentionMeter()
        meter.record(1, count=4)
        meter.settle(CostTracker())
        assert meter.settle(CostTracker()) == 0.0

    def test_total_conflicts_accumulates(self):
        meter = ContentionMeter()
        meter.record(1, count=3)
        meter.settle(None)
        meter.record(1, count=2)
        meter.settle(None)
        assert meter.total_conflicts == 3

    def test_cost_scaling(self):
        meter = ContentionMeter(cost_per_conflict=2.5)
        meter.record(9, count=3)
        assert meter.settle(CostTracker()) == 5.0

    def test_settle_with_nothing_recorded(self):
        meter = ContentionMeter()
        tracker = CostTracker()
        assert meter.settle(tracker) == 0.0
        assert tracker.total.contention == 0.0
        assert meter.total_conflicts == 0

    def test_settle_without_tracker_still_accounts(self):
        meter = ContentionMeter()
        meter.record(5, count=4)
        assert meter.settle(None) == 3.0
        assert meter.total_conflicts == 3

    def test_repeated_settle_reset_cycles(self):
        meter = ContentionMeter()
        tracker = CostTracker()
        for round_no in range(1, 4):
            meter.record(1, count=2)
            assert meter.settle(tracker) == 1.0
            assert meter.total_conflicts == round_no
            # The reset is complete: an immediate re-settle is free.
            assert meter.settle(tracker) == 0.0
        assert tracker.total.contention == 3.0

    def test_total_conflicts_sums_all_addresses(self):
        # settle() charges only the worst chain, but total_conflicts keeps
        # every collision across all addresses and rounds.
        meter = ContentionMeter()
        meter.record(1, count=3)
        meter.record(2, count=5)
        assert meter.settle(CostTracker()) == 4.0
        meter.record(2, count=2)
        meter.settle(CostTracker())
        assert meter.total_conflicts == (2 + 4) + 1

    def test_forwards_atomics_to_race_detector(self):
        from repro.sanitize.racecheck import RaceDetector
        detector = RaceDetector()
        meter = ContentionMeter(detector=detector)
        meter.record(3)
        meter.record(3)
        assert detector.stats.logged == 2
        assert detector.settle() == []


class TestAtomicArray:
    def test_fetch_add_returns_prior(self):
        arr = AtomicArray(np.zeros(4))
        assert arr.fetch_add(2, 5.0) == 0.0
        assert arr.fetch_add(2, 1.0) == 5.0
        assert arr.values[2] == 6.0

    def test_charges_tracker(self):
        tracker = CostTracker()
        arr = AtomicArray(np.zeros(4), tracker=tracker)
        arr.fetch_add(0, 1.0)
        arr.read(0)
        arr.write(1, 2.0)
        assert tracker.work == 3.0
        assert tracker.total.atomic_ops == 1

    def test_records_contention(self):
        meter = ContentionMeter()
        arr = AtomicArray(np.zeros(4), meter=meter)
        arr.fetch_add(3, 1.0)
        arr.fetch_add(3, 1.0)
        assert meter.settle(CostTracker()) == 1.0

    def test_compare_and_swap(self):
        tracker = CostTracker()
        arr = AtomicArray(np.zeros(4), tracker=tracker)
        assert arr.compare_and_swap(1, 0.0, 7.0) is True
        assert arr.values[1] == 7.0
        assert arr.compare_and_swap(1, 0.0, 9.0) is False  # stale expected
        assert arr.values[1] == 7.0
        assert tracker.total.atomic_ops == 2

    def test_cas_records_contention(self):
        meter = ContentionMeter()
        arr = AtomicArray(np.zeros(4), meter=meter)
        arr.compare_and_swap(2, 0.0, 1.0)
        arr.compare_and_swap(2, 1.0, 2.0)
        assert meter.settle(CostTracker()) == 1.0

    def test_base_address_offsets_cache_stream(self):
        from repro.machine.cache import CacheSimulator
        tracker = CostTracker()
        tracker.cache = CacheSimulator(line_words=1, n_sets=4, ways=1)
        arr = AtomicArray(np.zeros(4), tracker=tracker, base_address=100)
        arr.read(0)
        assert tracker.cache.accesses == 1
