"""Tests for simulated atomics and contention metering."""

import numpy as np

from repro.parallel.atomics import AtomicArray, ContentionMeter
from repro.parallel.runtime import CostTracker


class TestContentionMeter:
    def test_no_conflicts_no_span(self):
        meter = ContentionMeter()
        for addr in range(10):
            meter.record(addr)
        assert meter.settle(CostTracker()) == 0.0

    def test_collisions_serialize(self):
        meter = ContentionMeter()
        for _ in range(5):
            meter.record(42)
        tracker = CostTracker()
        assert meter.settle(tracker) == 4.0
        assert tracker.total.contention == 4.0

    def test_worst_address_governs(self):
        meter = ContentionMeter()
        for _ in range(3):
            meter.record(1)
        for _ in range(7):
            meter.record(2)
        assert meter.settle(CostTracker()) == 6.0

    def test_settle_resets(self):
        meter = ContentionMeter()
        meter.record(1, count=4)
        meter.settle(CostTracker())
        assert meter.settle(CostTracker()) == 0.0

    def test_total_conflicts_accumulates(self):
        meter = ContentionMeter()
        meter.record(1, count=3)
        meter.settle(None)
        meter.record(1, count=2)
        meter.settle(None)
        assert meter.total_conflicts == 3

    def test_cost_scaling(self):
        meter = ContentionMeter(cost_per_conflict=2.5)
        meter.record(9, count=3)
        assert meter.settle(CostTracker()) == 5.0


class TestAtomicArray:
    def test_fetch_add_returns_prior(self):
        arr = AtomicArray(np.zeros(4))
        assert arr.fetch_add(2, 5.0) == 0.0
        assert arr.fetch_add(2, 1.0) == 5.0
        assert arr.values[2] == 6.0

    def test_charges_tracker(self):
        tracker = CostTracker()
        arr = AtomicArray(np.zeros(4), tracker=tracker)
        arr.fetch_add(0, 1.0)
        arr.read(0)
        arr.write(1, 2.0)
        assert tracker.work == 3.0
        assert tracker.total.atomic_ops == 1

    def test_records_contention(self):
        meter = ContentionMeter()
        arr = AtomicArray(np.zeros(4), meter=meter)
        arr.fetch_add(3, 1.0)
        arr.fetch_add(3, 1.0)
        assert meter.settle(CostTracker()) == 1.0

    def test_base_address_offsets_cache_stream(self):
        from repro.machine.cache import CacheSimulator
        tracker = CostTracker()
        tracker.cache = CacheSimulator(line_words=1, n_sets=4, ways=1)
        arr = AtomicArray(np.zeros(4), tracker=tracker, base_address=100)
        arr.read(0)
        assert tracker.cache.accesses == 1
