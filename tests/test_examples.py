"""The example scripts must run end-to-end and tell true stories."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "triangle cdg: (3,4)-core 0" in out
    assert "max trussness" in out


def test_community_cores():
    out = run_example("community_cores.py")
    # The bipartite decoy fools the k-core but not the nuclei.
    lines = [line for line in out.splitlines() if "(" in line and ")" in line]
    kcore = next(line for line in lines if "(1,2)" in line)
    truss = next(line for line in lines if "(2,3)" in line)
    assert float(kcore.split()[3]) < 0.5  # k-core precision poisoned
    assert float(truss.split()[3]) > 0.9  # truss precision clean
    # The query-service drill-down: every top-level nucleus is planted.
    assert "query service on the 2-3 nucleus hierarchy" in out
    tops = [line for line in out.splitlines()
            if line.startswith("  node ")]
    assert tops
    for line in tops:
        total = int(line.split(": ")[1].split()[0])
        planted = int(line.split(", ")[1].split()[0])
        assert planted == total
    assert "densest nucleus containing vertex" in out


def test_fraud_rings():
    out = run_example("fraud_rings.py")
    assert "truly fraudulent" in out
    # The best threshold achieves high precision on the planted rings.
    final = out.strip().splitlines()[-1]
    flagged = int(final.split("flags ")[1].split()[0])
    caught = int(final.split(", ")[1].split()[0])
    assert caught / flagged > 0.8
    # The query-service drill-down recovers each ring as a connected
    # nucleus around one of its transactions, with no outsiders.
    assert "ring drill-down via the nucleus query service" in out
    rings = [line for line in out.splitlines()
             if line.startswith("  ring ")]
    assert len(rings) == 4
    for line in rings:
        covered, planted = map(int,
                               line.split("covers ")[1].split()[0].split("/"))
        outsiders = int(line.split("with ")[1].split()[0])
        assert covered / planted >= 0.8
        assert outsiders == 0


def test_tuning_and_scaling():
    out = run_example("tuning_and_scaling.py")
    assert "paper-optimal" in out
    assert "60 threads" in out
    # The optimized configuration must beat the unoptimized one.
    gain = float(out.split("combined optimizations: ")[1].split("x")[0])
    assert gain > 1.3


def test_nucleus_explorer():
    out = run_example("nucleus_explorer.py")
    assert "densification" in out
    # The overlap matrix separates the k-core (decoy-following) from the
    # clique-based decompositions, which agree with each other.
    rows = [line for line in out.splitlines()
            if line.strip().startswith("(") and "1.00" in line]
    kcore_row = next(line for line in rows if line.strip().startswith("(1,2)"))
    truss_row = next(line for line in rows if line.strip().startswith("(2,3)"))
    assert "0.00" in kcore_row  # k-core disagrees with the nuclei
    assert truss_row.count("1.00") >= 3  # nuclei agree among themselves
