"""End-to-end tests for the static parallel-effect analyzer.

Covers the fixture package (tests/fixtures/racestatic) with exact
expected finding sets, the mutation gates the fixtures document, the
rule catalog / ``--explain`` / SARIF metadata satellites, and the
real-tree invariants (src/repro strict-clean with every shared-writing
region covered).
"""

import json
import re
from pathlib import Path

import pytest

from repro import cli
from repro.sanitize.catalog import CATALOG, DOC_PATH, explain, get_rule
from repro.sanitize.chargeflow import analyze
from repro.sanitize.reporters import report_sarif

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures" / "racestatic"
STAMPS = FIXTURES / "stamps"
SRC = HERE.parent / "src" / "repro"
DOC = HERE.parent / "docs" / "static-analysis.md"

ALL_RULE_IDS = [f"PAR{i:03d}" for i in range(1, 12)]


def rule_file_set(result):
    return {(f.rule, Path(f.path).name) for f in result.findings}


class TestFixturePackage:
    def test_exact_finding_set_with_stamps(self):
        result = analyze(FIXTURES, tests_dir=STAMPS)
        assert rule_file_set(result) == {
            ("PAR009", "racy.py"),
            ("PAR010", "accum.py"),
            ("PAR011", "uncovered.py"),
        }
        assert len(result.findings) == 3

    def test_par009_fires_at_the_helper_write(self):
        result = analyze(FIXTURES, tests_dir=STAMPS)
        (finding,) = [f for f in result.findings if f.rule == "PAR009"]
        source_line = Path(finding.path).read_text().splitlines()
        assert "acc[slot]" in source_line[finding.line - 1]
        assert "'total'" in finding.message

    def test_par010_names_the_dividing_operand(self):
        result = analyze(FIXTURES, tests_dir=STAMPS)
        (finding,) = [f for f in result.findings if f.rule == "PAR010"]
        assert "bump()" in finding.message
        assert "'delta'" in finding.message
        assert "true division" in finding.message

    def test_par011_keys_on_the_stamp_not_the_shape(self):
        # covered.py and uncovered.py have identical region bodies; only
        # the unstamped one is reported.
        result = analyze(FIXTURES, tests_dir=STAMPS)
        (finding,) = [f for f in result.findings if f.rule == "PAR011"]
        assert Path(finding.path).name == "uncovered.py"
        assert "racestatic.uncovered.run" in finding.message

    def test_without_tests_dir_par011_is_off(self):
        result = analyze(FIXTURES)
        assert rule_file_set(result) == {
            ("PAR009", "racy.py"),
            ("PAR010", "accum.py"),
        }

    def test_region_registry_is_complete(self):
        result = analyze(FIXTURES, tests_dir=STAMPS)
        regions = {r.qualname: r for r in result.effects.regions}
        assert set(regions) == {
            "racestatic.racy.run", "racestatic.disjoint.run",
            "racestatic.mediated.run", "racestatic.accum.run",
            "racestatic.covered.run", "racestatic.uncovered.run",
        }
        assert all(r.has_shared_writes for r in regions.values())
        assert not regions["racestatic.uncovered.run"].covered
        assert regions["racestatic.covered.run"].covered

    def test_unknown_stamp_is_reported_at_the_test_file(self, tmp_path):
        (tmp_path / "test_bogus.py").write_text(
            "RACECHECK_COVERS = ['racestatic.nope.run']\n",
            encoding="utf-8")
        result = analyze(FIXTURES, tests_dir=tmp_path)
        diagnostics = [f for f in result.findings
                       if f.rule == "PAR011"
                       and Path(f.path).name == "test_bogus.py"]
        assert len(diagnostics) == 1
        assert "racestatic.nope.run" in diagnostics[0].message


class TestMutationGates:
    """Deleting one proof artifact must flip the corresponding finding:
    the analyzer detects the property, not the fixture's file name."""

    def _mutated(self, filename, old, new):
        path = (FIXTURES / filename).resolve()
        source = path.read_text(encoding="utf-8")
        assert old in source
        return analyze(FIXTURES, overlay={str(path): source.replace(old, new)},
                       tests_dir=STAMPS)

    def test_deleting_atomic_wrapper_flips_par009(self):
        result = self._mutated("mediated.py", ", atomic=True", "")
        assert ("PAR009", "mediated.py") in rule_file_set(result)

    def test_data_dependent_index_flips_par009(self):
        result = self._mutated(
            "disjoint.py",
            "_store(out, t, float(data[t]))",
            "_store(out, int(data[t]), 1.0)")
        assert ("PAR009", "disjoint.py") in rule_file_set(result)

    def test_integral_delta_silences_par010(self):
        result = self._mutated(
            "accum.py", "1.0 / float(weights[t])", "float(t)")
        assert ("PAR010", "accum.py") not in rule_file_set(result)
        # The other fixtures are untouched.
        assert ("PAR009", "racy.py") in rule_file_set(result)


class TestRealTree:
    def test_src_regions_all_covered(self):
        result = analyze(SRC)
        assert result.effects is not None
        assert result.effects.regions, "no parallel regions found in src"
        gaps = [r.qualname for r in result.effects.regions
                if r.has_shared_writes and not r.covered]
        assert gaps == []

    def test_src_stamps_resolve(self):
        result = analyze(SRC)
        assert result.effects.stamp_findings == []


class TestCatalog:
    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_every_rule_has_an_entry(self, rule_id):
        info = get_rule(rule_id)
        assert info is not None
        assert info.title
        assert info.explain.strip()
        assert info.anchor.startswith(rule_id.lower())

    def test_explain_renders_title_body_and_doc_pointer(self):
        text = explain("par009")  # case-insensitive
        assert text.startswith("PAR009: ")
        assert "task-loop variables" in text
        assert f"docs: {DOC_PATH}#par009-potential-static-race" in text

    def test_unknown_rule(self):
        assert explain("PAR099") is None

    def test_doc_headings_match_catalog_anchors(self):
        # The doc is the anchor target: every catalog anchor must be
        # derivable from a heading via GitHub's slug rules.
        doc = DOC.read_text(encoding="utf-8")
        anchors = set()
        for line in doc.splitlines():
            if not line.startswith("#"):
                continue
            slug = line.lstrip("#").strip().lower()
            slug = re.sub(r"[^\w\- ]", "", slug).replace(" ", "-")
            anchors.add(slug)
        for info in CATALOG.values():
            assert info.anchor in anchors, \
                f"{info.id}: no heading for #{info.anchor} in {DOC}"


class TestExplainCLI:
    def test_known_rule(self, capsys):
        assert cli.main(["lint", "--explain", "PAR010"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("PAR010: ")
        assert "not associative" in out

    def test_unknown_rule(self, capsys):
        assert cli.main(["lint", "--explain", "PAR042"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestSarifMetadata:
    def test_rules_carry_descriptions_and_help_uris(self):
        sarif = json.loads(report_sarif([]))
        rules = {r["id"]: r
                 for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
        for rule_id in ALL_RULE_IDS:
            entry = rules[rule_id]
            info = CATALOG[rule_id]
            assert entry["shortDescription"]["text"] == info.title
            assert entry["fullDescription"]["text"]
            assert "\n" not in entry["fullDescription"]["text"]
            assert entry["helpUri"] == info.help_uri
            assert entry["helpUri"].endswith(f"#{info.anchor}")

    def test_findings_reference_rule_index(self):
        result = analyze(FIXTURES, tests_dir=STAMPS)
        sarif = json.loads(report_sarif(result.findings))
        run = sarif["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        for res in run["results"]:
            assert ids[res["ruleIndex"]] == res["ruleId"]
        assert {res["ruleId"] for res in run["results"]} == {
            "PAR009", "PAR010", "PAR011"}
