"""Theoretical checkpoints from Section 4 carried as executable tests.

* Lemma 4.1: the sum over all c-cliques of the minimum vertex degree is
  O(m * alpha^{c-1}).
* The c-clique count is O(m * alpha^{c-2}) (via [60]).
* Theorem 4.2's structure: tracked work stays within a constant factor of
  m * alpha^{s-2} + rho * log n, and span is far below work.
* rho is bounded by the number of r-cliques.
"""

import math

import pytest

from repro.cliques.listing import collect_cliques
from repro.cliques.orient import degeneracy, orient
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import (complete_graph, erdos_renyi,
                                    planted_partition, rmat_graph)
from repro.parallel.runtime import CostTracker

GRAPHS = [
    ("er", erdos_renyi(120, 500, seed=1)),
    ("community", planted_partition(90, 6, 0.5, 0.01, seed=2)),
    ("rmat", rmat_graph(7, 6, seed=3)),
    ("clique", complete_graph(12)),
]


def min_degree_sum(graph, c):
    dg, _ = orient(graph, "degeneracy")
    degrees = graph.degrees
    total = 0
    for row in collect_cliques(dg, c):
        total += min(int(degrees[v]) for v in row)
    return total


@pytest.mark.parametrize("name,graph", GRAPHS)
@pytest.mark.parametrize("c", [2, 3, 4])
def test_lemma_4_1_min_degree_bound(name, graph, c):
    """sum over c-cliques of min degree <= C * m * alpha^{c-1}."""
    alpha = max(1, degeneracy(graph))  # alpha <= degeneracy <= 2*alpha - 1
    bound = graph.m * alpha ** (c - 1)
    assert min_degree_sum(graph, c) <= 4 * bound


@pytest.mark.parametrize("name,graph", GRAPHS)
@pytest.mark.parametrize("c", [3, 4, 5])
def test_clique_count_bound(name, graph, c):
    """The number of c-cliques is O(m * alpha^{c-2})."""
    dg, _ = orient(graph, "degeneracy")
    count = collect_cliques(dg, c).shape[0]
    alpha = max(1, degeneracy(graph))
    assert count <= 2 * graph.m * alpha ** (c - 2)


@pytest.mark.parametrize("name,graph", GRAPHS)
@pytest.mark.parametrize("r,s", [(1, 2), (2, 3), (3, 4)])
def test_theorem_4_2_work_bound(name, graph, r, s):
    """Tracked work <= C * (m * alpha^{s-2} + rho * log n)."""
    tracker = CostTracker()
    result = arb_nucleus_decomp(graph, r, s, tracker=tracker)
    alpha = max(1, degeneracy(graph))
    bound = graph.m * alpha ** (s - 2) + \
        result.rho * math.log2(max(2, graph.n))
    # The constant absorbs the per-operation charges of the realistic
    # cost model (probe widths, sorting charges, bucketing overheads).
    assert tracker.work <= 64 * bound


@pytest.mark.parametrize("name,graph", GRAPHS)
def test_span_is_polylog_like(name, graph):
    """Parallel span is orders of magnitude below work on real inputs."""
    tracker = CostTracker()
    result = arb_nucleus_decomp(graph, 2, 3, tracker=tracker)
    polylog = math.log2(max(2, graph.n)) ** 2
    assert tracker.span <= 40 * (result.rho + 1) * polylog


@pytest.mark.parametrize("name,graph", GRAPHS)
def test_rho_bounded_by_r_clique_count(name, graph):
    result = arb_nucleus_decomp(graph, 2, 3)
    assert result.rho <= max(1, result.n_r_cliques)


def test_rho_complete_graph_is_one():
    assert arb_nucleus_decomp(complete_graph(9), 2, 3).rho == 1


def test_degeneracy_brackets_arboricity():
    """alpha <= degeneracy <= 2 * alpha - 1 (used throughout Section 4)."""
    for _, graph in GRAPHS:
        if graph.n < 2 or graph.m == 0:
            continue
        d = degeneracy(graph)
        alpha_lower = graph.m / (graph.n - 1)  # alpha >= m / (n-1)
        assert d >= alpha_lower / 2  # since d >= alpha / 1 >= lower bound /1
