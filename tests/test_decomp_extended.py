"""Extended decomposition battery: diverse families, deep (r,s), edge cases."""

import numpy as np
import pytest

from repro.core.decomp import arb_nucleus_decomp
from repro.core.verify import brute_force_nucleus
from repro.graph.csr import CSRGraph
from repro.graph.generators import (barabasi_albert, complete_graph,
                                    cycle_graph, embed_cliques, erdos_renyi,
                                    planted_partition, rmat_graph,
                                    star_graph)

FAMILIES = [
    ("erdos_renyi", lambda: erdos_renyi(35, 140, seed=5)),
    ("rmat", lambda: rmat_graph(5, 6, seed=6)),
    ("barabasi_albert", lambda: barabasi_albert(35, 4, seed=7)),
    ("planted", lambda: planted_partition(40, 4, 0.55, 0.02, seed=8)),
    ("clique_in_cycle", lambda: embed_cliques(cycle_graph(30), 1, 7, seed=9)),
]


@pytest.mark.parametrize("name,factory", FAMILIES)
@pytest.mark.parametrize("r,s", [(2, 3), (3, 4)])
def test_families_match_bruteforce(name, factory, r, s):
    graph = factory()
    result = arb_nucleus_decomp(graph, r, s)
    assert result.as_dict() == brute_force_nucleus(graph, r, s)


class TestDeepRS:
    """Large r and s on tiny graphs (the regime Figure 13 sweeps)."""

    @pytest.mark.parametrize("r,s", [(4, 5), (4, 6), (5, 6), (5, 7), (6, 7)])
    def test_small_dense_graph(self, r, s):
        graph = embed_cliques(erdos_renyi(25, 60, seed=1), 2, 9, seed=2)
        result = arb_nucleus_decomp(graph, r, s)
        assert result.as_dict() == brute_force_nucleus(graph, r, s)

    def test_k10_deep(self):
        from math import comb
        graph = complete_graph(10)
        result = arb_nucleus_decomp(graph, 5, 7)
        assert result.max_core == comb(10 - 5, 7 - 5)
        assert result.rho == 1


class TestDegenerateInputs:
    def test_isolated_vertices(self):
        graph = CSRGraph.from_edges(10, [(0, 1), (1, 2), (0, 2)])
        result = arb_nucleus_decomp(graph, 2, 3)
        assert result.n_r_cliques == 3
        assert result.max_core == 1

    def test_single_edge(self):
        graph = CSRGraph.from_edges(2, [(0, 1)])
        result = arb_nucleus_decomp(graph, 1, 2)
        assert result.as_dict() == {(0,): 1, (1,): 1}

    def test_two_components_different_density(self):
        left = complete_graph(6).edges()
        right = cycle_graph(6).edges() + 6
        graph = CSRGraph.from_edges(12, np.concatenate([left, right]))
        result = arb_nucleus_decomp(graph, 2, 3)
        cores = result.as_dict()
        assert all(cores[tuple(e)] == 4 for e in left)
        assert all(cores[tuple(sorted(e))] == 0 for e in right)

    def test_star_has_no_triangles(self):
        result = arb_nucleus_decomp(star_graph(12), 2, 3)
        assert result.max_core == 0
        assert result.n_s_cliques == 0

    def test_r1_s_large(self):
        graph = complete_graph(8)
        result = arb_nucleus_decomp(graph, 1, 6)
        from math import comb
        assert result.max_core == comb(7, 5)


class TestScalingBehavior:
    def test_work_roughly_linear_in_m_for_23(self):
        """On bounded-degeneracy graphs, (2,3) work is O(m * alpha)."""
        works = []
        for n in (200, 400, 800):
            graph = erdos_renyi(n, 3 * n, seed=11)
            from repro.parallel.runtime import CostTracker
            tracker = CostTracker()
            arb_nucleus_decomp(graph, 2, 3, tracker=tracker)
            works.append(tracker.work / graph.m)
        # Per-edge work stays within a constant band as m doubles.
        assert max(works) < 4 * min(works)

    def test_rho_grows_with_core_structure(self):
        shallow = erdos_renyi(200, 400, seed=3)
        deep = embed_cliques(shallow, 4, 10, seed=4)
        rho_shallow = arb_nucleus_decomp(shallow, 2, 3).rho
        rho_deep = arb_nucleus_decomp(deep, 2, 3).rho
        assert rho_deep > rho_shallow
