"""Determinism: every component must be bit-for-bit reproducible.

The whole evaluation pipeline (datasets, decompositions, simulated times)
is advertised as deterministic; these tests pin that down, since hidden
nondeterminism (set iteration order, unseeded RNG) would make EXPERIMENTS
tables unreproducible.
"""

import numpy as np

from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.experiments.harness import run_arb
from repro.graph.datasets import DATASETS
from repro.graph.generators import planted_partition, rmat_graph
from repro.machine.cache import CacheSimulator
from repro.parallel.runtime import CostTracker


def test_decomposition_runs_identical():
    graph = planted_partition(60, 5, 0.5, 0.02, seed=3)
    first_tracker, second_tracker = CostTracker(), CostTracker()
    first = arb_nucleus_decomp(graph, 2, 3, tracker=first_tracker)
    second = arb_nucleus_decomp(graph, 2, 3, tracker=second_tracker)
    assert first.as_dict() == second.as_dict()
    assert first_tracker.work == second_tracker.work
    assert first_tracker.span == second_tracker.span
    assert first_tracker.rounds == second_tracker.rounds
    assert first_tracker.total.contention == second_tracker.total.contention


def test_dataset_generation_identical():
    for spec in DATASETS.values():
        a, b = spec.generate(), spec.generate()
        assert np.array_equal(a.edges(), b.edges()), spec.name


def test_simulated_times_identical():
    graph = rmat_graph(7, 6, seed=2)
    a = run_arb(graph, 2, 3, NucleusConfig.optimal(2, 3), "g")
    b = run_arb(graph, 2, 3, NucleusConfig.optimal(2, 3), "g")
    assert a.time_parallel == b.time_parallel
    assert a.time_serial == b.time_serial


def test_cache_simulation_identical():
    graph = rmat_graph(6, 5, seed=4)
    results = []
    for _ in range(2):
        run = run_arb(graph, 2, 3, NucleusConfig(), "g",
                      cache=CacheSimulator())
        results.append((run.cache_misses, run.cache_accesses))
    assert results[0] == results[1]


def test_all_aggregators_deterministic():
    graph = planted_partition(50, 4, 0.5, 0.02, seed=9)
    for aggregation in ("array", "list_buffer", "hash"):
        cfg = NucleusConfig(aggregation=aggregation)
        runs = [arb_nucleus_decomp(graph, 3, 4, cfg) for _ in range(2)]
        assert runs[0].tracker.summary() == runs[1].tracker.summary()
