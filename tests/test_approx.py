"""Tests for sampling-based approximate clique counting."""

import numpy as np
import pytest

from repro.cliques.approx import approximate_clique_count, estimate_feasible_s
from repro.cliques.counting import total_clique_count
from repro.graph.csr import CSRGraph
from repro.graph.generators import (complete_graph, cycle_graph,
                                    erdos_renyi, planted_partition)


class TestExactMode:
    """sample_fraction >= 1 must count exactly (same charging scheme)."""

    @pytest.mark.parametrize("c", [2, 3, 4, 5])
    def test_complete_graph(self, c):
        g = complete_graph(8)
        estimate = approximate_clique_count(g, c, sample_fraction=1.0)
        assert estimate.estimate == total_clique_count(g, c)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        g = erdos_renyi(60, 300, seed=seed)
        for c in (3, 4):
            estimate = approximate_clique_count(g, c, sample_fraction=1.0)
            assert estimate.estimate == total_clique_count(g, c)

    def test_triangle_free(self):
        estimate = approximate_clique_count(cycle_graph(20), 3, 1.0)
        assert estimate.estimate == 0


class TestSampling:
    def test_unbiased_across_seeds(self):
        """Averaging estimates over seeds converges to the truth."""
        g = planted_partition(100, 6, 0.5, 0.01, seed=4)
        truth = total_clique_count(g, 3)
        estimates = [approximate_clique_count(g, 3, 0.3, seed=s).estimate
                     for s in range(12)]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.2)

    def test_metadata(self):
        g = erdos_renyi(50, 200, seed=1)
        estimate = approximate_clique_count(g, 3, 0.25, seed=2)
        assert estimate.samples == max(1, round(0.25 * estimate.total_edges))
        assert 0 < estimate.sample_fraction <= 1.0

    def test_empty_graph(self):
        g = CSRGraph.from_edges(5, [])
        estimate = approximate_clique_count(g, 3)
        assert estimate.estimate == 0.0
        assert estimate.samples == 0

    def test_validation(self):
        g = complete_graph(4)
        with pytest.raises(ValueError):
            approximate_clique_count(g, 1)
        with pytest.raises(ValueError):
            approximate_clique_count(g, 3, sample_fraction=0)


class TestFeasibleS:
    def test_sparse_graph_allows_deep_s(self):
        g = cycle_graph(50)  # no cliques beyond edges
        assert estimate_feasible_s(g, 2, budget=1000) == 7

    def test_dense_graph_is_capped(self):
        g = complete_graph(14)  # clique counts explode with s
        s = estimate_feasible_s(g, 2, budget=300, sample_fraction=1.0)
        assert s < 7

    def test_returns_at_least_r_plus_one(self):
        g = complete_graph(10)
        assert estimate_feasible_s(g, 3, budget=0, sample_fraction=1.0) == 4
