"""Tests for parallel sample sort and semisort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.runtime import CostTracker
from repro.parallel.sort import sample_sort, semisort


class TestSampleSort:
    def test_sorts(self):
        out = sample_sort([5, 2, 9, 1, 5, 0])
        assert list(out) == [0, 1, 2, 5, 5, 9]

    def test_empty_and_single(self):
        assert sample_sort([]).size == 0
        assert list(sample_sort([7])) == [7]

    def test_charges_nlogn(self):
        t = CostTracker()
        sample_sort(np.arange(1024)[::-1], tracker=t)
        assert t.work >= 1024 * 10

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-10**9, 10**9), max_size=300))
    def test_matches_numpy(self, values):
        out = sample_sort(values)
        assert list(out) == sorted(values)


class TestSemisort:
    def test_groups_by_key(self):
        keys, groups = semisort([3, 1, 3, 2, 1])
        assert list(keys) == [1, 2, 3]
        assert sorted(groups[0].tolist()) == [1, 4]  # indices of key 1
        assert groups[1].tolist() == [3]
        assert sorted(groups[2].tolist()) == [0, 2]

    def test_with_values(self):
        keys, groups = semisort([1, 2, 1], values=[10, 20, 30])
        assert list(keys) == [1, 2]
        assert sorted(groups[0].tolist()) == [10, 30]

    def test_empty(self):
        keys, groups = semisort([])
        assert keys.size == 0
        assert groups == []

    def test_linear_work(self):
        t = CostTracker()
        semisort(np.arange(1000) % 7, tracker=t)
        assert t.work == pytest.approx(1001)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 20), max_size=100))
    def test_partition_property(self, keys):
        unique, groups = semisort(keys)
        # Groups partition the index space and match the keys exactly.
        all_indices = sorted(i for g in groups for i in g.tolist())
        assert all_indices == list(range(len(keys)))
        for key, group in zip(unique, groups):
            assert all(keys[i] == key for i in group.tolist())
