"""Tests for the interprocedural charge-flow analyzer.

Covers the call-graph/summary machinery (repro.sanitize.callgraph,
.summaries), the strict rules PAR005--PAR008 (.rules), the parity
registry (.registry), the reporters, and the CLI entry point
(.chargeflow) --- against both a fixture package with known charge-flow
shapes and the real ``src/repro`` tree.
"""

import json
from pathlib import Path

from repro.sanitize.callgraph import build_project
from repro.sanitize.chargeflow import analyze, main
from repro.sanitize.parlint import lint_source
from repro.sanitize.registry import (collect_registry, is_engine_module,
                                     tracked_kernels)
from repro.sanitize.reporters import apply_baseline, report_sarif
from repro.sanitize.summaries import compute_summaries

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
ENGINEPKG = Path(__file__).parent / "fixtures" / "chargeflow" / "enginepkg"


def keyed(findings):
    return sorted((f.rule, Path(f.path).name, f.line) for f in findings)


class TestFixturePackage:
    def test_exact_finding_set(self):
        result = analyze(ENGINEPKG)
        assert keyed(result.findings) == [
            ("PAR005", "batchbad.py", 12),
            ("PAR006", "nondet.py", 8),
            ("PAR006", "nondet.py", 10),
            ("PAR006", "nondet.py", 12),
            ("PAR007", "batchbad.py", 15),
            ("PAR007", "batchpaired.py", 26),
            ("PAR008", "phases.py", 7),
        ]

    def test_charge_via_helper_needs_the_call_graph(self):
        # Lexically the loop and the parallel region never charge; only
        # the interprocedural oracle sees Meter.bump reach the tracker.
        path = ENGINEPKG / "charged_via_helper.py"
        lexical = lint_source(path.read_text(), str(path))
        assert sorted(f.rule for f in lexical) == ["PAR001", "PAR002"]
        result = analyze(ENGINEPKG)
        assert not [f for f in result.findings
                    if f.path.endswith("charged_via_helper.py")]

    def test_fixture_registry_parses(self):
        project = build_project(ENGINEPKG)
        entries, errors = collect_registry(project)
        assert errors == []
        assert sorted(entries) == [
            "enginepkg.batchpaired.batch_drifted",
            "enginepkg.batchpaired.batch_sum",
        ]

    def test_blessed_kernel_is_clean(self):
        result = analyze(ENGINEPKG)
        assert not [f for f in result.findings
                    if "batch_sum" in f.message]

    def test_stable_sort_is_not_a_hazard(self):
        result = analyze(ENGINEPKG)
        assert not [f for f in result.findings
                    if f.rule == "PAR006" and f.line > 13]


class TestRealTree:
    def test_src_tree_is_strict_clean(self):
        result = analyze(SRC)
        assert result.findings == []

    def test_registry_covers_every_batch_kernel(self):
        project = build_project(SRC)
        summaries = compute_summaries(project)
        entries, errors = collect_registry(project)
        assert errors == []
        engine = sorted((m for m in project.modules.values()
                         if is_engine_module(m)), key=lambda m: m.name)
        assert [m.name for m in engine] == [
            "repro.analysis.batchhier",
            "repro.baselines.batchnd", "repro.baselines.batchtruss",
            "repro.cliques.batchlist", "repro.core.batchcore",
            "repro.core.batchpeel", "repro.distributed.batchexchange"]
        for module in engine:
            kernels = tracked_kernels(project, summaries, module)
            assert kernels, module.name
            for fn in kernels:
                assert fn.qualname in entries, fn.qualname


class TestMutations:
    """Deleting any one charge call from a batch kernel must trip a rule."""

    @staticmethod
    def _mutated(relpath, needle):
        path = (SRC / relpath).resolve()
        source = path.read_text(encoding="utf-8")
        assert source.count(needle) == 1
        return {str(path): source.replace(needle, "pass")}

    def test_dropping_a_batchpeel_charge_breaks_parity(self):
        overlay = self._mutated(
            "core/batchpeel.py",
            "tracker.add_work_int(m * route_work"
            " + total_probes * table.suffix_width)")
        result = analyze(SRC, overlay=overlay)
        assert any(f.rule == "PAR007" and "_edges_alive_many" in f.message
                   for f in result.findings)

    def test_dropping_a_batchlist_charge_breaks_parity(self):
        overlay = self._mutated(
            "cliques/batchlist.py", "tracker.add_work(float(dg.n))")
        result = analyze(SRC, overlay=overlay)
        assert any(f.rule == "PAR007" for f in result.findings)


class TestReporters:
    def test_sarif_shape(self):
        result = analyze(ENGINEPKG)
        doc = json.loads(report_sarif(result.findings, base=REPO))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"PAR005", "PAR006", "PAR007", "PAR008"} <= rule_ids
        assert len(run["results"]) == len(result.findings)
        for res in run["results"]:
            uri = (res["locations"][0]["physicalLocation"]
                   ["artifactLocation"]["uri"])
            assert not uri.startswith("/")

    def test_baseline_filters_and_reports_stale(self):
        result = analyze(ENGINEPKG)
        entries = [
            {"rule": "PAR005",
             "path": "tests/fixtures/chargeflow/enginepkg/batchbad.py",
             "scope": "enginepkg.batchbad.batch_scale"},
            {"rule": "PAR001", "path": "gone.py", "scope": "<module>"},
        ]
        kept = apply_baseline(result.findings, entries, result.scope_of,
                              base=REPO)
        rules = [f.rule for f in kept]
        assert "PAR005" not in rules
        assert rules.count("STALE-BASELINE") == 1


class TestCli:
    def test_strict_clean_tree_exits_zero(self, capsys):
        assert main([str(SRC)]) == 0
        capsys.readouterr()

    def test_findings_exit_nonzero(self, capsys):
        assert main([str(ENGINEPKG)]) == 1
        out = capsys.readouterr().out
        assert "PAR007" in out

    def test_json_report(self, capsys):
        assert main([str(ENGINEPKG), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "parlint-chargeflow"
        assert len(doc["findings"]) == 7

    def test_sarif_to_file(self, tmp_path, capsys):
        out = tmp_path / "out.sarif"
        assert main([str(ENGINEPKG), "--sarif", str(out)]) == 1
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["runs"][0]["results"]
