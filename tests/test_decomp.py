"""Tests for ARB-NUCLEUS-DECOMP (Algorithm 2) on known instances."""

from math import comb

import networkx as nx
import pytest

from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.core.verify import brute_force_kcore, brute_force_nucleus
from repro.graph.generators import complete_graph, erdos_renyi
from repro.parallel.runtime import CostTracker

NAMES = "abcdefg"


def named(result):
    return {"".join(NAMES[v] for v in clique): core
            for clique, core in result.as_dict().items()}


class TestFigure1Walkthrough:
    """Section 4.2 walks through (3,4) on Figure 1 exactly; we assert it."""

    def test_core_numbers(self, fig1):
        cores = named(arb_nucleus_decomp(fig1, 3, 4))
        assert cores["cdg"] == 0
        assert cores["abf"] == cores["aef"] == cores["bef"] == 1
        others = {k: v for k, v in cores.items()
                  if k not in ("cdg", "abf", "aef", "bef")}
        assert len(others) == 10
        assert set(others.values()) == {2}

    def test_three_rounds(self, fig1):
        assert arb_nucleus_decomp(fig1, 3, 4).rho == 3

    def test_counts(self, fig1):
        result = arb_nucleus_decomp(fig1, 3, 4)
        assert result.n_r_cliques == 14
        assert result.n_s_cliques == 6
        assert result.max_core == 2

    def test_core_histogram(self, fig1):
        hist = arb_nucleus_decomp(fig1, 3, 4).core_histogram()
        assert hist == {0: 1, 1: 3, 2: 10}

    def test_round_log_matches_figure2(self, fig1):
        """Figure 2's narrative: round 1 peels cdg (no updates), round 2
        peels abf/aef/bef (updating abe), round 3 peels the rest."""
        result = arb_nucleus_decomp(fig1, 3, 4)
        assert result.round_log == [(0, 1, 0), (1, 3, 1), (2, 10, 0)]

    def test_round_log_totals(self, community60):
        result = arb_nucleus_decomp(community60, 2, 3)
        assert sum(peeled for _lvl, peeled, _upd in result.round_log) == \
            result.n_r_cliques
        assert len(result.round_log) == result.rho

    def test_core_of_single_clique(self, fig1):
        result = arb_nucleus_decomp(fig1, 3, 4)
        assert result.core_of((2, 3, 6)) == 0  # cdg
        assert result.core_of((0, 1, 5)) == 1  # abf
        with pytest.raises(KeyError):
            result.core_of((4, 5, 6))  # efg is not a triangle


class TestSpecialCases:
    def test_12_equals_kcore(self, community60):
        result = arb_nucleus_decomp(community60, 1, 2)
        expected = brute_force_kcore(community60)
        for v in range(community60.n):
            assert result.core_of((v,)) == expected[v]

    def test_12_matches_networkx(self, community60):
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        nx_core = nx.core_number(nx_graph)
        result = arb_nucleus_decomp(community60, 1, 2)
        for v in range(community60.n):
            assert result.core_of((v,)) == nx_core[v]

    def test_23_is_ktruss(self, community60):
        result = arb_nucleus_decomp(community60, 2, 3,
                                    NucleusConfig.optimal(2, 3))
        assert result.as_dict() == brute_force_nucleus(community60, 2, 3)

    def test_complete_graph_single_round(self):
        # Every r-clique of K_n sits in C(n-r, s-r) s-cliques; peeling
        # removes everything in one round.
        g = complete_graph(7)
        for r, s in ((1, 2), (2, 3), (2, 4), (3, 5)):
            result = arb_nucleus_decomp(g, r, s)
            assert result.rho == 1
            assert result.max_core == comb(7 - r, s - r)
            assert set(result.as_dict().values()) == {comb(7 - r, s - r)}

    def test_triangle_free_graph(self, ring12):
        result = arb_nucleus_decomp(ring12, 2, 3)
        assert result.max_core == 0
        assert result.rho == 1
        assert result.n_s_cliques == 0

    def test_star_kcore_is_one(self, star9):
        result = arb_nucleus_decomp(star9, 1, 2)
        assert result.max_core == 1

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph
        g = CSRGraph.from_edges(5, [])
        result = arb_nucleus_decomp(g, 2, 3)
        assert result.n_r_cliques == 0
        assert result.rho == 0

    def test_no_r_cliques_at_all(self, ring12):
        result = arb_nucleus_decomp(ring12, 3, 4)
        assert result.n_r_cliques == 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("r,s", [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4),
                                     (3, 5), (4, 5)])
    def test_community_graph(self, r, s, community60):
        result = arb_nucleus_decomp(community60, r, s)
        assert result.as_dict() == brute_force_nucleus(community60, r, s)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_34(self, seed):
        g = erdos_renyi(40, 160, seed=seed)
        result = arb_nucleus_decomp(g, 3, 4)
        assert result.as_dict() == brute_force_nucleus(g, 3, 4)


class TestResultMetadata:
    def test_rho_bounded_by_cliques(self, community60):
        result = arb_nucleus_decomp(community60, 2, 3)
        assert 1 <= result.rho <= result.n_r_cliques

    def test_max_core_consistent_with_dict(self, community60):
        result = arb_nucleus_decomp(community60, 2, 3)
        assert result.max_core == max(result.as_dict().values())

    def test_tracker_populated(self, community60):
        tracker = CostTracker()
        result = arb_nucleus_decomp(community60, 2, 3, tracker=tracker)
        assert tracker.work > 0
        assert tracker.rounds >= result.rho
        assert tracker.total.cliques_enumerated >= result.n_s_cliques

    def test_memory_units_reported(self, community60):
        result = arb_nucleus_decomp(community60, 2, 3)
        assert result.table_memory_units > 0

    def test_invalid_rs(self, community60):
        with pytest.raises(ValueError):
            arb_nucleus_decomp(community60, 3, 3)
