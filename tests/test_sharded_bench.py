"""Bench + CLI integration for the sharded suite.

Keeps to the cheapest pinned entry (dblp at (1,2) on 2 shards) so the
whole file stays fast while still exercising the full
``run_sharded_entry`` path: single-node reference, both partitioners,
comm accounting, and the oracle match flag.
"""

import json

import pytest

from repro import cli
from repro.observe import bench
from repro.observe.bench import (SHARDED_SUITE, compare, run_sharded_entry,
                                 sharded_entry_key)


@pytest.fixture(scope="module")
def entry():
    return run_sharded_entry("dblp", 1, 2, 2)


class TestShardedEntry:
    def test_entry_shape(self, entry):
        assert entry["graph"] == "dblp"
        assert (entry["r"], entry["s"], entry["shards"]) == (1, 2, 2)
        for part in ("hash", "mincut"):
            sub = entry[part]
            assert sub["comm_bytes"] >= 0
            assert sub["edge_cut"] >= 0
            assert 0.0 <= sub["cut_fraction"] <= 1.0
            assert sub["imbalance"] >= 1.0
            assert sub["matches_oracle"]
        assert entry["matches_oracle"]

    def test_comm_reduction_definition(self, entry):
        assert entry["comm_reduction"] == pytest.approx(
            entry["hash"]["comm_time"] / entry["mincut"]["comm_time"])
        assert entry["comm_reduction"] > 1.0
        assert entry["comm_time"] == entry["mincut"]["comm_time"]

    def test_speedup_definition(self, entry):
        assert entry["speedup"] == pytest.approx(
            entry["T60_single"] / entry["T60"])

    def test_entry_key(self, entry):
        assert sharded_entry_key(entry) == "shard:dblp(1,2)x2"

    def test_suite_covers_gated_shard_counts(self):
        shard_counts = {shards for _, _, _, shards in SHARDED_SUITE}
        assert {4, 8} <= shard_counts


class TestCompareShardedSection:
    def test_sharded_regression_detected(self, entry):
        good = {"sharded": [entry]}
        worse = {"sharded": [dict(entry, comm_time=entry["comm_time"] * 2)]}
        assert compare(good, good) == []
        findings = compare(worse, good)
        assert any("comm_time" in f for f in findings)

    def test_section_skipped_when_absent(self, entry):
        # Older payloads predate the sharded suite; comparing against
        # them must not fail.
        assert compare({"sharded": [entry]}, {}) == []
        assert compare({}, {"sharded": [entry]}) == []

    def test_comm_reduction_is_higher_better(self):
        assert bench.COMPARED_METRICS["comm_reduction"] is False
        assert bench.COMPARED_METRICS["comm_time"] is True


class TestShardCli:
    def test_shard_subcommand_verifies(self, capsys):
        rc = cli.main(["shard", "--dataset", "dblp", "--r", "1", "--s", "2",
                       "--shards", "2", "--verify"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cores identical to the single-node run" in out
        assert "comm" in out

    def test_stats_partition_report(self, capsys):
        rc = cli.main(["stats", "--dataset", "dblp", "--shards", "4",
                       "--s", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "edge cut" in out
        assert "mincut" in out
        assert "triangle spill" in out

    def test_shard_trace_has_shard_lanes(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        rc = cli.main(["shard", "--dataset", "dblp", "--r", "1", "--s", "2",
                       "--shards", "2", "--trace", str(path)])
        capsys.readouterr()
        assert rc == 0
        payload = json.loads(path.read_text())
        names = {event["args"]["name"]
                 for event in payload["traceEvents"]
                 if event.get("name") == "thread_name"}
        assert any(name.startswith("shard 0 ") for name in names)
        assert any(name.startswith("shard 1 ") for name in names)
