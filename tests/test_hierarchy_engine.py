"""Differential suite for the tracker-charged hierarchy engine.

``nucleus_hierarchy`` (scalar and batch kernels) must reproduce the
post-hoc ``build_hierarchy`` oracle exactly --- same node ids, parent
links, levels and member sets --- and the two kernels must charge the
simulated machine bit-for-bit identically (the PAR007 parity contract
for ``batch_levels``).
"""

import pytest

from repro.analysis.construct import nucleus_hierarchy
from repro.analysis.hierarchy import build_hierarchy
from repro.cliques.listing import collect_cliques
from repro.cliques.orient import orient
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import (erdos_renyi, figure1_graph,
                                    planted_partition)
from repro.parallel.runtime import CostTracker

CASES = [
    ("fig1-2-3", figure1_graph, 2, 3),
    ("fig1-3-4", figure1_graph, 3, 4),
    ("fig1-1-2", figure1_graph, 1, 2),
    ("planted-2-3", lambda: planted_partition(40, 4, 0.5, 0.02, seed=2),
     2, 3),
    ("er-2-3", lambda: erdos_renyi(60, 180, seed=5), 2, 3),
    ("er-3-4", lambda: erdos_renyi(60, 180, seed=5), 3, 4),
]


def hierarchy_key(hierarchy):
    return [(n.level, n.node_id, n.parent_id, n.members)
            for n in hierarchy.nuclei]


@pytest.mark.parametrize("name,make,r,s", CASES,
                         ids=[c[0] for c in CASES])
class TestEngineMatchesOracle:
    def test_scalar_engine(self, name, make, r, s):
        graph = make()
        result = arb_nucleus_decomp(graph, r, s)
        oracle = build_hierarchy(graph, result)
        engine = nucleus_hierarchy(graph, result, engine="scalar")
        assert hierarchy_key(engine) == hierarchy_key(oracle)

    def test_batch_engine(self, name, make, r, s):
        graph = make()
        result = arb_nucleus_decomp(graph, r, s)
        oracle = build_hierarchy(graph, result)
        engine = nucleus_hierarchy(graph, result, engine="batch",
                                   listing_engine="batch")
        assert hierarchy_key(engine) == hierarchy_key(oracle)

    def test_charge_parity(self, name, make, r, s):
        # The PAR007 contract made concrete: identical simulated cost,
        # not just identical output.
        graph = make()
        result = arb_nucleus_decomp(graph, r, s)
        scalar_tracker, batch_tracker = CostTracker(), CostTracker()
        nucleus_hierarchy(graph, result, tracker=scalar_tracker,
                          engine="scalar")
        nucleus_hierarchy(graph, result, tracker=batch_tracker,
                          engine="batch")
        assert scalar_tracker.summary() == batch_tracker.summary()


class TestEngineOptions:
    def test_precomputed_s_cliques(self):
        graph = figure1_graph()
        result = arb_nucleus_decomp(graph, 2, 3)
        dg, _ = orient(graph, "degeneracy")
        s_cliques = collect_cliques(dg, 3)
        direct = nucleus_hierarchy(graph, result)
        provided = nucleus_hierarchy(graph, result, s_cliques=s_cliques)
        assert hierarchy_key(direct) == hierarchy_key(provided)

    def test_listing_engine_is_cosmetic(self):
        graph = planted_partition(40, 4, 0.5, 0.02, seed=2)
        result = arb_nucleus_decomp(graph, 2, 3)
        scalar_list = nucleus_hierarchy(graph, result,
                                        listing_engine="scalar")
        batch_list = nucleus_hierarchy(graph, result,
                                       listing_engine="batch")
        assert hierarchy_key(scalar_list) == hierarchy_key(batch_list)

    def test_unknown_engine_rejected(self):
        graph = figure1_graph()
        result = arb_nucleus_decomp(graph, 2, 3)
        with pytest.raises(ValueError):
            nucleus_hierarchy(graph, result, engine="magic")

    def test_charges_are_recorded_in_phases(self):
        tracker = CostTracker()
        graph = planted_partition(40, 4, 0.5, 0.02, seed=2)
        result = arb_nucleus_decomp(graph, 2, 3)
        nucleus_hierarchy(graph, result, tracker=tracker, engine="batch")
        assert {"hier_list", "hier_levels", "hier_emit"} <= \
            set(tracker.phases)
        assert tracker.work > 0
        assert tracker.rounds > 0


class TestOracleRouting:
    """`build_hierarchy` itself must honor the configured lister."""

    def test_oracle_accepts_precomputed_cliques(self):
        graph = figure1_graph()
        result = arb_nucleus_decomp(graph, 2, 3)
        dg, _ = orient(graph, "degeneracy")
        s_cliques = collect_cliques(dg, 3)
        assert hierarchy_key(build_hierarchy(graph, result)) == \
            hierarchy_key(build_hierarchy(graph, result,
                                          s_cliques=s_cliques))

    def test_oracle_uses_batch_lister(self):
        graph = planted_partition(40, 4, 0.5, 0.02, seed=2)
        result = arb_nucleus_decomp(graph, 2, 3)
        assert hierarchy_key(build_hierarchy(graph, result)) == \
            hierarchy_key(build_hierarchy(graph, result,
                                          listing_engine="batch"))
