"""Differential testing: every implementation agrees with every other.

The repository contains four independent routes to the same answer (ARB,
the serial/parallel Sariyuce-style peelers, the local h-index algorithms,
and the truss-specific baselines) plus a brute-force oracle and a
definitional validator.  This module fuzzes them against each other on a
batch of random graphs --- the strongest single correctness signal in the
suite, since the implementations share almost no code.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (and_nn_decomposition, nd_decomposition,
                             pkt_opt_cpu_decomposition)
from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import erdos_renyi, planted_partition, rmat_graph


def graphs_for(seed: int):
    kind = seed % 3
    if kind == 0:
        return erdos_renyi(30, 110, seed=seed)
    if kind == 1:
        return rmat_graph(5, 5, seed=seed)
    return planted_partition(30, 3, 0.5, 0.02, seed=seed)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), rs=st.sampled_from([(2, 3), (3, 4)]))
def test_four_way_agreement(seed, rs):
    graph = graphs_for(seed)
    r, s = rs
    arb = arb_nucleus_decomp(graph, r, s).as_dict()
    assert nd_decomposition(graph, r, s).core == arb
    assert and_nn_decomposition(graph, r, s).core == arb
    if (r, s) == (2, 3):
        assert pkt_opt_cpu_decomposition(graph).core == arb


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_agreement_under_adversarial_config(seed):
    """The least-common configuration path agrees with the default one."""
    graph = graphs_for(seed)
    adversarial = NucleusConfig(
        levels=1, table_style="hash", contiguous=False,
        inverse_map="binary_search", relabel=False, aggregation="array",
        bucketing="fibonacci", orientation="identity",
        update_arithmetic="representative", bucket_window=1)
    a = arb_nucleus_decomp(graph, 2, 3, adversarial).as_dict()
    b = arb_nucleus_decomp(graph, 2, 3).as_dict()
    assert a == b


@pytest.mark.parametrize("seed", range(5))
def test_window_size_irrelevant_to_output(seed):
    graph = graphs_for(seed + 100)
    outputs = set()
    for window in (1, 2, 7, 64, 1024):
        cfg = NucleusConfig(bucket_window=window)
        result = arb_nucleus_decomp(graph, 2, 3, cfg)
        outputs.add(tuple(sorted(result.as_dict().items())))
    assert len(outputs) == 1
