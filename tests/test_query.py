"""Tests for the nucleus query service and hierarchy serialization."""

import pytest

from repro.analysis import (HierarchyIndex, hierarchy_to_payload,
                            load_hierarchy_json, nucleus_hierarchy,
                            payload_to_hierarchy, save_hierarchy_json)
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import figure1_graph, planted_partition


@pytest.fixture(scope="module")
def fig1():
    graph = figure1_graph()
    hierarchy = nucleus_hierarchy(graph, arb_nucleus_decomp(graph, 3, 4))
    return hierarchy, HierarchyIndex(hierarchy)


@pytest.fixture(scope="module")
def community():
    graph = planted_partition(40, 4, 0.5, 0.02, seed=2)
    hierarchy = nucleus_hierarchy(graph, arb_nucleus_decomp(graph, 2, 3))
    return hierarchy, HierarchyIndex(hierarchy)


class TestBasicLookups:
    def test_node_table(self, fig1):
        hierarchy, index = fig1
        for nucleus in hierarchy.nuclei:
            assert index.node(nucleus.node_id) is nucleus
        with pytest.raises(KeyError):
            index.node(len(hierarchy) + 7)

    def test_levels(self, fig1):
        _, index = fig1
        assert index.levels() == [0, 1, 2]

    def test_children_invert_parent_links(self, community):
        hierarchy, index = community
        for nucleus in hierarchy.nuclei:
            for child in index.children_of(nucleus.node_id):
                assert child.parent_id == nucleus.node_id
        child_ids = {c.node_id for n in hierarchy.nuclei
                     for c in index.children_of(n.node_id)}
        linked = {n.node_id for n in hierarchy.nuclei if n.parent_id != -1}
        assert child_ids == linked


class TestQueryShapes:
    """The three ROADMAP query shapes, against the flat-scan answers."""

    def test_at_level_matches_scan(self, community):
        hierarchy, index = community
        for level in index.levels():
            scan = [n.node_id for n in hierarchy.nuclei
                    if n.level == level]
            assert [n.node_id for n in index.at_level(level)] == scan
        assert index.at_level(10**6) == []

    def test_nucleus_of_vertex(self, fig1):
        _, index = fig1
        # Figure 1: the level-2 nucleus is the 5-clique {a..e} = {0..4}.
        for vertex in range(5):
            found = index.nucleus_of_vertex(vertex, 2)
            assert len(found) == 1
            assert found[0].vertices == {0, 1, 2, 3, 4}
        assert index.nucleus_of_vertex(6, 2) == []   # g never reaches 2
        assert index.nucleus_of_vertex(99, 0) == []  # not in any clique

    def test_nucleus_of_vertex_matches_scan(self, community):
        hierarchy, index = community
        for vertex in range(0, 40, 7):
            for level in index.levels():
                scan = [n.node_id for n in hierarchy.nuclei
                        if n.level == level and vertex in n.vertices]
                got = [n.node_id
                       for n in index.nucleus_of_vertex(vertex, level)]
                assert got == scan

    def test_densest_containing_edge(self, fig1):
        _, index = fig1
        # a--b sit together in the 5-clique: level 2 is the densest.
        nucleus = index.densest_containing_edge(0, 1)
        assert nucleus.level == 2
        assert nucleus.vertices == {0, 1, 2, 3, 4}
        # f is only ever in the 13-triangle component, g only in cdg's
        # isolated nucleus: no shared nucleus at all.
        assert index.densest_containing_edge(5, 6) is None
        # c and g share only the level-0 cdg triangle.
        shared = index.densest_containing_edge(2, 6)
        assert shared.level == 0
        assert shared.vertices == {2, 3, 6}

    def test_densest_containing_edge_matches_scan(self, community):
        hierarchy, index = community
        for u, v in ((0, 1), (3, 17), (5, 38)):
            best = index.densest_containing_edge(u, v)
            scan = [n for n in hierarchy.nuclei
                    if u in n.vertices and v in n.vertices]
            if not scan:
                assert best is None
                continue
            top = max(n.level for n in scan)
            assert best.level == top
            assert best.node_id in {n.node_id for n in scan
                                    if n.level == top}

    def test_densest_containing_vertex(self, fig1):
        _, index = fig1
        assert index.densest_containing_vertex(0).level == 2
        assert index.densest_containing_vertex(6).level == 0
        assert index.densest_containing_vertex(99) is None


class TestHierarchySerialization:
    def test_payload_round_trip(self, fig1):
        hierarchy, _ = fig1
        loaded = payload_to_hierarchy(hierarchy_to_payload(hierarchy))
        assert loaded.r == hierarchy.r and loaded.s == hierarchy.s
        assert [(n.level, n.node_id, n.parent_id, n.members)
                for n in loaded.nuclei] == \
            [(n.level, n.node_id, n.parent_id, n.members)
             for n in hierarchy.nuclei]

    def test_json_round_trip(self, community, tmp_path):
        hierarchy, index = community
        path = tmp_path / "hierarchy.json"
        save_hierarchy_json(hierarchy, path)
        loaded = load_hierarchy_json(path)
        assert [(n.level, n.node_id, n.parent_id, n.members)
                for n in loaded.nuclei] == \
            [(n.level, n.node_id, n.parent_id, n.members)
             for n in hierarchy.nuclei]
        # The query service answers identically over the loaded copy.
        reloaded = HierarchyIndex(loaded)
        assert reloaded.levels() == index.levels()
        for level in index.levels():
            assert [n.node_id for n in reloaded.at_level(level)] == \
                [n.node_id for n in index.at_level(level)]
