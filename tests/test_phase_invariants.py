"""Per-phase accounting invariants across configurations.

These pin the contracts the profiling layer (repro.observe) depends on:
phase counters partition the totals, the root frame holds the critical
path, the round log matches rho, and the five-term time breakdown is an
exact decomposition of ``MachineModel.time`` --- for every aggregator,
every bucketing backend, serial and parallel thread counts.
"""

import pytest

from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import figure1_graph
from repro.machine.cache import CacheSimulator
from repro.parallel.runtime import CostTracker, MachineModel

AGGREGATORS = ["array", "list_buffer", "hash"]
BUCKETINGS = ["julienne", "fibonacci", "dense"]
RS_PAIRS = [(1, 2), (2, 3), (3, 4)]


def _run(r, s, aggregation, bucketing, with_cache=False):
    from dataclasses import replace
    config = replace(NucleusConfig.optimal(r, s), aggregation=aggregation,
                     bucketing=bucketing)
    tracker = CostTracker()
    if with_cache:
        tracker.cache = CacheSimulator()
    result = arb_nucleus_decomp(figure1_graph(), r, s, config, tracker)
    return tracker, result


@pytest.mark.parametrize("aggregation", AGGREGATORS)
@pytest.mark.parametrize("bucketing", BUCKETINGS)
@pytest.mark.parametrize("r,s", RS_PAIRS)
class TestPhasePartition:
    def test_phase_work_sums_to_total(self, r, s, aggregation, bucketing):
        tracker, _ = _run(r, s, aggregation, bucketing)
        phase_work = sum(p.work for p in tracker.phases.values())
        assert phase_work == pytest.approx(tracker.total.work)
        assert tracker.total.work > 0

    def test_root_frame_span_is_tracker_span(self, r, s, aggregation,
                                             bucketing):
        tracker, _ = _run(r, s, aggregation, bucketing)
        assert tracker.span == tracker._frames[0].span
        assert len(tracker._frames) == 1  # all task frames popped
        phase_span = sum(p.span for p in tracker.phases.values())
        assert phase_span == pytest.approx(tracker.span)

    def test_round_log_matches_rho(self, r, s, aggregation, bucketing):
        tracker, result = _run(r, s, aggregation, bucketing)
        assert len(result.round_log) == result.rho
        assert tracker.phases["peel"].rounds == result.rho
        peeled = sum(entry[1] for entry in result.round_log)
        assert peeled == result.n_r_cliques

    def test_phase_rounds_sum_to_total(self, r, s, aggregation, bucketing):
        tracker, _ = _run(r, s, aggregation, bucketing)
        phase_rounds = sum(p.rounds for p in tracker.phases.values())
        assert phase_rounds == tracker.total.rounds

    def test_phase_contention_sums_to_total(self, r, s, aggregation,
                                            bucketing):
        tracker, _ = _run(r, s, aggregation, bucketing)
        phase_contention = sum(p.contention
                               for p in tracker.phases.values())
        assert phase_contention == pytest.approx(tracker.total.contention)


@pytest.mark.parametrize("aggregation", AGGREGATORS)
@pytest.mark.parametrize("bucketing", BUCKETINGS)
@pytest.mark.parametrize("threads", [1, 2, 30, 60])
class TestBreakdownExactness:
    def test_terms_sum_to_time(self, aggregation, bucketing, threads):
        tracker, _ = _run(2, 3, aggregation, bucketing, with_cache=True)
        machine = MachineModel()
        breakdown = machine.time_breakdown(tracker, threads)
        total = breakdown["total"]
        terms_sum = (total["work"] + total["span"] + total["barrier"]
                     + total["contention"] + total["cache"])
        assert total["time"] == terms_sum  # exact by construction
        assert machine.time(tracker, threads) == pytest.approx(
            terms_sum, rel=1e-12)

    def test_serial_run_has_no_parallel_terms(self, aggregation, bucketing,
                                              threads):
        if threads != 1:
            pytest.skip("serial-only invariant")
        tracker, _ = _run(2, 3, aggregation, bucketing, with_cache=True)
        total = MachineModel().time_breakdown(tracker, 1)["total"]
        assert total["barrier"] == 0.0
        assert total["contention"] == 0.0

    def test_phase_rows_sum_to_total(self, aggregation, bucketing, threads):
        tracker, _ = _run(2, 3, aggregation, bucketing, with_cache=True)
        breakdown = MachineModel().time_breakdown(tracker, threads)
        phase_time = sum(p["time"] for p in breakdown["phases"].values())
        assert phase_time == pytest.approx(breakdown["total"]["time"])
