"""Tests for the Markdown report renderer."""

from repro.experiments.harness import FigureResult
from repro.experiments.report import (figure_section, markdown_table,
                                      render_report)


def test_markdown_table_shape():
    text = markdown_table([{"a": 1, "b": 2.5}], ["a", "b"])
    lines = text.strip().splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2.5 |"


def test_markdown_table_missing_and_none():
    text = markdown_table([{"a": None}], ["a", "b"])
    assert "|  |  |" in text


def test_markdown_table_empty():
    assert "no rows" in markdown_table([], ["a"])


def test_figure_section():
    fig = FigureResult("fig99", "demo", rows=[{"x": 1}])
    section = figure_section(fig, ["x"], commentary="Hello.")
    assert section.startswith("### fig99: demo")
    assert "Hello." in section
    assert "| x |" in section


def test_render_report():
    out = render_report("Title", "Preamble text.", ["sec1\n", "sec2\n"])
    assert out.startswith("# Title")
    assert "Preamble text." in out
    assert "sec1" in out and "sec2" in out
