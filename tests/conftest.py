"""Shared fixtures for the test suite."""

import pytest

from repro.graph.generators import (complete_graph, cycle_graph, erdos_renyi,
                                    figure1_graph, planted_partition,
                                    star_graph)


@pytest.fixture
def fig1():
    """The paper's Figure 1 example graph (7 vertices, 15 edges)."""
    return figure1_graph()


@pytest.fixture
def k6():
    return complete_graph(6)


@pytest.fixture
def community60():
    """A 60-vertex planted-partition graph rich in small cliques."""
    return planted_partition(60, 5, 0.5, 0.02, seed=3)


@pytest.fixture
def sparse100():
    """A sparse 100-vertex random graph."""
    return erdos_renyi(100, 180, seed=7)


@pytest.fixture
def ring12():
    return cycle_graph(12)


@pytest.fixture
def star9():
    return star_graph(9)
