"""Tests for the cache simulator and simulated address space."""

import pytest

from repro.machine.cache import AddressSpace, CacheSimulator


class TestCacheSimulator:
    def test_cold_miss_then_hit(self):
        c = CacheSimulator()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.misses == 1
        assert c.accesses == 2

    def test_line_granularity(self):
        c = CacheSimulator(line_words=8)
        c.access(0)
        assert c.access(7) is True  # same line
        assert c.access(8) is False  # next line

    def test_lru_eviction(self):
        c = CacheSimulator(line_words=1, n_sets=1, ways=2)
        c.access(0)
        c.access(1)
        c.access(0)  # refresh 0
        c.access(2)  # evicts 1
        assert c.access(0) is True
        assert c.access(1) is False

    def test_sequential_beats_scattered(self):
        seq = CacheSimulator()
        for a in range(4096):
            seq.access(a)
        scat = CacheSimulator()
        for a in range(4096):
            scat.access((a * 7919) % (1 << 20))
        assert seq.miss_rate < scat.miss_rate

    def test_sampling_scales_counts(self):
        c = CacheSimulator(sample=4)
        for a in range(1000):
            c.access(a * 100)
        assert c.accesses == pytest.approx(1000, abs=4)
        assert c.misses > 0

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheSimulator(line_words=3)
        with pytest.raises(ValueError):
            CacheSimulator(n_sets=100)

    def test_reset_counters(self):
        c = CacheSimulator()
        c.access(0)
        c.reset_counters()
        assert c.accesses == 0
        assert c.misses == 0

    def test_unsampled_access_returns_none(self):
        c = CacheSimulator(sample=4)
        results = [c.access(0) for _ in range(8)]
        # Only every 4th access is simulated; the rest are skipped, and a
        # skipped access must not masquerade as a hit.
        assert results.count(None) == 6
        sampled = [r for r in results if r is not None]
        assert sampled == [False, True]  # cold miss, then a line hit

    def test_reset_clears_sampling_phase(self):
        # Regression: reset_counters used to leave _skip mid-phase, so the
        # same access stream measured before and after a reset sampled
        # *different* accesses and produced different counts.
        def measure(c):
            c.reset_counters()
            for a in range(0, 1000, 3):
                c.access(a * 17)
            return c.accesses, c.misses

        c = CacheSimulator(sample=4)
        c.access(0)  # leave the sampling phase mid-window
        first = measure(c)
        second = measure(c)
        assert first[0] == second[0]  # identical sampled-access counts

    def test_reset_clears_lru_clock(self):
        c = CacheSimulator()
        for a in range(4096):
            c.access(a)
        c.reset_counters()
        assert c._clock == 0
        # Stamps were re-zeroed with the clock, so recency comparisons
        # after the reset are internally consistent: a line touched now is
        # strictly newer than everything resident.
        assert int(c._stamp.max()) == 0
        assert c.access(0) in (True, False)
        assert int(c._stamp.max()) == 1

    def test_full_reset_drops_contents(self):
        c = CacheSimulator()
        c.access(0)
        assert c.access(0) is True
        c.reset()
        assert c.access(0) is False  # cold again: tags were dropped
        assert c.misses == 1

    def test_miss_rate_empty(self):
        assert CacheSimulator().miss_rate == 0.0


class TestAddressSpace:
    def test_disjoint_allocations(self):
        space = AddressSpace()
        a = space.alloc(100)
        b = space.alloc(100)
        assert b >= a + 100

    def test_scatter_gap(self):
        space = AddressSpace()
        a = space.alloc(10)
        b = space.alloc(10)
        assert b - (a + 10) >= AddressSpace.SCATTER_GAP - 10

    def test_contiguous_packing(self):
        space = AddressSpace()
        a = space.alloc(10)
        b = space.alloc(10, contiguous_with_previous=True)
        assert b == a + 10
