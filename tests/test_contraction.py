"""Tests for graph contraction (Section 5.6) and relabeling (Section 5.4)."""

import numpy as np
import pytest

from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.core.verify import brute_force_nucleus
from repro.graph.contraction import ContractionManager, WorkingGraph
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.relabel import relabel_by_rank
from repro.cliques.orient import orientation_rank
from repro.parallel.runtime import CostTracker


class TestWorkingGraph:
    def test_starts_as_views(self, fig1):
        w = WorkingGraph(fig1)
        assert list(w.neighbors(6)) == [2, 3]
        assert w.degree(0) == 5

    def test_replace(self, fig1):
        w = WorkingGraph(fig1)
        w.replace(0, np.array([1, 2], dtype=np.int64))
        assert w.degree(0) == 2
        # Other vertices untouched.
        assert w.degree(1) == 5


class TestContractionManager:
    def test_does_not_fire_below_threshold(self, fig1):
        w = WorkingGraph(fig1)
        manager = ContractionManager(w)
        manager.note_peeled_edge(0, 1)
        assert not manager.maybe_contract(lambda u, v: True)

    def test_fires_after_enough_peels(self):
        g = complete_graph(8)
        w = WorkingGraph(g)
        manager = ContractionManager(w)
        peeled = set()
        for u, v in g.edges()[:2 * g.n + 1]:
            manager.note_peeled_edge(int(u), int(v))
            peeled.add((int(u), int(v)))
        fired = manager.maybe_contract(
            lambda u, v: ((u, v) if u < v else (v, u)) not in peeled)
        assert fired
        assert manager.contractions == 1

    def test_contraction_filters_dead_edges(self):
        g = complete_graph(6)
        w = WorkingGraph(g)
        manager = ContractionManager(w)
        # Peel every edge of vertex 0 (it loses all 5 = more than 1/4).
        for v in range(1, 6):
            manager.note_peeled_edge(0, v)
        for u, v in [(1, 2), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)]:
            manager.note_peeled_edge(u, v)
        dead = {(0, v) for v in range(1, 6)} | {
            (1, 2), (1, 3), (1, 4), (1, 5), (2, 3), (2, 4), (2, 5)}
        manager.maybe_contract(lambda u, v: ((min(u, v), max(u, v))
                                             not in dead))
        assert w.degree(0) == 0

    def test_charges_tracker(self):
        g = complete_graph(8)
        tracker = CostTracker()
        w = WorkingGraph(g)
        manager = ContractionManager(w, tracker)
        for u, v in g.edges()[:17]:
            manager.note_peeled_edge(int(u), int(v))
        manager.maybe_contract(lambda u, v: False)
        assert tracker.work >= g.n


class TestContractionInDecomposition:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_uncontracted(self, seed):
        g = erdos_renyi(50, 350, seed=seed)
        expected = brute_force_nucleus(g, 2, 3)
        cfg = NucleusConfig(contraction=True, aggregation="hash",
                            relabel=False)
        assert arb_nucleus_decomp(g, 2, 3, cfg).as_dict() == expected

    def test_contraction_happens_on_peel_heavy_graph(self):
        g = erdos_renyi(40, 500, seed=9)  # dense: many peeled edges
        tracker = CostTracker()
        cfg = NucleusConfig(contraction=True, aggregation="hash",
                            relabel=False)
        result = arb_nucleus_decomp(g, 2, 3, cfg, tracker=tracker)
        assert result.as_dict() == brute_force_nucleus(g, 2, 3)


class TestRelabel:
    def test_round_trip(self, fig1):
        rank = orientation_rank(fig1, "degeneracy")
        relabeled, original_of = relabel_by_rank(fig1, rank)
        assert relabeled.m == fig1.m
        for u, v in relabeled.edges():
            assert fig1.has_edge(int(original_of[u]), int(original_of[v]))

    def test_identity_rank(self, fig1):
        relabeled, original_of = relabel_by_rank(fig1, np.arange(7))
        assert np.array_equal(relabeled.edges(), fig1.edges())
        assert list(original_of) == list(range(7))

    def test_decomposition_reports_original_ids(self, fig1):
        with_r = arb_nucleus_decomp(fig1, 3, 4, NucleusConfig(relabel=True))
        without = arb_nucleus_decomp(fig1, 3, 4, NucleusConfig(relabel=False))
        assert with_r.as_dict() == without.as_dict()
