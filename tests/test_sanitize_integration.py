"""Race-detector integration: every decomposition must run race-free.

This is the dynamic half of the sanitize suite: attach a
:class:`~repro.sanitize.racecheck.RaceDetector` to the tracker, run the
real algorithms on the seed test graphs, and require zero races --- plus a
regression test proving the detector *would* catch a seeded race, so the
green runs are evidence rather than vacuity.
"""

import numpy as np
import pytest

from repro.baselines.local import and_decomposition, and_nn_decomposition
from repro.baselines.msp import msp_decomposition
from repro.baselines.nd import nd_decomposition, pnd_decomposition
from repro.baselines.pkt import pkt_decomposition
from repro.bucketing.dense import DenseBucketing
from repro.bucketing.fibheap import FibonacciBucketing
from repro.bucketing.julienne import JulienneBucketing
from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.parallel.runtime import CostTracker
from repro.sanitize.racecheck import RaceDetector, RaceError


def checked_tracker():
    tracker = CostTracker()
    tracker.race_detector = RaceDetector()
    return tracker


def assert_race_free(tracker, min_logged=1):
    races = tracker.race_detector.settle(strict=True)
    assert races == []
    assert tracker.race_detector.stats.logged >= min_logged


class TestArbIsRaceFree:
    @pytest.mark.parametrize("aggregation", ["array", "list_buffer", "hash"])
    def test_all_aggregators(self, fig1, aggregation):
        tracker = checked_tracker()
        config = NucleusConfig.optimal(2, 3)
        from dataclasses import replace
        config = replace(config, aggregation=aggregation)
        result = arb_nucleus_decomp(fig1, 2, 3, config, tracker)
        assert result.max_core == 3
        assert_race_free(tracker, min_logged=100)

    @pytest.mark.parametrize("r,s", [(1, 2), (2, 3), (3, 4)])
    def test_all_rs_on_fig1(self, fig1, r, s):
        tracker = checked_tracker()
        arb_nucleus_decomp(fig1, r, s, NucleusConfig.optimal(r, s), tracker)
        assert_race_free(tracker)

    def test_community_graph(self, community60):
        tracker = checked_tracker()
        arb_nucleus_decomp(community60, 2, 3, NucleusConfig.optimal(2, 3),
                           tracker)
        assert_race_free(tracker, min_logged=500)

    def test_detector_saw_tasks_and_regions(self, fig1):
        tracker = checked_tracker()
        arb_nucleus_decomp(fig1, 2, 3, NucleusConfig.optimal(2, 3), tracker)
        stats = tracker.race_detector.stats
        assert stats.regions > 0
        assert stats.tasks > 0


class TestBaselinesAreRaceFree:
    @pytest.mark.parametrize("run", [
        lambda g, t: nd_decomposition(g, 2, 3, t),
        lambda g, t: pnd_decomposition(g, 2, 3, t),
        lambda g, t: pkt_decomposition(g, t),
        lambda g, t: msp_decomposition(g, t),
        lambda g, t: and_decomposition(g, 2, 3, t),
        lambda g, t: and_nn_decomposition(g, 2, 3, t),
    ], ids=["nd", "pnd", "pkt", "msp", "and", "and_nn"])
    def test_baseline(self, fig1, run):
        tracker = checked_tracker()
        run(fig1, tracker)
        assert_race_free(tracker)

    def test_baselines_agree_under_detector(self, fig1):
        # Instrumentation must not change answers: PKT's truss cores match
        # ARB's (2,3) cores with and without the detector attached.
        plain = pkt_decomposition(fig1, CostTracker()).core
        tracker = checked_tracker()
        checked = pkt_decomposition(fig1, tracker).core
        assert checked == plain
        assert_race_free(tracker)


class TestBucketingUnderDetector:
    @pytest.mark.parametrize("cls", [JulienneBucketing, FibonacciBucketing,
                                     DenseBucketing])
    def test_extract_update_cycle(self, cls):
        # Bucket moves are CAS-mediated on a real machine; drive a structure
        # through extract/update cycles inside tasks, logging each move as
        # an atomic --- the detector must stay quiet.
        tracker = checked_tracker()
        detector = tracker.race_detector
        rng = np.random.default_rng(7)
        values = rng.integers(0, 8, size=32)
        structure = cls(np.arange(32), values, tracker=tracker)
        base = detector.allocate(32, "bucket_of")
        live = set(range(32))
        while len(structure):
            value, ids = structure.next_bucket()
            live -= set(map(int, ids))
            if ids.size == 0:
                continue
            with tracker.parallel(ids.size) as region:
                for ident in map(int, ids):
                    with region.task():
                        tracker.add_work(1.0)
                        detector.log(base + ident, write=True, atomic=True)
            survivors = sorted(live)[:4]
            if survivors:
                # Monotone decrease, clamped at the current peel level.
                structure.update(
                    np.asarray(survivors, dtype=np.int64),
                    np.asarray([max(value, structure.value_of(i) - 1)
                                for i in survivors], dtype=np.int64))
        assert_race_free(tracker)


class TestSeededRaceRegression:
    def test_unmediated_shared_writes_are_caught(self):
        # The canonical bug the detector exists for: tasks writing one
        # shared cell without an atomic.  Must raise, and must name both
        # distinct task owners.
        tracker = checked_tracker()
        detector = tracker.race_detector
        base = detector.allocate(8, "shared")
        with tracker.parallel(4) as region:
            for _ in range(4):
                with region.task():
                    tracker.add_work(1.0)
                    detector.log(base + 3, write=True)
        with pytest.raises(RaceError) as excinfo:
            detector.settle(strict=True)
        (race,) = {r for r in excinfo.value.races}
        assert race.kind == "write-write"
        assert race.owners[0] != race.owners[1]
        assert "shared[3]" in race.describe()

    def test_seeded_race_through_shadow_array(self, fig1):
        # Same bug expressed the way algorithm code would actually write
        # it: a maybe_shadow'd array mutated from sibling tasks.
        from repro.sanitize.racecheck import maybe_shadow
        tracker = checked_tracker()
        counts = maybe_shadow(np.zeros(4, dtype=np.int64), tracker,
                              label="counts")
        with tracker.parallel(2) as region:
            for delta in (1, 2):
                with region.task():
                    tracker.add_work(1.0)
                    counts[0] = counts[0] + delta
        races = tracker.race_detector.settle()
        assert any(r.kind == "write-write" for r in races)
