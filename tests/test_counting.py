"""Tests for clique counting conveniences (repro.cliques.counting)."""

from math import comb

import networkx as nx

from repro.cliques.counting import (edge_support, per_vertex_clique_counts,
                                    total_clique_count, triangle_count)
from repro.graph.generators import complete_graph, cycle_graph, figure1_graph


class TestTotals:
    def test_trivial_cases(self, community60):
        assert total_clique_count(community60, 1) == community60.n
        assert total_clique_count(community60, 2) == community60.m

    def test_triangles_figure1(self):
        assert triangle_count(figure1_graph()) == 14

    def test_matches_networkx_triangles(self, community60):
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        expected = sum(nx.triangles(nx_graph).values()) // 3
        assert triangle_count(community60) == expected


class TestPerVertex:
    def test_sum_identity(self, community60):
        """Each c-clique is counted by each of its c vertices."""
        for c in (3, 4):
            counts = per_vertex_clique_counts(community60, c)
            assert counts.sum() == c * total_clique_count(community60, c)

    def test_degenerate_cases(self, community60):
        assert (per_vertex_clique_counts(community60, 1) == 1).all()
        counts = per_vertex_clique_counts(community60, 2)
        assert (counts == community60.degrees).all()

    def test_complete_graph(self):
        counts = per_vertex_clique_counts(complete_graph(6), 3)
        assert (counts == comb(5, 2)).all()


class TestEdgeSupport:
    def test_sum_is_three_times_triangles(self, community60):
        support = edge_support(community60)
        assert sum(support.values()) == 3 * triangle_count(community60)

    def test_every_edge_present(self, community60):
        support = edge_support(community60)
        assert len(support) == community60.m

    def test_triangle_free(self):
        support = edge_support(cycle_graph(10))
        assert set(support.values()) == {0}

    def test_complete_graph(self):
        support = edge_support(complete_graph(5))
        assert set(support.values()) == {3}

    def test_keys_canonical(self, community60):
        assert all(u < v for u, v in edge_support(community60))
