"""Differential tests for the batched baseline engines.

Every baseline's batch engine must reproduce its scalar oracle's
simulated costs **bit-for-bit**: the integer work bin exactly, the
fractional work bin as the same binary64 accumulation order, span,
rounds, atomics, contention, and clique visits, per phase.  These tests
run each entry point under both engines and compare full tracker
snapshots, plus the results themselves.

Also hosts the regression tests for the accounting bugs fixed alongside
the batching: the PKT frontier-duplication bug (one frontier entry per
decrement instead of per dropped edge) and the densest-subgraph scan
phase that ran its suffix re-listings without a tracker.
"""

import numpy as np
import pytest

from repro.baselines.msp import msp_decomposition
from repro.baselines.nd import nd_decomposition, pnd_decomposition
from repro.baselines.pkt import pkt_decomposition, pkt_opt_cpu_decomposition
from repro.core.densest import k_clique_densest
from repro.core.kcore import k_core
from repro.core.ktruss import k_truss
from repro.graph.generators import (erdos_renyi, figure1_graph,
                                    planted_partition)
from repro.parallel.runtime import CostTracker

_PHASE_FIELDS = ("work_int", "work_frac", "span", "rounds", "atomic_ops",
                 "contention")


def snapshot(tracker):
    """Full simulated-cost state of a tracker, int/frac bins separate."""
    return {
        "work_int": tracker.total.work_int,
        "work_frac": tracker.total.work_frac,
        "span": tracker.span,
        "rounds": tracker.total.rounds,
        "atomic_ops": tracker.total.atomic_ops,
        "contention": tracker.total.contention,
        "cliques": tracker.total.cliques_enumerated,
        "phases": {
            name: tuple(getattr(stats, field) for field in _PHASE_FIELDS)
            for name, stats in tracker.phases.items()
        },
    }


def both_engines(run):
    """Run ``run(tracker, engine)`` under both engines; return
    ``((scalar_result, scalar_snap), (batch_result, batch_snap))``."""
    out = []
    for engine in ("scalar", "batch"):
        tracker = CostTracker()
        result = run(tracker, engine)
        out.append((result, snapshot(tracker)))
    return out


def graphs():
    return {
        "fig1": figure1_graph(),
        "pp40": planted_partition(40, 4, 0.5, 0.03, seed=5),
        "er48": erdos_renyi(48, 200, seed=11),
    }


GRAPHS = graphs()


class TestNDFamily:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("rs", [(1, 2), (2, 3)])
    def test_nd_parity(self, name, rs):
        r, s = rs
        (res_s, snap_s), (res_b, snap_b) = both_engines(
            lambda t, e: nd_decomposition(GRAPHS[name], r, s, t, engine=e))
        assert snap_s == snap_b
        assert res_s.core == res_b.core
        assert res_s.rounds == res_b.rounds
        assert res_s.s_clique_visits == res_b.s_clique_visits

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_pnd_parity(self, name):
        (res_s, snap_s), (res_b, snap_b) = both_engines(
            lambda t, e: pnd_decomposition(GRAPHS[name], 2, 3, t, engine=e))
        assert snap_s == snap_b
        assert res_s.core == res_b.core
        assert res_s.rounds == res_b.rounds


class TestTrussFamily:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    @pytest.mark.parametrize("algo", [pkt_decomposition,
                                      pkt_opt_cpu_decomposition,
                                      msp_decomposition])
    def test_parity(self, name, algo):
        (res_s, snap_s), (res_b, snap_b) = both_engines(
            lambda t, e: algo(GRAPHS[name], t, engine=e))
        assert snap_s == snap_b
        assert res_s.core == res_b.core
        assert res_s.rounds == res_b.rounds
        assert res_s.s_clique_visits == res_b.s_clique_visits

    def test_pkt_agrees_with_msp(self):
        """Independent algorithms, same triangle-core numbers."""
        graph = GRAPHS["pp40"]
        pkt = pkt_decomposition(graph, CostTracker())
        msp = msp_decomposition(graph, CostTracker())
        assert pkt.core == msp.core


class TestPKTFrontierDedup:
    """Satellite regression: a triangle decrement used to append one
    frontier entry per decrement, so an edge losing two triangles in one
    sub-round was scheduled (and its intersection re-charged) twice."""

    def test_frontier_entries_unique_per_subround(self, monkeypatch):
        import repro.baselines.pkt as pkt_mod
        seen = []
        orig = pkt_mod._pkt_subround_scalar

        def spy(frontier, *args, **kwargs):
            seen.append(np.asarray(frontier))
            return orig(frontier, *args, **kwargs)

        monkeypatch.setattr(pkt_mod, "_pkt_subround_scalar", spy)
        pkt_decomposition(GRAPHS["pp40"], CostTracker())
        assert seen, "peel never ran a sub-round"
        for frontier in seen:
            assert np.unique(frontier).size == frontier.size

    def test_round_count_pinned(self):
        """Deduped sub-round count on the Figure 1 graph; the duplicated
        frontier inflated this (and the work charged per sub-round)."""
        result = pkt_decomposition(figure1_graph(), CostTracker())
        batch = pkt_decomposition(figure1_graph(), CostTracker(),
                                  engine="batch")
        assert result.rounds == batch.rounds == 3


class TestKCore:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_parity(self, name):
        (core_s, snap_s), (core_b, snap_b) = both_engines(
            lambda t, e: k_core(GRAPHS[name], t, engine=e))
        assert snap_s == snap_b
        assert np.array_equal(core_s, core_b)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_parity_random(self, seed):
        graph = erdos_renyi(60, 240, seed=seed)
        (core_s, snap_s), (core_b, snap_b) = both_engines(
            lambda t, e: k_core(graph, t, engine=e))
        assert snap_s == snap_b
        assert np.array_equal(core_s, core_b)


class TestKTruss:
    def test_engine_routing_parity(self):
        graph = GRAPHS["pp40"]
        (res_s, snap_s), (res_b, snap_b) = both_engines(
            lambda t, e: k_truss(graph, t, engine=e))
        assert snap_s == snap_b
        assert res_s.as_dict() == res_b.as_dict()


class TestDensest:
    @pytest.mark.parametrize("k", [3, 4])
    def test_parity(self, k):
        graph = GRAPHS["pp40"]
        (res_s, snap_s), (res_b, snap_b) = both_engines(
            lambda t, e: k_clique_densest(graph, k, t, engine=e))
        assert snap_s == snap_b
        assert res_s.density == res_b.density
        assert res_s.clique_count == res_b.clique_count
        assert sorted(res_s.vertices) == sorted(res_b.vertices)

    def test_scan_phase_is_charged(self):
        """Satellite regression: the threshold scan used to orient and
        re-list each suffix without a tracker --- zero charged work."""
        tracker = CostTracker()
        k_clique_densest(GRAPHS["pp40"], 3, tracker)
        scan = tracker.phases["scan"]
        assert scan.work_int + scan.work_frac > 0
        assert scan.span > 0


class TestParityRegistry:
    """The new batch kernels are registered for PAR007 with resolvable
    scalar oracles and non-empty charge fingerprints."""

    MODULES = ("repro.baselines.batchnd", "repro.baselines.batchtruss",
               "repro.core.batchcore")

    @pytest.mark.parametrize("module_name", MODULES)
    def test_oracles_resolve(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        registry = module.PARLINT_PARITY
        assert registry, f"{module_name} registers no kernels"
        for kernel, entry in registry.items():
            assert hasattr(module, kernel)
            oracle_module, oracle_name = entry["oracle"].rsplit(".", 1)
            oracle = getattr(importlib.import_module(oracle_module),
                             oracle_name)
            assert callable(oracle)
            assert entry["fingerprint"], f"{kernel}: empty fingerprint"


class TestChargeSequences:
    """add_work_sequence / add_span_sequence replay a scalar charge
    stream: integer-valued amounts land in the exact bin, fractional
    ones accumulate in the same binary64 order as call-by-call."""

    AMOUNTS = [3.0, 0.35 * 7 + 1.0, 2.0, np.log2(12), 1.0, 0.1, 5.0]

    def test_work_sequence_matches_loop(self):
        loop, seq = CostTracker(), CostTracker()
        with loop.phase("p"):
            for amount in self.AMOUNTS:
                loop.add_work(amount)
        with seq.phase("p"):
            seq.add_work_sequence(np.asarray(self.AMOUNTS))
        assert loop.total.work_int == seq.total.work_int
        assert loop.total.work_frac == seq.total.work_frac
        assert loop.phases["p"].work_int == seq.phases["p"].work_int
        assert loop.phases["p"].work_frac == seq.phases["p"].work_frac

    def test_work_sequence_seeds_from_current_bin(self):
        loop, seq = CostTracker(), CostTracker()
        for t in (loop, seq):
            t.add_work(0.125)
        for amount in self.AMOUNTS:
            loop.add_work(amount)
        seq.add_work_sequence(np.asarray(self.AMOUNTS))
        assert loop.total.work_frac == seq.total.work_frac

    def test_span_sequence_matches_loop(self):
        loop, seq = CostTracker(), CostTracker()
        amounts = [np.log2(5), 1.0, 0.25, np.log2(9)]
        with loop.phase("p"):
            for amount in amounts:
                loop.add_span(amount)
        with seq.phase("p"):
            seq.add_span_sequence(np.asarray(amounts))
        assert loop.span == seq.span
        assert loop.phases["p"].span == seq.phases["p"].span

    def test_empty_sequences_are_noops(self):
        tracker = CostTracker()
        tracker.add_work_sequence(np.empty(0))
        tracker.add_span_sequence(np.empty(0))
        assert tracker.total.work_int == 0
        assert tracker.total.work_frac == 0.0
        assert tracker.span == 0.0
