"""Tests for NucleusConfig validation and factory presets."""

import pytest

from repro.core.config import NucleusConfig


class TestPresets:
    def test_default_is_paper_general_optimal(self):
        cfg = NucleusConfig()
        assert cfg.levels == 2
        assert cfg.table_style == "array"
        assert cfg.contiguous
        assert cfg.inverse_map == "stored_pointers"

    def test_unoptimized(self):
        cfg = NucleusConfig.unoptimized()
        assert cfg.levels == 1
        assert not cfg.relabel
        assert cfg.aggregation == "array"
        assert not cfg.contraction

    def test_optimal_23_uses_hash_and_contraction(self):
        cfg = NucleusConfig.optimal(2, 3)
        assert cfg.aggregation == "hash"
        assert cfg.contraction
        assert not cfg.relabel

    def test_optimal_general_uses_list_buffer_and_relabel(self):
        cfg = NucleusConfig.optimal(3, 4)
        assert cfg.aggregation == "list_buffer"
        assert cfg.relabel
        assert not cfg.contraction


class TestValidation:
    def test_rs_order_enforced(self):
        with pytest.raises(ValueError):
            NucleusConfig().validated(10, 3, 3)
        with pytest.raises(ValueError):
            NucleusConfig().validated(10, 0, 2)

    def test_contraction_only_for_23(self):
        cfg = NucleusConfig(contraction=True)
        with pytest.raises(ValueError):
            cfg.validated(10, 3, 4)
        assert cfg.validated(10, 2, 3).contraction

    def test_stored_pointers_need_contiguous(self):
        cfg = NucleusConfig(contiguous=False,
                            inverse_map="stored_pointers")
        with pytest.raises(ValueError):
            cfg.validated(10, 2, 3)

    def test_levels_clamped_to_r(self):
        cfg = NucleusConfig(levels=3).validated(10, 2, 3)
        assert cfg.levels == 2

    def test_r1_forces_one_level(self):
        cfg = NucleusConfig().validated(10, 1, 2)
        assert cfg.levels == 1
        assert cfg.inverse_map == "binary_search"

    def test_key_width_widens_table(self):
        # 2^20-bit ids and r=6: a one-level table cannot exist.
        cfg = NucleusConfig(levels=1).validated(2**20, 6, 7)
        assert cfg.levels >= 4
        assert cfg.table_style == "hash"

    def test_array_style_reset_when_not_two_levels(self):
        cfg = NucleusConfig(levels=3, table_style="array",
                            inverse_map="binary_search")
        assert cfg.validated(10, 4, 5).table_style == "hash"

    def test_frozen(self):
        with pytest.raises(Exception):
            NucleusConfig().levels = 5
