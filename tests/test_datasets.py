"""Tests for the surrogate dataset registry."""

import numpy as np
import pytest

from repro.graph.datasets import (DATASETS, LARGE_GRAPHS, SMALL_GRAPHS,
                                  dataset_names, load_dataset)


def test_seven_datasets_in_paper_order():
    assert dataset_names() == ["amazon", "dblp", "youtube", "skitter",
                               "livejournal", "orkut", "friendster"]


def test_sizes_increase_like_the_paper():
    sizes = [load_dataset(name).m for name in
             ("youtube", "skitter", "livejournal", "orkut", "friendster")]
    assert sizes == sorted(sizes)


def test_paper_sizes_recorded():
    assert DATASETS["friendster"].paper_m > DATASETS["amazon"].paper_m
    assert DATASETS["amazon"].paper_n == 334_863


def test_deterministic():
    a = DATASETS["youtube"].generate()
    b = DATASETS["youtube"].generate()
    assert np.array_equal(a.edges(), b.edges())


def test_memoization():
    assert load_dataset("amazon") is load_dataset("amazon")


def test_unknown_name():
    with pytest.raises(KeyError):
        load_dataset("facebook")


def test_size_scale_shrinks():
    full = load_dataset("youtube")
    half = load_dataset("youtube", size_scale=0.5)
    assert half.n < full.n


def test_community_graphs_are_clustered():
    """amazon/dblp surrogates must be triangle-rich (clustered), like the
    collaboration networks they stand in for."""
    from repro.cliques.counting import total_clique_count
    for name in SMALL_GRAPHS:
        g = load_dataset(name)
        assert total_clique_count(g, 3) > g.n / 2


def test_large_graphs_listed():
    assert set(LARGE_GRAPHS) <= set(dataset_names())
