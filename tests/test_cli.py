"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.graph.generators import figure1_graph
from repro.graph.io import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "fig1.txt"
    write_edge_list(figure1_graph(), path)
    return str(path)


class TestDecompose:
    def test_from_file(self, graph_file, capsys):
        assert main(["decompose", "--input", graph_file,
                     "--r", "3", "--s", "4"]) == 0
        out = capsys.readouterr().out
        assert "r-cliques: 14" in out
        assert "max core: 2" in out

    def test_histogram(self, graph_file, capsys):
        main(["decompose", "--input", graph_file, "--r", "3", "--s", "4",
              "--histogram"])
        out = capsys.readouterr().out
        assert "0: 1" in out and "2: 10" in out

    def test_full_listing(self, graph_file, capsys):
        main(["decompose", "--input", graph_file, "--r", "3", "--s", "4",
              "--full"])
        out = capsys.readouterr().out
        assert "2 3 6 0" in out  # cdg has core 0

    def test_dataset(self, capsys):
        assert main(["decompose", "--dataset", "amazon",
                     "--r", "1", "--s", "2"]) == 0
        assert "nucleus decomposition" in capsys.readouterr().out

    def test_requires_source(self):
        with pytest.raises(SystemExit):
            main(["decompose", "--r", "2", "--s", "3"])

    def test_unoptimized_flag(self, graph_file, capsys):
        assert main(["decompose", "--input", graph_file, "--r", "3",
                     "--s", "4", "--unoptimized"]) == 0
        assert "max core: 2" in capsys.readouterr().out

    def test_config_overrides(self, graph_file, capsys):
        assert main(["decompose", "--input", graph_file, "--r", "3",
                     "--s", "4", "--levels", "1", "--aggregation", "hash",
                     "--bucketing", "dense", "--orientation", "degeneracy",
                     "--no-relabel"]) == 0
        assert "max core: 2" in capsys.readouterr().out  # same answer

    def test_all_bucketings_agree(self, graph_file, capsys):
        outputs = set()
        for backend in ("julienne", "fibonacci", "dense"):
            main(["decompose", "--input", graph_file, "--r", "3", "--s", "4",
                  "--bucketing", backend, "--histogram"])
            out = capsys.readouterr().out
            outputs.add(out[out.index("core histogram"):])
        assert len(outputs) == 1


class TestGenerate:
    def test_rmat(self, tmp_path, capsys):
        out_path = tmp_path / "g.txt"
        assert main(["generate", "--kind", "rmat", "--scale", "7",
                     "-o", str(out_path)]) == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out

    @pytest.mark.parametrize("kind", ["erdos-renyi", "community"])
    def test_other_kinds(self, kind, tmp_path):
        out_path = tmp_path / "g.txt"
        assert main(["generate", "--kind", kind, "--scale", "6",
                     "-o", str(out_path)]) == 0
        assert out_path.exists()


class TestStats:
    def test_stats_output(self, graph_file, capsys):
        assert main(["stats", "--input", graph_file]) == 0
        out = capsys.readouterr().out
        assert "n = 7" in out
        assert "triangles = 14" in out
        assert "degeneracy = 4" in out


class TestFigure:
    def test_unknown_figure(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestLint:
    FIXTURES = "tests/fixtures/parlint"

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "src/repro"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, capsys):
        assert main(["lint", f"{self.FIXTURES}/bad_par001.py"]) == 1
        assert "PAR001" in capsys.readouterr().out

    def test_json_report(self, capsys):
        import json
        assert main(["lint", "--json", f"{self.FIXTURES}/bad_par002.py"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "parlint"
        assert [f["rule"] for f in report["findings"]] == ["PAR002"]


class TestSanitize:
    def test_default_graph_is_race_free(self, capsys):
        assert main(["sanitize"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        for label in ("arb (2,3)", "nd", "pkt", "msp", "and"):
            assert f"{label:<10} ok" in out


class TestProfile:
    def test_writes_trace_and_breakdown(self, graph_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["profile", "--input", graph_file, "--r", "2",
                     "--s", "3", "-o", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out  # the breakdown table
        assert "trace events" in out
        import json
        loaded = json.loads(trace.read_text())
        assert loaded["traceEvents"]
        assert all(e.get("dur", 0) >= 0 for e in loaded["traceEvents"]
                   if e["ph"] == "X")


class TestBench:
    def test_writes_payload(self, tmp_path, capsys, monkeypatch):
        # Shrink the pinned suite so the CLI test stays fast.
        from repro.observe import bench as bench_mod
        monkeypatch.setattr(bench_mod, "PINNED_SUITE",
                            (("amazon", 1, 2),))
        out_path = tmp_path / "BENCH.json"
        assert main(["bench", "-o", str(out_path)]) == 0
        import json
        payload = json.loads(out_path.read_text())
        assert len(payload["suite"]) == 1
        assert payload["suite"][0]["graph"] == "amazon"

    def test_compare_gates_on_regression(self, tmp_path, capsys,
                                         monkeypatch):
        from repro.observe import bench as bench_mod
        monkeypatch.setattr(bench_mod, "PINNED_SUITE",
                            (("amazon", 1, 2),))
        baseline = tmp_path / "BASE.json"
        assert main(["bench", "-o", str(baseline)]) == 0
        # Clean against itself.
        out_path = tmp_path / "CUR.json"
        assert main(["bench", "-o", str(out_path),
                     "--compare", str(baseline)]) == 0
        assert "no regressions" in capsys.readouterr().out
        # Inject a regression into the baseline (pretend it used to be
        # faster) and the gate must fail.
        import json
        doctored = json.loads(baseline.read_text())
        doctored["suite"][0]["T60"] *= 0.5
        baseline.write_text(json.dumps(doctored))
        assert main(["bench", "-o", str(out_path),
                     "--compare", str(baseline)]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["decompose", "--dataset", "dblp",
                              "--r", "2", "--s", "3"])
    assert args.r == 2 and args.s == 3


def test_missing_subcommand():
    with pytest.raises(SystemExit):
        main([])
