"""Every optimization configuration must give identical core numbers.

Section 5's optimizations change the data layout, the aggregation strategy,
the bucketing structure, and the arithmetic of the count updates --- none of
which may change the algorithm's *output*.  These tests sweep the
configuration lattice and assert output equality, plus the cost-profile
*differences* the paper attributes to each choice.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.core.verify import brute_force_nucleus
from repro.graph.generators import erdos_renyi, planted_partition
from repro.parallel.runtime import CostTracker

TABLE_LAYOUTS = [
    dict(levels=1, table_style="hash", contiguous=False,
         inverse_map="binary_search"),
    dict(levels=2, table_style="array", contiguous=False,
         inverse_map="binary_search"),
    dict(levels=2, table_style="array", contiguous=True,
         inverse_map="binary_search"),
    dict(levels=2, table_style="array", contiguous=True,
         inverse_map="stored_pointers"),
    dict(levels=2, table_style="hash", contiguous=True,
         inverse_map="stored_pointers"),
    dict(levels=3, table_style="hash", contiguous=True,
         inverse_map="stored_pointers"),
]


@pytest.fixture(scope="module")
def graph():
    return planted_partition(60, 5, 0.5, 0.02, seed=3)


@pytest.fixture(scope="module")
def expected34(graph):
    return brute_force_nucleus(graph, 3, 4)


@pytest.mark.parametrize("layout", TABLE_LAYOUTS)
def test_table_layouts_agree(layout, graph, expected34):
    result = arb_nucleus_decomp(graph, 3, 4, NucleusConfig(**layout))
    assert result.as_dict() == expected34


@pytest.mark.parametrize("aggregation", ["array", "list_buffer", "hash"])
@pytest.mark.parametrize("relabel", [False, True])
def test_aggregation_and_relabel_agree(aggregation, relabel, graph,
                                       expected34):
    cfg = NucleusConfig(aggregation=aggregation, relabel=relabel)
    assert arb_nucleus_decomp(graph, 3, 4, cfg).as_dict() == expected34


@pytest.mark.parametrize("bucketing", ["julienne", "fibonacci", "dense"])
def test_bucketing_backends_agree(bucketing, graph, expected34):
    cfg = NucleusConfig(bucketing=bucketing)
    assert arb_nucleus_decomp(graph, 3, 4, cfg).as_dict() == expected34


@pytest.mark.parametrize("arithmetic", ["fractional", "representative"])
def test_update_arithmetic_agree(arithmetic, graph, expected34):
    cfg = NucleusConfig(update_arithmetic=arithmetic)
    assert arb_nucleus_decomp(graph, 3, 4, cfg).as_dict() == expected34


def test_contraction_agrees(graph):
    expected = brute_force_nucleus(graph, 2, 3)
    on = NucleusConfig.optimal(2, 3)
    off = NucleusConfig(aggregation="hash", contraction=False, relabel=False)
    assert arb_nucleus_decomp(graph, 2, 3, on).as_dict() == expected
    assert arb_nucleus_decomp(graph, 2, 3, off).as_dict() == expected


def test_rho_identical_across_configs(graph):
    """The number of peeling rounds is a property of the graph, not the
    data-structure configuration."""
    rhos = set()
    for layout in TABLE_LAYOUTS:
        rhos.add(arb_nucleus_decomp(graph, 3, 4,
                                    NucleusConfig(**layout)).rho)
    assert len(rhos) == 1


class TestCostProfiles:
    """Each option should exhibit the cost signature the paper describes."""

    def test_layered_tables_save_memory(self, graph):
        one = arb_nucleus_decomp(graph, 3, 4,
                                 NucleusConfig(**TABLE_LAYOUTS[0]))
        two = arb_nucleus_decomp(graph, 3, 4,
                                 NucleusConfig(**TABLE_LAYOUTS[3]))
        assert two.table_memory_units < one.table_memory_units

    def test_simple_array_has_most_contention(self, graph):
        contention = {}
        for agg in ("array", "list_buffer", "hash"):
            tracker = CostTracker()
            arb_nucleus_decomp(graph, 2, 3,
                               NucleusConfig(aggregation=agg),
                               tracker=tracker)
            contention[agg] = tracker.total.contention
        assert contention["array"] > contention["list_buffer"]
        assert contention["hash"] == 0

    def test_relabel_skips_sorting_work(self, graph):
        works = {}
        for relabel in (False, True):
            tracker = CostTracker()
            arb_nucleus_decomp(graph, 3, 4,
                               NucleusConfig(relabel=relabel),
                               tracker=tracker)
            works[relabel] = tracker.phases["count_s"].work
        assert works[True] < works[False]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6),
       rs=st.sampled_from([(1, 2), (2, 3), (2, 4), (3, 4)]),
       aggregation=st.sampled_from(["array", "list_buffer", "hash"]),
       bucketing=st.sampled_from(["julienne", "fibonacci", "dense"]),
       arithmetic=st.sampled_from(["fractional", "representative"]))
def test_property_all_configs_match_bruteforce(seed, rs, aggregation,
                                               bucketing, arithmetic):
    graph = erdos_renyi(18, 60, seed=seed)
    r, s = rs
    cfg = NucleusConfig(aggregation=aggregation, bucketing=bucketing,
                        update_arithmetic=arithmetic)
    result = arb_nucleus_decomp(graph, r, s, cfg)
    assert result.as_dict() == brute_force_nucleus(graph, r, s)
