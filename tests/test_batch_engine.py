"""Differential tests: the batch peeling engine vs the scalar oracle.

The batch engine's contract (docs/cost-model.md) is *exact* cost parity:
for any graph and configuration, ``engine="batch"`` must produce the same
core numbers, the same round log, and bit-for-bit identical simulated
metrics --- work, span, rounds, atomics, contention, table probes, and
cache misses --- as ``engine="scalar"``.  These tests sweep (r, s) pairs,
aggregation/bucketing/table layouts, update arithmetic, and cache
simulation, comparing the two engines run for run.
"""

import numpy as np
import pytest

from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import erdos_renyi, planted_partition
from repro.machine.cache import CacheSimulator
from repro.parallel.runtime import CostTracker
from repro.sanitize.racecheck import RaceDetector

RS_PAIRS = [(1, 2), (2, 3), (2, 4), (3, 4)]

CONFIGS = {
    "optimal": None,  # NucleusConfig.optimal(r, s), resolved per pair
    "unoptimized": NucleusConfig.unoptimized(),
    "array_representative": NucleusConfig(
        aggregation="array", update_arithmetic="representative"),
    "one_level_hash_agg": NucleusConfig(
        levels=1, table_style="hash", contiguous=False,
        inverse_map="binary_search", aggregation="hash"),
    "no_relabel_binary": NucleusConfig(
        relabel=False, inverse_map="binary_search", contiguous=False,
        aggregation="list_buffer", bucket_window=4),
}


def _config_for(name: str, r: int, s: int) -> NucleusConfig:
    config = CONFIGS[name]
    if config is None:
        config = NucleusConfig.optimal(r, s)
    if config.contraction and (r, s) != (2, 3):
        config = NucleusConfig(**{**config.__dict__, "contraction": False})
    return config


def _run(graph, r, s, config, engine, cache=False, detector=False):
    config = NucleusConfig(**{**config.__dict__, "engine": engine})
    tracker = CostTracker()
    if cache:
        tracker.cache = CacheSimulator(sample=1)
    if detector:
        tracker.race_detector = RaceDetector()
    result = arb_nucleus_decomp(graph, r, s, config, tracker)
    totals = tracker.total
    metrics = {
        "work": totals.work, "span": tracker.span,
        "rounds": totals.rounds, "atomic": totals.atomic_ops,
        "contention": totals.contention, "probes": totals.table_probes,
        "misses": totals.cache_misses,
        "cliques": totals.cliques_enumerated,
    }
    return result, metrics


def assert_engines_agree(graph, r, s, config, cache=False):
    scalar, m_scalar = _run(graph, r, s, config, "scalar", cache)
    batch, m_batch = _run(graph, r, s, config, "batch", cache)
    assert m_scalar == m_batch
    assert scalar.rho == batch.rho
    assert scalar.max_core == batch.max_core
    assert scalar.round_log == batch.round_log
    assert np.array_equal(scalar._cores, batch._cores)
    assert np.array_equal(scalar._cells, batch._cells)


class TestEngineParity:
    @pytest.mark.parametrize("rs", RS_PAIRS)
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_sparse_random(self, sparse100, rs, name):
        r, s = rs
        assert_engines_agree(sparse100, r, s, _config_for(name, r, s))

    @pytest.mark.parametrize("rs", RS_PAIRS)
    def test_clique_rich_optimal(self, community60, rs):
        r, s = rs
        assert_engines_agree(community60, r, s, _config_for("optimal", r, s))

    @pytest.mark.parametrize("rs", [(1, 2), (2, 3), (3, 4)])
    def test_fig1_all_configs(self, fig1, rs):
        r, s = rs
        for name in sorted(CONFIGS):
            assert_engines_agree(fig1, r, s, _config_for(name, r, s))

    @pytest.mark.parametrize("rs", [(1, 2), (2, 3), (2, 4)])
    @pytest.mark.parametrize(
        "name", ["optimal", "unoptimized", "one_level_hash_agg"])
    def test_cache_stream_parity(self, rs, name):
        """The order-sensitive cache simulator sees the identical address
        stream from both engines (misses are equal, not just counts of
        accesses)."""
        graph = erdos_renyi(50, 220, seed=11)
        r, s = rs
        assert_engines_agree(graph, r, s, _config_for(name, r, s),
                             cache=True)

    def test_dense_bucketing_and_fibonacci(self, sparse100):
        for bucketing in ("dense", "fibonacci"):
            config = NucleusConfig(**{
                **NucleusConfig.optimal(2, 3).__dict__,
                "contraction": False, "bucketing": bucketing})
            assert_engines_agree(sparse100, 2, 3, config)

    def test_many_random_graphs(self):
        for seed in range(6):
            graph = erdos_renyi(35, 140, seed=seed) if seed % 2 else \
                planted_partition(36, 4, 0.5, 0.03, seed=seed)
            r, s = RS_PAIRS[seed % len(RS_PAIRS)]
            assert_engines_agree(graph, r, s, _config_for("optimal", r, s))


class TestEngineSelection:
    def test_unknown_engine_rejected(self, fig1):
        with pytest.raises(ValueError, match="unknown engine"):
            arb_nucleus_decomp(fig1, 2, 3,
                               NucleusConfig(engine="turbo"))

    def test_batch_falls_back_under_race_detector(self, fig1):
        """A race detector forces the scalar oracle; results still match a
        plain scalar run."""
        config = NucleusConfig.optimal(2, 3)
        plain, _ = _run(fig1, 2, 3, config, "scalar")
        checked, _ = _run(fig1, 2, 3, config, "batch", detector=True)
        assert plain.rho == checked.rho
        assert np.array_equal(plain._cores, checked._cores)

    def test_engine_recorded_in_config(self, fig1):
        result = arb_nucleus_decomp(
            fig1, 2, 3, NucleusConfig(engine="batch"))
        assert result.config.engine == "batch"


class TestCountFuncSortCharge:
    """Satellite: COUNT-FUNC must not charge a sort when discovery order
    already yields ascending tuples."""

    @staticmethod
    def _count_phase(graph, orientation, relabel):
        config = NucleusConfig(orientation=orientation, relabel=relabel,
                               aggregation="array", contraction=False)
        tracker = CostTracker()
        arb_nucleus_decomp(graph, 2, 3, config, tracker)
        return tracker.phases["count_s"]

    def test_identity_rank_charges_no_sorts(self, community60):
        """With the identity orientation, relabeling is a no-op and every
        discovered clique is already ascending --- so the count_s phase must
        charge identical work with and without relabeling.  (The old code
        charged s*log2(s) per s-clique in the non-relabeled run anyway.)"""
        with_relabel = self._count_phase(community60, "identity", True)
        without = self._count_phase(community60, "identity", False)
        assert with_relabel.work == without.work
        # The sort charge s*log2(s) is the only fractional-valued charge on
        # the counting path, so the exact fractional bin pins it to zero.
        assert without.work_frac == 0.0

    def test_unsorted_discovery_still_charged(self, community60):
        """Degeneracy rank scrambles discovery order, so the non-relabeled
        run must still pay a sort charge for every actually-unsorted
        tuple --- visible as a non-empty fractional work bin."""
        phase = self._count_phase(community60, "degeneracy", False)
        sort_charge = 3 * np.log2(3)
        assert phase.work_frac > 0.0
        # ... and it is an exact multiple of the per-clique sort charge.
        multiples = phase.work_frac / sort_charge
        assert abs(multiples - round(multiples)) < 1e-9
