"""Tests for the cost-accounted parallel primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.primitives import (histogram, intersect_many,
                                       intersect_sorted, pack_indices,
                                       parallel_filter, parallel_max,
                                       parallel_min, parallel_reduce,
                                       prefix_sum)
from repro.parallel.runtime import CostTracker


class TestPrefixSum:
    def test_exclusive(self):
        out, total = prefix_sum([1, 2, 3, 4])
        assert list(out) == [0, 1, 3, 6]
        assert total == 10

    def test_inclusive(self):
        out, total = prefix_sum([1, 2, 3], exclusive=False)
        assert list(out) == [1, 3, 6]
        assert total == 6

    def test_empty(self):
        out, total = prefix_sum([])
        assert total == 0
        assert out.size == 0

    def test_charges_linear_work(self):
        t = CostTracker()
        prefix_sum(np.ones(1000, dtype=np.int64), tracker=t)
        assert t.work == 1000

    def test_charges_one_round_per_invocation(self):
        # Each primitive is one bulk-synchronous step: a global barrier.
        t = CostTracker()
        prefix_sum(np.ones(8, dtype=np.int64), tracker=t)
        assert t.rounds == 1
        parallel_filter([1, 2, 3], [True, False, True], tracker=t)
        pack_indices([True, False], tracker=t)
        parallel_reduce([1, 2], tracker=t)
        histogram([0, 1], 2, tracker=t)
        assert t.rounds == 5

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=50))
    def test_matches_cumsum(self, values):
        out, total = prefix_sum(values, exclusive=False)
        assert list(out) == list(np.cumsum(np.asarray(values, dtype=np.int64)))
        assert total == sum(values)


class TestFilterPack:
    def test_filter_preserves_order(self):
        out = parallel_filter([5, 3, 8, 1], [True, False, True, True])
        assert list(out) == [5, 8, 1]

    def test_pack_indices(self):
        out = pack_indices([False, True, False, True])
        assert list(out) == [1, 3]


class TestReductions:
    def test_reduce_sum(self):
        assert parallel_reduce([1, 2, 3]) == 6

    def test_reduce_empty(self):
        assert parallel_reduce([]) == 0

    def test_max_min(self):
        assert parallel_max([4, 9, 2]) == 9
        assert parallel_min([4, 9, 2]) == 2
        assert parallel_max([]) is None
        assert parallel_min([]) is None

    def test_histogram(self):
        out = histogram([0, 1, 1, 3], 5)
        assert list(out) == [1, 2, 0, 1, 0]


class TestIntersection:
    def test_basic(self):
        out = intersect_sorted(np.array([1, 3, 5, 7]), np.array([3, 4, 5]))
        assert list(out) == [3, 5]

    def test_empty_operand(self):
        out = intersect_sorted(np.array([], dtype=np.int64), np.array([1, 2]))
        assert out.size == 0

    def test_charges_min_size_work(self):
        t = CostTracker()
        intersect_sorted(np.arange(1000), np.arange(5), tracker=t)
        assert t.work == pytest.approx(6)  # min size + 1

    def test_many(self):
        out = intersect_many([np.array([1, 2, 3, 4]), np.array([2, 3, 9]),
                              np.array([0, 3])])
        assert list(out) == [3]

    def test_many_requires_input(self):
        with pytest.raises(ValueError):
            intersect_many([])

    @given(st.lists(st.integers(0, 50), max_size=30),
           st.lists(st.integers(0, 50), max_size=30))
    def test_matches_set_intersection(self, a, b):
        a = np.unique(np.asarray(a, dtype=np.int64))
        b = np.unique(np.asarray(b, dtype=np.int64))
        out = intersect_sorted(a, b)
        assert set(out.tolist()) == set(a.tolist()) & set(b.tolist())
