"""Tests for the experiment harness utilities."""

import math

import pytest

from repro.core.config import NucleusConfig
from repro.experiments.harness import (FigureResult, format_table,
                                       geometric_mean, run_arb, run_baseline)
from repro.baselines import nd_decomposition
from repro.graph.generators import planted_partition


class TestFormatting:
    def test_format_table_basic(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}],
                            ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_missing_cells(self):
        text = format_table([{"a": 1}], ["a", "b"])
        assert "1" in text

    def test_format_empty(self):
        assert "(no rows)" in format_table([], ["a"], title="x")

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)
        assert math.isnan(geometric_mean([]))
        assert geometric_mean([0, 4]) == pytest.approx(4.0)  # zeros skipped


class TestRunners:
    def test_run_arb_row(self, fig1):
        run = run_arb(fig1, 3, 4, NucleusConfig.optimal(3, 4), "fig1")
        row = run.row()
        assert row["graph"] == "fig1"
        assert row["n_r"] == 14
        assert row["rho"] == 3
        assert run.time_parallel <= run.time_serial
        assert run.self_relative_speedup >= 1.0

    def test_run_arb_with_cache(self, fig1):
        run = run_arb(fig1, 3, 4, graph_name="fig1", with_cache=True)
        assert run.cache_accesses > 0

    def test_run_baseline(self, fig1):
        result, time = run_baseline(nd_decomposition, fig1, 3, 4, serial=True)
        assert result.name == "ND"
        assert time > 0

    def test_serial_baseline_slower_than_parallel_eval(self):
        g = planted_partition(50, 4, 0.5, 0.02, seed=1)
        result, t_serial = run_baseline(nd_decomposition, g, 2, 3,
                                        serial=True)
        _, t_parallel = run_baseline(nd_decomposition, g, 2, 3, serial=False)
        assert t_serial > t_parallel


def test_figure_result_show():
    fig = FigureResult("figX", "demo", rows=[], text="body\n")
    assert "figX" in fig.show()
    assert "body" in fig.show()


def test_figure_result_to_json(tmp_path):
    import json
    fig = FigureResult("figX", "demo", rows=[{"a": 1, "b": 2.5}])
    path = tmp_path / "fig.json"
    payload = fig.to_json(path)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(payload)
    assert loaded["rows"] == [{"a": 1, "b": 2.5}]


class TestHeadlineStatistics:
    def test_ranges(self):
        from repro.experiments.harness import headline_statistics
        rows = [
            {"graph": "g1", "rs": "(2,3)", "algorithm": "ARB",
             "slowdown": 1.0, "self_speedup": 20.0},
            {"graph": "g1", "rs": "(2,3)", "algorithm": "ND",
             "slowdown": 30.0},
            {"graph": "g1", "rs": "(2,3)", "algorithm": "AND",
             "slowdown": 2.0},
            {"graph": "g2", "rs": "(2,3)", "algorithm": "ARB",
             "slowdown": 1.0, "self_speedup": 35.0},
            {"graph": "g2", "rs": "(2,3)", "algorithm": "ND",
             "slowdown": 50.0},
            {"graph": "g2", "rs": "(2,3)", "algorithm": "AND",
             "slowdown": 1.1},
            {"graph": "g2", "rs": "(2,3)", "algorithm": "AND-NN",
             "note": "OOM (paper)"},
        ]
        from repro.experiments.harness import headline_statistics
        stats = headline_statistics(rows)
        assert stats["ND"] == (30.0, 50.0)
        assert stats["ARB self-relative"] == (20.0, 35.0)
        # Best competitor per graph: AND at 2.0 (g1) and 1.1 (g2).
        assert stats["best competitor"] == (1.1, 2.0)

    def test_empty(self):
        from repro.experiments.harness import headline_statistics
        assert headline_statistics([]) == {}

    def test_arb_serial_row_is_not_a_competitor(self):
        # Regression: the "ARB (1 thread)" row (ARB's own serial run,
        # whose slowdown *is* the self-relative speedup) was excluded from
        # the best-competitor range but still reported in the per-algorithm
        # slowdown map as if it were a competitor.
        from repro.experiments.harness import headline_statistics
        rows = [
            {"graph": "g1", "rs": "(2,3)", "algorithm": "ARB",
             "slowdown": 1.0, "self_speedup": 25.0},
            {"graph": "g1", "rs": "(2,3)", "algorithm": "ARB (1 thread)",
             "slowdown": 25.0},
            {"graph": "g1", "rs": "(2,3)", "algorithm": "ND",
             "slowdown": 8.0},
            {"graph": "g1", "rs": "(2,3)", "algorithm": "AND",
             "slowdown": 3.0},
        ]
        stats = headline_statistics(rows)
        assert "ARB (1 thread)" not in stats
        assert "ARB" not in stats
        assert stats["ND"] == (8.0, 8.0)
        assert stats["AND"] == (3.0, 3.0)
        assert stats["ARB self-relative"] == (25.0, 25.0)
        # The serial ARB row (25.0) must not win or widen either range.
        assert stats["best competitor"] == (3.0, 3.0)
