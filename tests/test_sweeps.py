"""Tests for the generic parameter-sweep API."""

import pytest

from repro.core.config import NucleusConfig
from repro.experiments.sweeps import best_per_group, config_grid, sweep
from repro.graph.generators import figure1_graph, planted_partition


class TestConfigGrid:
    def test_cartesian(self):
        combos = config_grid(aggregation=["array", "hash"],
                             relabel=[False, True])
        assert len(combos) == 4
        labels = {label for label, _ in combos}
        assert "aggregation=hash,relabel=True" in labels

    def test_base_preserved(self):
        base = NucleusConfig(bucketing="dense")
        combos = config_grid(base, relabel=[True])
        assert combos[0][1].bucketing == "dense"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            config_grid(warp_drive=[1, 2])


class TestSweep:
    def test_rows_cover_grid(self):
        graphs = {"fig1": figure1_graph()}
        rows = sweep(graphs, [(2, 3), (3, 4)],
                     config_grid(aggregation=["array", "hash"]))
        assert len(rows) == 4
        assert {row["config"] for row in rows} == \
            {"aggregation=array", "aggregation=hash"}
        assert all(row["T60"] > 0 for row in rows)

    def test_default_config(self):
        rows = sweep({"fig1": figure1_graph()}, [(2, 3)])
        assert len(rows) == 1
        assert rows[0]["config"] == "default"

    def test_results_identical_across_configs(self):
        graph = planted_partition(40, 4, 0.5, 0.02, seed=1)
        rows = sweep({"g": graph}, [(2, 3)],
                     config_grid(bucketing=["julienne", "dense"]))
        assert len({row["max_core"] for row in rows}) == 1
        assert len({row["rho"] for row in rows}) == 1


class TestBestPerGroup:
    def test_picks_minimum(self):
        rows = [
            {"graph": "a", "r": 2, "s": 3, "config": "x", "T60": 10.0},
            {"graph": "a", "r": 2, "s": 3, "config": "y", "T60": 5.0},
            {"graph": "b", "r": 2, "s": 3, "config": "x", "T60": 7.0},
        ]
        best = best_per_group(rows)
        assert len(best) == 2
        chosen = {row["graph"]: row["config"] for row in best}
        assert chosen == {"a": "y", "b": "x"}
