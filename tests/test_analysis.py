"""Tests for the analysis package (nucleus navigation + serialization)."""

import numpy as np
import pytest

from repro.analysis import (core_level_subgraph, core_spectrum,
                            density_profile, load_result_json,
                            nucleus_members, overlap_matrix,
                            result_to_records, save_result_json)
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import figure1_graph, planted_partition


@pytest.fixture(scope="module")
def fig1_result():
    return arb_nucleus_decomp(figure1_graph(), 3, 4)


@pytest.fixture(scope="module")
def community_result():
    graph = planted_partition(60, 5, 0.5, 0.02, seed=3)
    return graph, arb_nucleus_decomp(graph, 2, 3)


class TestMembers:
    def test_level_zero_covers_all_clique_vertices(self, fig1_result):
        # Vertices of any triangle: everyone in Figure 1.
        assert nucleus_members(fig1_result, 0) == set(range(7))

    def test_top_level_excludes_peripherals(self, fig1_result):
        # Core 2 excludes f and g (only abf/aef/bef/cdg touch them).
        assert nucleus_members(fig1_result, 2) == {0, 1, 2, 3, 4}

    def test_above_max_is_empty(self, fig1_result):
        assert nucleus_members(fig1_result, 99) == set()


class TestSubgraph:
    def test_top_subgraph_is_the_5_clique(self, fig1_result):
        sub, originals = core_level_subgraph(figure1_graph(), fig1_result, 2)
        assert sub.n == 5
        assert sub.m == 10
        assert list(originals) == [0, 1, 2, 3, 4]

    def test_empty_level(self, fig1_result):
        sub, originals = core_level_subgraph(figure1_graph(), fig1_result,
                                             99)
        assert originals.size == 0


class TestSpectrum:
    def test_figure1(self, fig1_result):
        spectrum = core_spectrum(fig1_result)
        assert spectrum == {0: 14, 1: 13, 2: 10}

    def test_monotone_decreasing(self, community_result):
        _, result = community_result
        spectrum = core_spectrum(result)
        values = [spectrum[level] for level in sorted(spectrum)]
        assert values == sorted(values, reverse=True)


class TestDensityProfile:
    def test_density_is_monotone_nondecreasing(self, community_result):
        graph, result = community_result
        profile = density_profile(graph, result)
        densities = [row["density"] for row in profile]
        assert all(b >= a - 1e-9 for a, b in zip(densities, densities[1:]))

    def test_figure1_top_density(self, fig1_result):
        profile = density_profile(figure1_graph(), fig1_result)
        assert profile[-1]["density"] == pytest.approx(1.0)  # the 5-clique


class TestOverlap:
    def test_self_overlap_is_one(self, community_result):
        graph, result = community_result
        matrix = overlap_matrix([result, result])
        assert np.allclose(matrix, 1.0)

    def test_cross_rs_overlap(self):
        graph = planted_partition(60, 5, 0.5, 0.02, seed=3)
        results = [arb_nucleus_decomp(graph, 1, 2),
                   arb_nucleus_decomp(graph, 2, 3)]
        matrix = overlap_matrix(results)
        assert matrix.shape == (2, 2)
        assert 0.0 <= matrix[0, 1] <= 1.0

    def test_two_empty_top_sets_score_zero(self):
        # A path has no triangles: the (3,4) decomposition is empty, so
        # two empty top sets carry no evidence of agreement --- 0.0 off
        # the diagonal (never Jaccard(0/0) = 1.0), 1.0 on it.
        from repro.graph.csr import CSRGraph
        graph = CSRGraph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4),
                                        (4, 5)])
        result = arb_nucleus_decomp(graph, 3, 4)
        assert nucleus_members(result, 0) == set()
        matrix = overlap_matrix([result, result])
        assert matrix[0, 1] == matrix[1, 0] == 0.0
        assert matrix[0, 0] == matrix[1, 1] == 1.0

    def test_zero_core_top_set_degenerates_to_covered_vertices(self):
        # max_core == 0 makes the threshold 0: the "top" is every
        # edge-covered vertex (the documented uninformative case), and
        # overlapping it with an empty decomposition still reads 0.0.
        from repro.graph.csr import CSRGraph
        graph = CSRGraph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4),
                                        (4, 5)])
        edge_result = arb_nucleus_decomp(graph, 2, 3)
        assert edge_result.max_core == 0
        assert nucleus_members(edge_result, 0) == set(range(6))
        matrix = overlap_matrix([edge_result,
                                 arb_nucleus_decomp(graph, 3, 4)])
        assert matrix[0, 1] == 0.0


class TestSerialization:
    def test_round_trip(self, fig1_result, tmp_path):
        path = tmp_path / "result.json"
        save_result_json(fig1_result, path)
        loaded = load_result_json(path)
        assert loaded["r"] == 3 and loaded["s"] == 4
        assert loaded["rho"] == 3
        assert loaded["cores"] == fig1_result.as_dict()
        assert loaded["stats"]["work"] > 0

    def test_records(self, fig1_result):
        records = result_to_records(fig1_result)
        assert len(records) == 14
        assert records[0]["clique"] == [0, 1, 2]
        assert all(isinstance(r["core"], int) for r in records)
