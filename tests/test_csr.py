"""Tests for the CSR graph substrate (repro.graph.csr)."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph, DirectedGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 3
        assert list(g.neighbors(1)) == [0, 2]

    def test_self_loops_removed(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (2, 2)])
        assert g.m == 1
        assert g.degree(2) == 0

    def test_duplicates_collapse(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1), (0, 1)])
        assert g.m == 1
        assert g.degree(0) == 1

    def test_symmetry(self):
        g = CSRGraph.from_edges(5, [(0, 3), (3, 4)])
        for u in range(5):
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    def test_neighbors_sorted(self):
        g = CSRGraph.from_edges(6, [(3, 5), (3, 1), (3, 4), (3, 0)])
        assert list(g.neighbors(3)) == [0, 1, 4, 5]

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, [])
        assert g.n == 3
        assert g.m == 0

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(2, [(0, 5)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, np.zeros((2, 3), dtype=np.int64))

    def test_from_adjacency(self):
        g = CSRGraph.from_adjacency([[1, 2], [0], [0]])
        assert g.m == 2
        assert g.degree(0) == 2

    def test_mismatched_offsets_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.array([0, 5]), np.array([1, 2]))


class TestQueries:
    def test_degrees(self, fig1):
        assert fig1.degree(0) == 5  # a: b,c,d,e,f
        assert fig1.degree(6) == 2  # g: c,d
        assert fig1.degrees.sum() == 2 * fig1.m

    def test_has_edge(self, fig1):
        assert fig1.has_edge(0, 1)
        assert fig1.has_edge(1, 0)
        assert not fig1.has_edge(5, 6)  # f-g absent

    def test_edges_each_once(self, fig1):
        edges = fig1.edges()
        assert edges.shape == (15, 2)
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_repr(self, fig1):
        assert "n=7" in repr(fig1) and "m=15" in repr(fig1)


class TestDerivedGraphs:
    def test_relabeled_preserves_structure(self, fig1):
        perm = np.array([3, 2, 1, 0, 6, 5, 4])
        h = fig1.relabeled(perm)
        assert h.m == fig1.m
        for u, v in fig1.edges():
            assert h.has_edge(int(perm[u]), int(perm[v]))

    def test_relabeled_requires_permutation(self, fig1):
        with pytest.raises(ValueError):
            fig1.relabeled(np.zeros(7, dtype=np.int64))

    def test_induced_subgraph(self, fig1):
        sub, originals = fig1.induced_subgraph([0, 1, 2, 3, 4])
        assert sub.n == 5
        assert sub.m == 10  # the 5-clique
        assert list(originals) == [0, 1, 2, 3, 4]

    def test_induced_subgraph_drops_cross_edges(self, fig1):
        sub, _ = fig1.induced_subgraph([5, 6])  # f and g, not adjacent
        assert sub.m == 0


class TestDirectedGraph:
    def test_orientation_respects_rank(self, fig1):
        rank = np.arange(7)
        dg = DirectedGraph.orient(fig1, rank)
        assert dg.m == fig1.m  # every edge directed exactly once
        for u in range(7):
            for v in dg.out_neighbors(u):
                assert rank[u] < rank[v]

    def test_out_neighbors_sorted(self, fig1):
        dg = DirectedGraph.orient(fig1, np.arange(7))
        for u in range(7):
            out = dg.out_neighbors(u)
            assert (np.diff(out) > 0).all() if out.size > 1 else True

    def test_max_out_degree(self, k6):
        dg = DirectedGraph.orient(k6, np.arange(6))
        assert dg.max_out_degree == 5  # vertex 0 points at everyone

    def test_reversed_rank_flips_edges(self, fig1):
        fwd = DirectedGraph.orient(fig1, np.arange(7))
        rev = DirectedGraph.orient(fig1, np.arange(7)[::-1].copy())
        assert fwd.out_degree(0) == rev.out_degree(0) == 0 or \
            fwd.out_degree(0) + rev.out_degree(0) == fig1.degree(0)
