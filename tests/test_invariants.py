"""Structural invariants of nucleus decompositions, property-tested.

These go beyond matching the brute-force oracle: they check mathematical
properties the decomposition must satisfy on *any* graph, which catches
bug classes the oracle comparison can miss (the oracle shares the graph
substrate with the implementation).
"""

from itertools import combinations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomp import arb_nucleus_decomp
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi


def random_graph(seed: int, n: int = 24, m: int = 80) -> CSRGraph:
    return erdos_renyi(n, m, seed=seed)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_definitional_soundness_34(seed):
    """Every triangle with core c lies in a subgraph (the union of
    triangles with core >= c) where it touches >= c surviving 4-cliques."""
    graph = random_graph(seed)
    result = arb_nucleus_decomp(graph, 3, 4)
    cores = result.as_dict()
    if not cores:
        return
    for level in set(cores.values()):
        survivors = {t for t, c in cores.items() if c >= level}
        # Count, for each surviving triangle, 4-cliques whose four
        # triangles all survive.
        for tri in survivors:
            count = 0
            rest = set(range(graph.n)) - set(tri)
            for w in rest:
                if all(graph.has_edge(v, w) for v in tri):
                    quad = tuple(sorted(tri + (w,)))
                    if all(tuple(sorted(t)) in survivors
                           for t in combinations(quad, 3)):
                        count += 1
            assert count >= level, (tri, level, count)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_adding_edges_never_decreases_cores(seed):
    """Core numbers are monotone under edge addition."""
    rng = np.random.default_rng(seed)
    graph = random_graph(seed)
    before = arb_nucleus_decomp(graph, 2, 3).as_dict()
    # Add a few random edges.
    extra = [(int(rng.integers(graph.n)), int(rng.integers(graph.n)))
             for _ in range(5)]
    bigger = CSRGraph.from_edges(
        graph.n, np.concatenate([graph.edges(),
                                 np.asarray(extra, dtype=np.int64)]))
    after = arb_nucleus_decomp(bigger, 2, 3).as_dict()
    for edge, core in before.items():
        assert after[edge] >= core


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_core_bounded_by_initial_count(seed):
    """No r-clique's core number exceeds its initial s-clique count."""
    graph = random_graph(seed)
    result = arb_nucleus_decomp(graph, 2, 3)
    cores = result.as_dict()
    # Initial counts: triangles per edge.
    from repro.cliques.counting import edge_support
    support = edge_support(graph)
    for edge, core in cores.items():
        assert core <= support[edge]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_max_core_hierarchy_across_s(seed):
    """For fixed r, raising s cannot raise the max core above the smaller
    s's bound scaled by clique inclusion: each (r, s+1) nucleus is at
    least as exclusive as an (r, s) nucleus of equal depth."""
    graph = random_graph(seed, n=20, m=70)
    max_cores = {}
    for s in (3, 4):
        max_cores[s] = arb_nucleus_decomp(graph, 2, s).max_core
    # Every 4-clique contains (s-r choose ...) triangles: a c-(2,4) core
    # implies a c-(2,3)-like density, so max core cannot explode upward.
    assert max_cores[4] <= max(1, max_cores[3]) * max(1, max_cores[3])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6),
       rs=st.sampled_from([(1, 2), (2, 3), (3, 4)]))
def test_vertex_disjoint_union_independent(seed, rs):
    """Decomposing a disjoint union equals decomposing the parts."""
    r, s = rs
    a = random_graph(seed, n=14, m=40)
    b = random_graph(seed + 1, n=14, m=40)
    union_edges = np.concatenate([a.edges(), b.edges() + 14])
    union = CSRGraph.from_edges(28, union_edges)
    cores_a = arb_nucleus_decomp(a, r, s).as_dict()
    cores_b = arb_nucleus_decomp(b, r, s).as_dict()
    cores_u = arb_nucleus_decomp(union, r, s).as_dict()
    for clique, core in cores_a.items():
        assert cores_u[clique] == core
    for clique, core in cores_b.items():
        shifted = tuple(v + 14 for v in clique)
        assert cores_u[shifted] == core


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_relabeling_invariance(seed):
    """Core numbers are a graph invariant: permuting vertex ids permutes
    the answer identically."""
    graph = random_graph(seed)
    rng = np.random.default_rng(seed + 7)
    perm = rng.permutation(graph.n)
    permuted = graph.relabeled(perm)
    original = arb_nucleus_decomp(graph, 2, 3).as_dict()
    renamed = arb_nucleus_decomp(permuted, 2, 3).as_dict()
    for (u, v), core in original.items():
        key = tuple(sorted((int(perm[u]), int(perm[v]))))
        assert renamed[key] == core
