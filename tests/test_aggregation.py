"""Tests for the update-aggregation strategies (Section 5.5)."""

import pytest

from repro.core.aggregation import (AGGREGATORS, HashTableAggregator,
                                    ListBufferAggregator,
                                    SimpleArrayAggregator, make_aggregator)
from repro.parallel.atomics import ContentionMeter
from repro.parallel.runtime import CostTracker

ALL = list(AGGREGATORS.values())


@pytest.mark.parametrize("cls", ALL)
class TestCommonBehavior:
    def test_collects_recorded_cells(self, cls):
        agg = cls(100, threads=4)
        agg.begin_round(10, 50)
        for cell in (5, 9, 42):
            agg.record(cell)
        assert sorted(agg.finish_round()) == [5, 9, 42]

    def test_rounds_are_independent(self, cls):
        agg = cls(100, threads=4)
        agg.begin_round(10, 50)
        agg.record(1)
        agg.finish_round()
        agg.begin_round(10, 50)
        agg.record(2)
        assert sorted(agg.finish_round()) == [2]

    def test_empty_round(self, cls):
        agg = cls(100)
        agg.begin_round(0, 0)
        assert agg.finish_round().size == 0

    def test_many_cells(self, cls):
        agg = cls(1000, threads=8)
        agg.begin_round(100, 1000)
        for cell in range(500):
            agg.record(cell, thread=cell % 8)
        assert sorted(agg.finish_round()) == list(range(500))


class TestContentionProfiles:
    def test_simple_array_contends_on_every_record(self):
        meter = ContentionMeter()
        agg = SimpleArrayAggregator(100, meter=meter)
        agg.begin_round(10, 50)
        for cell in range(20):
            agg.record(cell)
        tracker = CostTracker()
        serialized = meter.settle(tracker)
        assert serialized == 19  # 20 colliding FAAs serialize

    def test_list_buffer_contends_only_on_blocks(self):
        meter = ContentionMeter()
        agg = ListBufferAggregator(1000, threads=2, meter=meter,
                                   buffer_size=16)
        agg.begin_round(10, 100)
        for cell in range(64):
            agg.record(cell, thread=cell % 2)
        tracker = CostTracker()
        serialized = meter.settle(tracker)
        # 64 records / 16-slot blocks = 4 block reservations.
        assert serialized <= 4

    def test_hash_table_never_contends(self):
        tracker = CostTracker()
        agg = HashTableAggregator(100, tracker=tracker)
        agg.begin_round(10, 50)
        for cell in range(20):
            agg.record(cell)
        assert tracker.total.contention == 0

    def test_hash_table_pays_clearing(self):
        tracker = CostTracker()
        agg = HashTableAggregator(10000, tracker=tracker)
        agg.begin_round(100, 5000)
        agg.record(1)
        before = tracker.work
        agg.finish_round()
        assert tracker.work > before  # the clear scans the table


class TestListBufferInternals:
    def test_blocks_do_not_interleave_within_thread(self):
        agg = ListBufferAggregator(100, threads=1, buffer_size=4)
        agg.begin_round(1, 50)
        for cell in range(10):
            agg.record(cell, thread=0)
        assert sorted(agg.finish_round()) == list(range(10))

    def test_unused_slots_filtered(self):
        agg = ListBufferAggregator(100, threads=4, buffer_size=8)
        agg.begin_round(1, 50)
        agg.record(7, thread=0)
        agg.record(9, thread=3)  # two threads, two partially-used blocks
        out = agg.finish_round()
        assert sorted(out) == [7, 9]

    def test_hash_sizes_from_estimate(self):
        agg = HashTableAggregator(10**6)
        agg.begin_round(2, 10)
        small_capacity = agg._table.n_slots
        agg.finish_round()
        agg.begin_round(1000, 10**5)
        assert agg._table.n_slots > small_capacity


def test_make_aggregator():
    assert isinstance(make_aggregator("array", 10), SimpleArrayAggregator)
    assert isinstance(make_aggregator("list_buffer", 10), ListBufferAggregator)
    assert isinstance(make_aggregator("hash", 10), HashTableAggregator)
    with pytest.raises(ValueError):
        make_aggregator("bogus", 10)
