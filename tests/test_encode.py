"""Tests for clique key packing (repro.cliques.encode)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cliques.encode import CliqueEncoder, KeyWidthError, min_levels


class TestEncoder:
    def test_round_trip(self):
        enc = CliqueEncoder(100, 3)
        assert enc.decode(enc.encode((3, 17, 99))) == (3, 17, 99)

    def test_lexicographic_order_preserved(self):
        enc = CliqueEncoder(64, 2)
        assert enc.encode((1, 2)) < enc.encode((1, 3)) < enc.encode((2, 0))

    def test_single_vertex(self):
        enc = CliqueEncoder(1000, 1)
        assert enc.decode(enc.encode((512,))) == (512,)

    def test_width_validation(self):
        with pytest.raises(ValueError):
            CliqueEncoder(10, 0)

    def test_overflow_rejected(self):
        # 7 vertices x 10 bits = 70 bits > 63.
        with pytest.raises(KeyWidthError):
            CliqueEncoder(1024, 7)

    def test_top_bit_free(self):
        enc = CliqueEncoder(2**20, 3)
        key = enc.encode((2**20 - 1,) * 3)
        assert key < 2**63

    @given(st.integers(2, 5000), st.data())
    def test_property_round_trip(self, n, data):
        width = data.draw(st.integers(1, 4))
        bits = max(1, (n - 1).bit_length())
        if width * bits > 63:
            return
        enc = CliqueEncoder(n, width)
        vertices = tuple(sorted(data.draw(
            st.lists(st.integers(0, n - 1), min_size=width, max_size=width))))
        assert enc.decode(enc.encode(vertices)) == vertices


class TestMinLevels:
    def test_small_graph_one_level(self):
        assert min_levels(100, 3) == 1

    def test_large_r_needs_more_levels(self):
        # n=2^20 (20 bits): one-level holds at most 3 vertices.
        assert min_levels(2**20, 3) == 1
        assert min_levels(2**20, 4) == 2
        assert min_levels(2**20, 6) == 4

    def test_always_feasible_with_r_levels(self):
        for n in (10, 1000, 2**30):
            for r in range(1, 8):
                levels = min_levels(n, r)
                bits = max(1, (n - 1).bit_length())
                assert (r - levels + 1) * bits <= 63
