"""Smoke and shape tests for the figure drivers (fast, reduced scopes).

The benchmark suite runs the full-scale versions; here each driver runs on
the smallest surrogates to verify it executes, produces the expected row
schema, and satisfies the paper's qualitative shape where it is cheap to
check.
"""

import pytest

from repro.experiments import figures
from repro.experiments.harness import PAPER_OMISSIONS


@pytest.fixture(scope="module")
def small():
    return ["amazon"]


def test_fig07_schema(small):
    fig = figures.fig07(graphs=small)
    row = fig.rows[0]
    assert row["graph"] == "amazon"
    assert row["n"] > 0 and row["m"] > 0
    assert "rho(2,3)" in row and "max(2,3)" in row
    assert row["rho(1,2)"] >= 1


def test_fig07_kcore_leq_higher_core(small):
    row = figures.fig07(graphs=small).rows[0]
    # Peeling at higher (r,s) terminates in no more rounds than cliques.
    assert row["max(2,3)"] <= row["max(1,2)"] * row["max(1,2)"] + 10


def test_fig08_shape(small):
    fig = figures.fig08(graphs=small)
    combos = {row["combo"] for row in fig.rows}
    assert "one-level" in combos and "2-level/contig/stored" in combos
    for row in fig.rows:
        if row["combo"].startswith("2-level"):
            # Figures 8: layered tables always save space.
            assert row["space_saving"] > 1.0
        assert row["speedup"] > 0


def test_fig09_10_shape(small):
    fig = figures.fig09_fig10(graphs=small)
    assert any(row["combo"] == "3-multi/contig/stored" for row in fig.rows)
    # On the smallest graph the two-level top array can outweigh the key
    # savings (the paper sees amazon behave poorly too); the multi-level
    # variants must still save space, and nothing may blow up.
    layered = [row for row in fig.rows if row["combo"] != "one-level"]
    assert all(row["space_saving"] > 0.5 for row in layered)
    assert any(row["space_saving"] > 1.0 for row in layered)


def test_fig11_variants(small):
    fig = figures.fig11(rs_list=[(2, 3)], graphs=small)
    variants = {row["variant"] for row in fig.rows}
    assert {"relabel", "U=list-buffer", "U=hash", "contraction",
            "combined(best/unopt)"} <= variants
    combined = [row for row in fig.rows
                if row["variant"] == "combined(best/unopt)"]
    assert all(row["speedup"] > 0.8 for row in combined)


def test_fig12_rows(small):
    fig = figures.fig12(graphs=small, rs_list=[(2, 3)])
    algorithms = {row["algorithm"] for row in fig.rows}
    assert {"ARB", "ND", "PND", "AND", "AND-NN", "PKT", "PKT-OPT-CPU",
            "MSP"} <= algorithms
    by_algo = {row["algorithm"]: row for row in fig.rows}
    assert by_algo["ARB"]["slowdown"] == 1.0
    # The work-inefficient baselines must lose (paper Section 6.3).
    assert by_algo["ND"]["slowdown"] > 2.0
    assert by_algo["PND"]["slowdown"] > 1.5
    assert by_algo["AND"]["visit_ratio"] > 1.0


def test_fig12_respects_paper_omissions():
    fig = figures.fig12(graphs=["friendster"], rs_list=[(3, 4)])
    arb_rows = [row for row in fig.rows if row["algorithm"] == "ARB"]
    assert arb_rows[0].get("note") == "OOM (paper)"


def test_fig13_excludes_23_and_34(small):
    fig = figures.fig13(graphs=small)
    pairs = {row["rs"] for row in fig.rows}
    assert "(2,3)" not in pairs and "(3,4)" not in pairs
    assert all(row["slowdown_vs_fastest"] >= 1.0 - 1e-9 for row in fig.rows)


def test_fig14_speedups_monotone(small):
    fig = figures.fig14(graphs=small, rs_list=[(2, 3)],
                        thread_counts=[1, 4, 16, 60])
    for row in fig.rows:
        assert row["S1"] == pytest.approx(1.0)
        assert row["S1"] <= row["S4"] <= row["S16"] <= row["S60"]


def test_fig15_density_scaling():
    fig = figures.fig15(scales=[7], edge_factors=[2, 8],
                        rs_list=[(2, 3)])
    sparse, dense = fig.rows
    assert dense["m"] > sparse["m"]
    assert dense["T(2,3)"] > sparse["T(2,3)"]


def test_paper_omissions_table_is_well_formed():
    for (figure, algo, graph, rs), reason in PAPER_OMISSIONS.items():
        assert figure.startswith("fig")
        assert isinstance(rs, tuple) and len(rs) == 2
        assert "OOM" in reason or "timeout" in reason
