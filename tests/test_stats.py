"""Tests for structural graph statistics (repro.graph.stats)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import (complete_graph, cycle_graph,
                                    rmat_graph, star_graph)
from repro.graph.stats import (average_local_clustering, degree_statistics,
                               global_clustering_coefficient, profile_graph)


class TestDegreeStatistics:
    def test_regular_graph(self):
        stats = degree_statistics(cycle_graph(10))
        assert stats["min"] == stats["max"] == 2
        assert stats["mean"] == 2.0
        assert stats["skew"] == 0.0

    def test_star_is_skewed(self):
        stats = degree_statistics(star_graph(20))
        assert stats["max"] == 20
        assert stats["skew"] > 1.0

    def test_empty(self):
        stats = degree_statistics(CSRGraph.from_edges(1, []))
        assert stats["max"] == 0


class TestClustering:
    def test_complete_graph_transitivity_one(self):
        assert global_clustering_coefficient(complete_graph(6)) == \
            pytest.approx(1.0)

    def test_triangle_free_zero(self):
        assert global_clustering_coefficient(cycle_graph(8)) == 0.0

    def test_matches_networkx(self, community60):
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        assert global_clustering_coefficient(community60) == \
            pytest.approx(nx.transitivity(nx_graph))

    def test_local_matches_networkx(self, community60):
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        nx_graph.add_nodes_from(range(community60.n))
        ours = average_local_clustering(community60)
        # networkx averages over all nodes (degree<2 count as 0); ours
        # averages over nodes with degree >= 2 -- compare on that set.
        eligible = [v for v in range(community60.n)
                    if community60.degree(v) >= 2]
        theirs = np.mean([nx.clustering(nx_graph, v) for v in eligible])
        assert ours == pytest.approx(theirs)

    def test_sampled_local_clustering_close(self):
        g = rmat_graph(9, 6, seed=2)
        full = average_local_clustering(g)
        sampled = average_local_clustering(g, sample=200, seed=1)
        assert sampled == pytest.approx(full, abs=0.15)


class TestProfile:
    def test_complete_graph_profile(self):
        profile = profile_graph(complete_graph(5))
        assert profile.n == 5
        assert profile.m == 10
        assert profile.degeneracy == 4
        assert profile.triangles == 10
        assert profile.transitivity == pytest.approx(1.0)
        assert profile.as_dict()["degree"]["max"] == 4

    def test_empty_graph_profile(self):
        profile = profile_graph(CSRGraph.from_edges(3, []))
        assert profile.degeneracy == 0
        assert profile.triangles == 0
