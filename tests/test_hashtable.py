"""Tests for the open-addressing parallel hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.hashtable import EMPTY_KEY, ParallelHashTable, hash64
from repro.parallel.runtime import CostTracker


class TestHash64:
    def test_deterministic(self):
        assert hash64(12345) == hash64(12345)

    def test_spreads_consecutive_keys(self):
        values = {hash64(i) & 0xFF for i in range(100)}
        assert len(values) > 50

    def test_in_range(self):
        assert 0 <= hash64(2**63) < 2**64


class TestBasicOperations:
    def test_insert_and_get(self):
        t = ParallelHashTable(8)
        t.insert_or_add(42, 3.0)
        assert t.get(42) == 3.0
        assert len(t) == 1

    def test_insert_or_add_accumulates(self):
        t = ParallelHashTable(8)
        t.insert_or_add(7, 1.0)
        t.insert_or_add(7, 1.0)
        assert t.get(7) == 2.0
        assert len(t) == 1

    def test_get_missing_returns_default(self):
        t = ParallelHashTable(8)
        assert t.get(99) is None
        assert t.get(99, -1.0) == -1.0

    def test_set_overwrites(self):
        t = ParallelHashTable(8)
        t.set(5, 1.0)
        t.set(5, 9.0)
        assert t.get(5) == 9.0

    def test_contains(self):
        t = ParallelHashTable(8)
        t.insert_or_add(1, 1.0)
        assert 1 in t
        assert 2 not in t

    def test_items_and_slots(self):
        t = ParallelHashTable(16)
        for k in (10, 20, 30):
            t.insert_or_add(k, float(k))
        assert dict(t.items()) == {10: 10.0, 20: 20.0, 30: 30.0}
        assert t.occupied_slots().size == 3

    def test_slot_of_and_key_at(self):
        t = ParallelHashTable(8)
        slot = t.insert_or_add(77, 1.0)
        assert t.slot_of(77) == slot
        assert t.key_at(slot) == 77
        assert t.slot_of(78) == -1

    def test_clear(self):
        t = ParallelHashTable(8)
        t.insert_or_add(1, 1.0)
        t.clear()
        assert len(t) == 0
        assert 1 not in t


class TestGrowth:
    def test_grows_past_load_factor(self):
        t = ParallelHashTable(4)
        for k in range(100):
            t.insert_or_add(k, 1.0)
        assert len(t) == 100
        assert all(t.get(k) == 1.0 for k in range(100))

    def test_frozen_slab_refuses_growth(self):
        t = ParallelHashTable(4, resizable=False)
        with pytest.raises(RuntimeError):
            for k in range(1000):
                t.insert_or_add(k, 1.0)

    def test_power_of_two_capacity(self):
        t = ParallelHashTable(100)
        assert t.n_slots & (t.n_slots - 1) == 0


class TestAccounting:
    def test_probes_charged(self):
        tr = CostTracker()
        t = ParallelHashTable(64, tracker=tr)
        t.insert_or_add(5, 1.0)
        assert tr.total.table_probes >= 1
        assert tr.total.atomic_ops == 1

    def test_clear_charges_capacity(self):
        tr = CostTracker()
        t = ParallelHashTable(64, tracker=tr)
        before = tr.work
        t.clear()
        assert tr.work - before == t.n_slots


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2**40), st.floats(-100, 100)),
                max_size=200))
def test_model_equivalence(pairs):
    """The table behaves exactly like a dict under insert_or_add."""
    table = ParallelHashTable(4)
    model: dict[int, float] = {}
    for key, delta in pairs:
        table.insert_or_add(key, delta)
        model[key] = model.get(key, 0.0) + delta
    assert len(table) == len(model)
    for key, value in model.items():
        assert table.get(key) == pytest.approx(value)


def test_empty_key_reserved():
    t = ParallelHashTable(8)
    assert np.uint64(EMPTY_KEY) == np.uint64(0xFFFFFFFFFFFFFFFF)
    assert (t.keys == EMPTY_KEY).all()
