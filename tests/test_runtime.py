"""Tests for the work-span cost tracker and machine model."""

import pytest

from repro.parallel.runtime import CostTracker, MachineModel


class TestWorkAccounting:
    def test_work_accumulates(self):
        t = CostTracker()
        t.add_work(10)
        t.add_work(5)
        assert t.work == 15

    def test_phases_partition_work(self):
        t = CostTracker()
        with t.phase("a"):
            t.add_work(3)
        with t.phase("b"):
            t.add_work(4)
        assert t.phases["a"].work == 3
        assert t.phases["b"].work == 4
        assert t.work == 7

    def test_nested_phases_charge_innermost(self):
        t = CostTracker()
        with t.phase("outer"):
            t.add_work(1)
            with t.phase("inner"):
                t.add_work(2)
        assert t.phases["outer"].work == 1
        assert t.phases["inner"].work == 2


class TestSpanAccounting:
    def test_serial_span_sums(self):
        t = CostTracker()
        t.add_span(5)
        t.add_span(7)
        assert t.span == 12

    def test_parallel_tasks_combine_by_max(self):
        t = CostTracker()
        with t.parallel(4) as region:
            for cost in (3, 10, 2, 1):
                with region.task():
                    t.add_span(cost)
        # max task span (10) plus the log2(4)=2 fork-join overhead
        assert t.span == pytest.approx(12)

    def test_nested_parallel_regions(self):
        t = CostTracker()
        with t.parallel(2) as outer:
            with outer.task():
                with t.parallel(2) as inner:
                    with inner.task():
                        t.add_span(8)
                    with inner.task():
                        t.add_span(3)
            with outer.task():
                t.add_span(1)
        # inner region: 8 + 1 = 9; outer max(9, 1) + 1 = 10
        assert t.span == pytest.approx(10)

    def test_task_span_shortcut(self):
        t = CostTracker()
        with t.parallel(8) as region:
            region.task_span(5)
            region.task_span(9)
        assert t.span == pytest.approx(9 + 3)

    def test_span_after_region_resumes_serial(self):
        t = CostTracker()
        with t.parallel(2) as region:
            with region.task():
                t.add_span(4)
        t.add_span(6)
        assert t.span == pytest.approx(4 + 1 + 6)


class TestCounters:
    def test_misc_counters(self):
        t = CostTracker()
        t.add_round(3)
        t.add_atomic(2)
        t.add_contention(5.0)
        t.add_cliques(7)
        t.add_probes(4)
        t.note_memory_units(100)
        t.note_memory_units(50)  # not a new high-water mark
        s = t.summary()
        assert s["rounds"] == 3
        assert s["atomic_ops"] == 2
        assert s["contention"] == 5.0
        assert s["cliques_enumerated"] == 7
        assert s["table_probes"] == 4
        assert s["peak_memory_units"] == 100


class TestMachineModel:
    def _tracker(self, work=60000, span=100, rounds=10):
        t = CostTracker()
        t.add_work(work)
        t.add_span(span)
        t.add_round(rounds)
        return t

    def test_serial_time_is_work_plus_span(self):
        m = MachineModel()
        t = self._tracker()
        assert m.time(t, 1) == pytest.approx(60000 + 100)

    def test_parallel_time_below_serial(self):
        m = MachineModel()
        t = self._tracker()
        assert m.time(t, 30) < m.time(t, 1)

    def test_speedup_monotone_in_threads(self):
        m = MachineModel()
        t = self._tracker(work=10**6)
        times = [m.time(t, p) for p in (1, 2, 4, 8, 16, 30)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_hyperthreading_discount(self):
        m = MachineModel(cores=30, ht_yield=0.35)
        assert m.effective_parallelism(30) == 30
        assert m.effective_parallelism(60) == pytest.approx(30 + 0.35 * 30)

    def test_speedup_bounded_by_effective_parallelism(self):
        m = MachineModel()
        t = self._tracker(work=10**8, span=1, rounds=0)
        assert m.speedup(t, 60) <= m.effective_parallelism(60) + 1e-9

    def test_rounds_cost_barriers_only_in_parallel(self):
        m = MachineModel()
        few = self._tracker(rounds=1)
        many = self._tracker(rounds=1000)
        assert m.time(few, 1) == m.time(many, 1)
        assert m.time(many, 30) > m.time(few, 30)

    def test_contention_hurts_parallel_only(self):
        m = MachineModel()
        t = self._tracker()
        quiet = m.time(t, 30)
        t.add_contention(10000)
        assert m.time(t, 30) > quiet
        assert m.time(t, 1) == pytest.approx(60100)

    def test_cache_misses_add_work(self):
        from repro.machine.cache import CacheSimulator
        m = MachineModel()
        t = self._tracker()
        base = m.time(t, 1)
        t.cache = CacheSimulator(n_sets=4, ways=1)
        for addr in range(0, 10000, 64):
            t.access(addr)
        assert m.time(t, 1) > base


class TestTimeBreakdown:
    def _tracker(self):
        t = CostTracker()
        with t.phase("a"):
            t.add_work(50000)
            t.add_span(80)
            t.add_round(7)
            t.add_contention(11)
        with t.phase("b"):
            t.add_work(10000)
            t.add_span(20)
            t.add_round(3)
        return t

    @pytest.mark.parametrize("threads", [1, 2, 30, 60])
    def test_terms_sum_to_time(self, threads):
        m = MachineModel()
        t = self._tracker()
        bd = m.time_breakdown(t, threads)
        total = bd["total"]
        assert total["time"] == (total["work"] + total["span"]
                                 + total["barrier"] + total["contention"]
                                 + total["cache"])
        assert total["time"] == pytest.approx(m.time(t, threads), rel=1e-12)

    def test_serial_has_no_barrier_or_contention(self):
        bd = MachineModel().time_breakdown(self._tracker(), 1)
        assert bd["total"]["barrier"] == 0.0
        assert bd["total"]["contention"] == 0.0

    def test_phase_terms_partition_total(self):
        bd = MachineModel().time_breakdown(self._tracker(), 60)
        for term in ("work", "span", "barrier", "contention", "cache"):
            assert sum(p[term] for p in bd["phases"].values()) == \
                pytest.approx(bd["total"][term])

    def test_barrier_term_counts_rounds(self):
        m = MachineModel()
        t = self._tracker()
        bd = m.time_breakdown(t, 60)
        assert bd["total"]["barrier"] == pytest.approx(
            10 * m.barrier_cost(60))
        assert bd["phases"]["a"]["barrier"] == pytest.approx(
            7 * m.barrier_cost(60))

    def test_cache_term_scales_with_misses(self):
        from repro.machine.cache import CacheSimulator
        m = MachineModel()
        t = CostTracker()
        t.cache = CacheSimulator(n_sets=4, ways=1)
        with t.phase("hot"):
            for addr in range(0, 10000, 64):
                t.access(addr)
        bd = m.time_breakdown(t, 1)
        assert bd["total"]["cache"] == pytest.approx(
            m.miss_penalty * t.cache.misses)
        assert bd["phases"]["hot"]["cache"] == bd["total"]["cache"]

    def test_effective_parallelism_reported(self):
        bd = MachineModel().time_breakdown(self._tracker(), 60)
        assert bd["threads"] == 60
        assert bd["effective_parallelism"] == pytest.approx(30 + 0.35 * 30)


class TestPhaseSpanAttribution:
    def test_task_spans_attribute_by_max_not_sum(self):
        t = CostTracker()
        with t.phase("p"):
            with t.parallel(4) as region:
                for _ in range(4):
                    with region.task():
                        t.add_span(10)
        # Phase span is the critical-path fragment (max + log2(4)), not
        # the 40-unit flat sum over tasks.
        assert t.phases["p"].span == pytest.approx(10 + 2)
        assert t.span == pytest.approx(10 + 2)

    def test_serial_span_still_attributed(self):
        t = CostTracker()
        with t.phase("p"):
            t.add_span(5)
        assert t.phases["p"].span == 5
