"""Tests for the k-core / k-truss / densest-subgraph convenience modules."""

import networkx as nx
import numpy as np
import pytest

from repro.core.densest import k_clique_densest
from repro.core.kcore import degeneracy_core, k_core, k_core_via_nucleus
from repro.core.ktruss import k_truss, max_truss_subgraph, trussness
from repro.core.verify import brute_force_nucleus
from repro.graph.csr import CSRGraph
from repro.graph.generators import (complete_graph, cycle_graph,
                                    erdos_renyi, planted_partition,
                                    star_graph)
from repro.parallel.runtime import CostTracker


class TestKCore:
    def test_matches_networkx(self, community60):
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        expected = nx.core_number(nx_graph)
        cores = k_core(community60)
        assert all(cores[v] == expected[v] for v in range(community60.n))

    def test_direct_equals_nucleus_route(self, community60):
        assert np.array_equal(k_core(community60),
                              k_core_via_nucleus(community60))

    def test_known_graphs(self):
        assert set(k_core(complete_graph(5))) == {4}
        assert set(k_core(cycle_graph(7))) == {2}
        assert set(k_core(star_graph(6))) == {1}

    def test_degeneracy_core(self, community60):
        assert degeneracy_core(community60) == int(k_core(community60).max())

    def test_tracker_charged(self, community60):
        tracker = CostTracker()
        k_core(community60, tracker)
        assert tracker.work >= community60.n


class TestKTruss:
    def test_matches_oracle(self, community60):
        result = k_truss(community60)
        assert result.as_dict() == brute_force_nucleus(community60, 2, 3)

    def test_trussness_offset(self, community60):
        cores = k_truss(community60).as_dict()
        classical = trussness(community60)
        assert all(classical[e] == c + 2 for e, c in cores.items())

    def test_max_truss_subgraph_supports_its_core(self):
        g = planted_partition(80, 4, 0.6, 0.01, seed=5)
        result = k_truss(g)
        sub, vertices = max_truss_subgraph(g)
        assert sub.n == len(vertices)
        # In a c-truss every edge closes >= c triangles, so every vertex
        # has at least c + 1 neighbors inside the subgraph.
        assert int(sub.degrees.min()) >= result.max_core + 1

    def test_max_truss_complete_graph(self):
        sub, vertices = max_truss_subgraph(complete_graph(6))
        assert sorted(vertices) == list(range(6))
        assert sub.m == 15


class TestDensest:
    def test_planted_clique_found(self):
        # A K8 inside a sparse background: the 3-clique densest subgraph
        # approximation should land on (a superset containing) the clique.
        base = erdos_renyi(100, 150, seed=3)
        edges = [tuple(e) for e in base.edges()]
        clique = list(range(50, 58))
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                edges.append((u, v))
        g = CSRGraph.from_edges(100, edges)
        result = k_clique_densest(g, 3)
        assert set(clique) <= set(result.vertices)
        assert result.density >= 56 / 8 * 0.5  # near the planted density

    def test_density_definition(self):
        g = complete_graph(6)
        result = k_clique_densest(g, 3)
        assert sorted(result.vertices) == list(range(6))
        assert result.clique_count == 20
        assert result.density == pytest.approx(20 / 6)

    def test_k_validation(self, community60):
        with pytest.raises(ValueError):
            k_clique_densest(community60, 1)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(4, [])
        result = k_clique_densest(g, 3)
        assert result.density == 0.0
