"""Tests for the competitor reimplementations (repro.baselines)."""

import pytest

from repro.baselines import (Incidence, and_decomposition,
                             and_nn_decomposition, h_index,
                             msp_decomposition, nd_decomposition,
                             pkt_decomposition, pkt_opt_cpu_decomposition,
                             pnd_decomposition)
from repro.core.verify import brute_force_nucleus
from repro.graph.generators import erdos_renyi

NUCLEUS_BASELINES = [nd_decomposition, pnd_decomposition,
                     and_decomposition, and_nn_decomposition]
TRUSS_BASELINES = [pkt_decomposition, pkt_opt_cpu_decomposition,
                   msp_decomposition]


class TestHIndex:
    def test_classic(self):
        assert h_index([3, 0, 6, 1, 5]) == 3

    def test_all_equal(self):
        assert h_index([2, 2, 2]) == 2

    def test_empty(self):
        assert h_index([]) == 0

    def test_zeroes(self):
        assert h_index([0, 0]) == 0


class TestIncidence:
    def test_figure1_counts(self, fig1):
        inc = Incidence(fig1, 3, 4)
        assert inc.n_r == 14
        assert inc.n_s == 6
        # abe participates in three 4-cliques (paper Section 4.2).
        assert inc.initial_counts[inc.index[(0, 1, 4)]] == 3
        assert inc.initial_counts[inc.index[(2, 3, 6)]] == 0

    def test_members_have_binomial_size(self, fig1):
        inc = Incidence(fig1, 2, 3)
        assert all(len(m) == 3 for m in inc.members)

    def test_words_counts_both_directions(self, fig1):
        inc = Incidence(fig1, 2, 3)
        assert inc.words == 2 * 3 * inc.n_s


@pytest.mark.parametrize("fn", NUCLEUS_BASELINES)
class TestNucleusBaselinesCorrect:
    @pytest.mark.parametrize("r,s", [(2, 3), (3, 4), (2, 4)])
    def test_community_graph(self, fn, r, s, community60):
        expected = brute_force_nucleus(community60, r, s)
        assert fn(community60, r, s).core == expected

    def test_figure1(self, fn, fig1):
        expected = brute_force_nucleus(fig1, 3, 4)
        assert fn(fig1, 3, 4).core == expected

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, fn, seed):
        g = erdos_renyi(30, 120, seed=seed)
        assert fn(g, 2, 3).core == brute_force_nucleus(g, 2, 3)


@pytest.mark.parametrize("fn", TRUSS_BASELINES)
class TestTrussBaselinesCorrect:
    def test_community_graph(self, fn, community60):
        assert fn(community60).core == brute_force_nucleus(community60, 2, 3)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, fn, seed):
        g = erdos_renyi(35, 150, seed=seed)
        assert fn(g).core == brute_force_nucleus(g, 2, 3)

    def test_triangle_free(self, fn, ring12):
        result = fn(ring12)
        assert set(result.core.values()) == {0}


class TestCostSignatures:
    """The paper's Section 6.3 explanations, as counter relationships."""

    def test_pnd_rounds_equal_r_cliques(self, community60):
        result = pnd_decomposition(community60, 2, 3)
        assert result.rounds == result.tracker.total.cliques_enumerated \
            or result.rounds == len(result.core)

    def test_and_overcounts_scliques(self, community60):
        inc_scliques = Incidence(community60, 2, 3).n_s
        result = and_decomposition(community60, 2, 3)
        # AND re-discovers s-cliques every sweep: far more than n_s.
        assert result.s_clique_visits > 2 * inc_scliques

    def test_notification_reduces_visits(self, community60):
        plain = and_decomposition(community60, 2, 3)
        notified = and_nn_decomposition(community60, 2, 3)
        assert notified.s_clique_visits < plain.s_clique_visits

    def test_notification_costs_memory(self, community60):
        plain = and_decomposition(community60, 2, 3)
        notified = and_nn_decomposition(community60, 2, 3)
        assert notified.memory_words > plain.memory_words

    def test_nd_is_serial(self, community60):
        result = nd_decomposition(community60, 2, 3)
        # Serial: span within a constant factor of work.
        assert result.tracker.span > 0.2 * result.tracker.work

    def test_pnd_parallelizes_updates(self, community60):
        pnd = pnd_decomposition(community60, 2, 3)
        nd = nd_decomposition(community60, 2, 3)
        # PND's counting and per-peel updates are parallel, so its critical
        # path is shorter than serial ND's (which equals its work); the gap
        # widens with graph size since PND's per-peel cost is constant.
        assert pnd.tracker.span < nd.tracker.span

    def test_pkt_opt_cheaper_than_pkt(self, community60):
        pkt = pkt_decomposition(community60)
        opt = pkt_opt_cpu_decomposition(community60)
        assert opt.tracker.work < pkt.tracker.work

    def test_msp_rescans_dominate(self, community60):
        msp = msp_decomposition(community60)
        opt = pkt_opt_cpu_decomposition(community60)
        assert msp.tracker.phases["peel"].work > \
            opt.tracker.phases["peel"].work
