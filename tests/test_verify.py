"""Tests for the brute-force oracle itself (repro.core.verify).

The oracle must be independently trustworthy: we pin it against networkx
and against hand-computed instances.
"""

import networkx as nx
import pytest

from repro.core.verify import (brute_force_kcore, brute_force_ktruss,
                               brute_force_nucleus)
from repro.graph.generators import (complete_graph, cycle_graph,
                                    figure1_graph, star_graph)


class TestKCore:
    def test_matches_networkx(self, community60):
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        expected = nx.core_number(nx_graph)
        cores = brute_force_kcore(community60)
        assert all(cores[v] == expected[v] for v in range(community60.n))

    def test_cycle_is_2core(self):
        assert set(brute_force_kcore(cycle_graph(9))) == {2}

    def test_star(self):
        cores = brute_force_kcore(star_graph(5))
        assert set(cores) == {1}

    def test_complete(self):
        assert set(brute_force_kcore(complete_graph(6))) == {5}


class TestKTruss:
    def test_matches_networkx_truss(self, community60):
        """k-truss(k) membership agrees with networkx's k_truss: an edge
        with triangle-core c belongs to the (c+2)-truss but not (c+3)."""
        cores = brute_force_ktruss(community60)
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        max_core = max(cores.values())
        for k in range(2, max_core + 3):
            member_edges = {tuple(sorted(e))
                            for e in nx.k_truss(nx_graph, k).edges()}
            expected = {e for e, c in cores.items() if c >= k - 2}
            assert member_edges == expected

    def test_complete_graph(self):
        cores = brute_force_ktruss(complete_graph(6))
        assert set(cores.values()) == {4}


class TestNucleus:
    def test_figure1_34(self):
        cores = brute_force_nucleus(figure1_graph(), 3, 4)
        assert cores[(2, 3, 6)] == 0  # cdg
        assert cores[(0, 1, 5)] == 1  # abf
        assert cores[(0, 1, 2)] == 2  # abc

    def test_invalid_rs(self):
        with pytest.raises(ValueError):
            brute_force_nucleus(figure1_graph(), 3, 2)

    def test_empty_result_when_no_r_cliques(self):
        assert brute_force_nucleus(cycle_graph(8), 3, 4) == {}
