"""Tests for the work-stealing scheduler simulator."""

import pytest

from repro.parallel.scheduler import (TaskGraph, parfor_graph,
                                      simulate_work_stealing)


class TestTaskGraph:
    def test_work_and_span(self):
        g = TaskGraph()
        root = g.add(2.0)
        a = g.spawn(root, 3.0)
        g.spawn(root, 5.0)
        g.spawn(a, 4.0)
        assert g.total_work == 14.0
        assert g.critical_path() == 2.0 + 3.0 + 4.0

    def test_spawn_validates_parent(self):
        g = TaskGraph()
        with pytest.raises(IndexError):
            g.spawn(0, 1.0)

    def test_parfor_graph_shape(self):
        g = parfor_graph(100, 2.0, fanout=4)
        leaves = [t for t in g.tasks if t.work == 2.0]
        assert len(leaves) == 100
        assert g.total_work == 200.0
        # Fanout tree keeps the span logarithmic in the task count.
        assert g.critical_path() <= 2.0 * 10

    def test_parfor_callable_work(self):
        g = parfor_graph(10, lambda i: float(i), fanout=4)
        assert g.total_work == sum(range(10))


class TestSimulation:
    def test_single_worker_executes_all_work(self):
        g = parfor_graph(50, 3.0)
        result = simulate_work_stealing(g, workers=1)
        assert result.makespan == pytest.approx(g.total_work)
        assert result.steals == 0

    def test_parallel_speedup(self):
        g = parfor_graph(256, 10.0)
        t1 = simulate_work_stealing(g, 1).makespan
        t8 = simulate_work_stealing(g, 8).makespan
        assert t1 / t8 > 5.0

    def test_brent_bound_holds(self):
        """makespan <= 2 * (W/P + S) + steal overhead, for several shapes."""
        for n, fanout, workers in [(100, 8, 4), (500, 4, 16), (64, 2, 8)]:
            g = parfor_graph(n, 5.0, fanout=fanout)
            result = simulate_work_stealing(g, workers, steal_cost=0.5)
            bound = g.total_work / workers + g.critical_path()
            assert result.makespan <= 3.0 * bound + 50.0

    def test_deterministic_given_seed(self):
        g = parfor_graph(64, 1.0)
        a = simulate_work_stealing(g, 4, seed=9)
        b = simulate_work_stealing(g, 4, seed=9)
        assert a.makespan == b.makespan
        assert a.steals == b.steals

    def test_parent_before_children(self):
        # A deep chain forces sequential execution regardless of workers.
        g = TaskGraph()
        node = g.add(1.0)
        for _ in range(30):
            node = g.spawn(node, 1.0)
        result = simulate_work_stealing(g, workers=8)
        assert result.makespan >= g.critical_path()

    def test_imbalanced_work_is_stolen(self):
        # One huge leaf + many small ones: stealing spreads the small ones.
        g = parfor_graph(65, lambda i: 1000.0 if i == 0 else 1.0)
        result = simulate_work_stealing(g, 4)
        # Serial time is 1064; with stealing, the small tasks overlap the
        # huge one, so the makespan stays near the huge task alone.
        assert result.makespan < 1030.0
        assert result.steals > 0

    def test_utilization_bounded(self):
        g = parfor_graph(128, 4.0)
        result = simulate_work_stealing(g, 8)
        assert 0.0 < result.utilization <= 1.0

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            simulate_work_stealing(TaskGraph(), 0)


class TestAgainstMachineModel:
    def test_brent_estimate_consistent_with_simulation(self):
        """The MachineModel's W/P + S estimate and the scheduler simulation
        agree within a small constant on a balanced parallel-for."""
        from repro.parallel.runtime import CostTracker, MachineModel
        n, per_task = 512, 20.0
        g = parfor_graph(n, per_task)
        sim = simulate_work_stealing(g, 16, steal_cost=0.2)
        tracker = CostTracker()
        tracker.add_work(g.total_work)
        tracker.add_span(g.critical_path())
        model = MachineModel(cores=16)
        predicted = model.time(tracker, 16)
        assert 0.3 * predicted <= sim.makespan <= 3.0 * predicted
