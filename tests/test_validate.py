"""Tests for the definitional nucleus validator (repro.core.validate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomp import arb_nucleus_decomp
from repro.core.validate import (NucleusValidationError,
                                 is_valid_nucleus_decomposition,
                                 validate_nucleus_decomposition)
from repro.graph.generators import erdos_renyi, figure1_graph


class TestAcceptsCorrect:
    @pytest.mark.parametrize("r,s", [(1, 2), (2, 3), (3, 4)])
    def test_arb_output_validates(self, r, s):
        graph = figure1_graph()
        cores = arb_nucleus_decomp(graph, r, s).as_dict()
        validate_nucleus_decomposition(graph, r, s, cores)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_random_graphs(self, seed):
        graph = erdos_renyi(18, 55, seed=seed)
        cores = arb_nucleus_decomp(graph, 2, 3).as_dict()
        assert is_valid_nucleus_decomposition(graph, 2, 3, cores)


class TestRejectsWrong:
    def _correct(self):
        graph = figure1_graph()
        return graph, arb_nucleus_decomp(graph, 3, 4).as_dict()

    def test_missing_clique_rejected(self):
        graph, cores = self._correct()
        del cores[(0, 1, 2)]
        with pytest.raises(NucleusValidationError, match="coverage"):
            validate_nucleus_decomposition(graph, 3, 4, cores)

    def test_phantom_clique_rejected(self):
        graph, cores = self._correct()
        cores[(4, 5, 6)] = 1  # efg is not a triangle
        with pytest.raises(NucleusValidationError, match="coverage"):
            validate_nucleus_decomposition(graph, 3, 4, cores)

    def test_overstated_core_rejected(self):
        graph, cores = self._correct()
        cores[(2, 3, 6)] = 2  # cdg actually has core 0
        with pytest.raises(NucleusValidationError, match="soundness"):
            validate_nucleus_decomposition(graph, 3, 4, cores)

    def test_understated_core_rejected(self):
        graph, cores = self._correct()
        cores[(0, 1, 2)] = 1  # abc actually has core 2
        with pytest.raises(NucleusValidationError, match="maximality"):
            validate_nucleus_decomposition(graph, 3, 4, cores)

    def test_boolean_wrapper(self):
        graph, cores = self._correct()
        assert is_valid_nucleus_decomposition(graph, 3, 4, cores)
        cores[(0, 1, 2)] = 0
        assert not is_valid_nucleus_decomposition(graph, 3, 4, cores)
