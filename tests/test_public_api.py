"""The public API surface: everything advertised must exist and work."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module", [
    "repro.core", "repro.cliques", "repro.bucketing", "repro.graph",
    "repro.parallel", "repro.machine", "repro.baselines",
    "repro.experiments", "repro.cli", "repro.sanitize",
])
def test_subpackages_import(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} lacks a module docstring"


@pytest.mark.parametrize("module", [
    "repro.core", "repro.cliques", "repro.bucketing", "repro.graph",
    "repro.parallel", "repro.baselines", "repro.sanitize",
])
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_readme_quickstart_works():
    """The README's quickstart snippet, verbatim."""
    from repro import load_dataset, arb_nucleus_decomp

    graph = load_dataset("dblp")
    result = arb_nucleus_decomp(graph, r=2, s=3)
    assert result.max_core > 0
    assert result.rho > 0
    cores = result.as_dict()
    assert len(cores) == graph.m


def test_public_functions_have_docstrings():
    import inspect
    undocumented = []
    for module_name in ("repro.core.decomp", "repro.core.tables",
                        "repro.core.aggregation", "repro.core.config",
                        "repro.core.validate", "repro.core.kcore",
                        "repro.core.ktruss", "repro.core.densest",
                        "repro.cliques.listing", "repro.cliques.orient",
                        "repro.cliques.approx", "repro.cliques.encode",
                        "repro.parallel.runtime", "repro.parallel.hashtable",
                        "repro.parallel.scheduler", "repro.parallel.sort",
                        "repro.parallel.connectivity",
                        "repro.parallel.unionfind",
                        "repro.bucketing.julienne", "repro.bucketing.fibheap",
                        "repro.bucketing.dense", "repro.machine.cache",
                        "repro.machine.setstore", "repro.graph.csr",
                        "repro.graph.generators", "repro.graph.stats",
                        "repro.analysis.nuclei", "repro.analysis.hierarchy",
                        "repro.analysis.serialize",
                        "repro.baselines.common", "repro.baselines.nd",
                        "repro.baselines.local", "repro.baselines.pkt",
                        "repro.sanitize.parlint", "repro.sanitize.racecheck",
                        "repro.experiments.harness",
                        "repro.experiments.sweeps"):
        mod = importlib.import_module(module_name)
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if obj.__module__ != module_name:
                    continue
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
    assert not undocumented, undocumented
