"""Tests for the three bucketing backends (Julienne, Fibonacci, dense)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bucketing import (BUCKETING_BACKENDS, DenseBucketing,
                             FibonacciBucketing, JulienneBucketing,
                             make_bucketing)
from repro.parallel.runtime import CostTracker

BACKENDS = list(BUCKETING_BACKENDS.values())


@pytest.mark.parametrize("backend", BACKENDS)
class TestBasics:
    def test_extracts_minimum_first(self, backend):
        b = backend([10, 20, 30], [5, 2, 9])
        value, ids = b.next_bucket()
        assert value == 2
        assert list(ids) == [20]

    def test_groups_equal_values(self, backend):
        b = backend([1, 2, 3, 4], [7, 3, 7, 3])
        value, ids = b.next_bucket()
        assert value == 3
        assert sorted(ids) == [2, 4]

    def test_drains_in_nondecreasing_order(self, backend):
        values = [4, 1, 3, 1, 9, 4, 0]
        b = backend(list(range(7)), values)
        seen = []
        while len(b):
            value, ids = b.next_bucket()
            seen.append(value)
        assert seen == sorted(set(values))

    def test_len_counts_remaining(self, backend):
        b = backend([0, 1, 2], [1, 1, 5])
        assert len(b) == 3
        b.next_bucket()
        assert len(b) == 1

    def test_empty_raises(self, backend):
        b = backend([0], [1])
        b.next_bucket()
        with pytest.raises(IndexError):
            b.next_bucket()

    def test_update_moves_to_lower_bucket(self, backend):
        b = backend([0, 1], [1, 10])
        b.next_bucket()  # peel id 0 at value 1
        b.update([1], [4])
        value, ids = b.next_bucket()
        assert value == 4
        assert list(ids) == [1]

    def test_update_clamps_to_peel_floor(self, backend):
        b = backend([0, 1], [5, 10])
        value, _ = b.next_bucket()
        assert value == 5
        b.update([1], [2])  # below the current peel level
        value, ids = b.next_bucket()
        assert value == 5  # clamped: core numbers never go backwards
        assert list(ids) == [1]

    def test_update_on_extracted_id_ignored(self, backend):
        b = backend([0, 1], [1, 3])
        b.next_bucket()
        b.update([0], [0])  # id 0 already peeled
        value, ids = b.next_bucket()
        assert value == 3 and list(ids) == [1]

    def test_value_of(self, backend):
        b = backend([7, 8], [2, 6])
        assert b.value_of(7) == 2
        b.update([8], [4])
        assert b.value_of(8) == 4

    def test_large_value_gap_skipped(self, backend):
        b = backend([0, 1], [0, 100000])
        assert b.next_bucket()[0] == 0
        assert b.next_bucket()[0] == 100000

    def test_tracker_charged(self, backend):
        tracker = CostTracker()
        b = backend([0, 1, 2], [3, 1, 2], tracker=tracker)
        b.next_bucket()
        assert tracker.work > 0


class TestJulienneSpecifics:
    def test_window_refills(self):
        b = JulienneBucketing(list(range(10)), [i * 50 for i in range(10)],
                              window=4)
        drained = []
        while len(b):
            drained.append(b.next_bucket()[0])
        assert drained == [i * 50 for i in range(10)]
        assert b.refills >= 2  # values span far beyond one window

    def test_stale_entries_filtered(self):
        b = JulienneBucketing([0, 1, 2], [2, 5, 5], window=16)
        b.next_bucket()
        b.update([1], [3])
        b.update([1], [2])  # moved twice: the first entry is now stale
        value, ids = b.next_bucket()
        assert value == 2 and list(ids) == [1]

    def test_update_below_window_base_raises(self):
        # Regression: a clamped value below the materialized window's base
        # used to index self._buckets with a *negative* offset, silently
        # appending to a top-of-window bucket and corrupting extraction
        # order.  The monotone peeling protocol cannot produce this state,
        # so it must fail loudly instead of mis-bucketing.
        b = JulienneBucketing([0, 1], [50, 60], window=4)  # base = 50
        assert b.base == 50
        with pytest.raises(ValueError, match="below the current window"):
            b.update([1], [10])
        # The structure was not corrupted: id 1 still drains at its
        # original value and nothing landed in a wrong bucket.
        value, ids = b.next_bucket()
        assert value == 50 and list(ids) == [0]
        value, ids = b.next_bucket()
        assert value == 60 and list(ids) == [1]

    def test_clamp_vs_refill_interaction(self):
        # After a refill jumps the window past a gap, updates clamped to
        # the pre-refill peel level must stay inside the new window: the
        # clamp floor (peel_floor) is raised to each extracted value, which
        # is always >= the refilled base.
        b = JulienneBucketing([0, 1, 2], [2, 100, 101], window=4)
        value, ids = b.next_bucket()           # peel_floor = 2
        assert value == 2 and list(ids) == [0]
        value, ids = b.next_bucket()           # refilled: base = 100
        assert value == 100 and list(ids) == [1]
        assert b.base == 100
        assert b.peel_floor == 100
        b.update([2], [5])  # decreases far below base; clamps to 100
        value, ids = b.next_bucket()
        assert value == 100 and list(ids) == [2]
        assert b.value_of(2) == 100


class TestDenseSpecifics:
    def test_doubling_search_charges_work(self):
        tracker = CostTracker()
        b = DenseBucketing([0, 1], [0, 4096], tracker=tracker)
        b.next_bucket()
        before = tracker.work
        b.next_bucket()  # long empty-range search
        assert tracker.work > before


class TestFibonacciSpecifics:
    def test_heap_consolidation_under_churn(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 30, size=100)
        b = FibonacciBucketing(list(range(100)), values)
        floor = 0
        drained = 0
        while len(b):
            value, ids = b.next_bucket()
            assert value >= floor
            floor = value
            drained += len(ids)
        assert drained == 100


def test_make_bucketing_by_name():
    b = make_bucketing("julienne", [0], [1])
    assert isinstance(b, JulienneBucketing)
    with pytest.raises(ValueError):
        make_bucketing("nope", [0], [1])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 40), min_size=1, max_size=40), st.data())
def test_backends_agree_under_peeling(values, data):
    """All three backends peel identically under the same update stream."""
    structures = [cls(list(range(len(values))), values) for cls in BACKENDS]
    reference: list[tuple[int, tuple]] = []
    while len(structures[0]):
        extractions = [s.next_bucket() for s in structures]
        value0, ids0 = extractions[0]
        for value, ids in extractions[1:]:
            assert value == value0
            assert sorted(ids) == sorted(ids0)
        # Random decrement of some still-alive ids.
        alive = [i for i in range(len(values)) if structures[0].alive[i]] \
            if hasattr(structures[0], "alive") else []
        if alive:
            chosen = data.draw(st.lists(st.sampled_from(alive), max_size=5,
                                        unique=True))
            if chosen:
                new_values = [max(0, structures[0].value_of(i) - 1)
                              for i in chosen]
                for s in structures:
                    s.update(chosen, new_values)
