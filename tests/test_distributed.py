"""Tests for the sharded execution model (repro.distributed).

The headline invariant: the distributed peel's output is bit-for-bit
identical to the single-node oracle on every graph/(r,s)/shard-count
combination, under both exchange engines.  The message-volume accounting
is pinned by closed-form unit tests (one exchange charges exactly the
sum of the per-shard batch sizes, with no double-charging), and the
scalar/batch exchange kernels must agree charge-for-charge on every
tracker.
"""

import numpy as np
import pytest

from repro.core.decomp import arb_nucleus_decomp
from repro.distributed import (ENTRY_BYTES, DistributedMachineModel,
                               PARTITIONERS, hash_partition,
                               mincut_partition, sharded_nucleus_decomp)
from repro.distributed.batchexchange import exchange_batch
from repro.distributed.peel import (ExchangeBuffer, UpdateLedger,
                                    _exchange_scalar)
from repro.graph.generators import (complete_graph, erdos_renyi,
                                    figure1_graph, planted_partition,
                                    rmat_graph)
from repro.graph.stats import estimated_clique_spill, partition_statistics
from repro.parallel.runtime import CostTracker, MachineModel
from repro.sanitize.racecheck import RaceDetector

# Static->dynamic coverage stamp for rule PAR011: the sharded driver's
# parallel regions (the per-shard local peel rounds) are driven under a
# live RaceDetector by TestShardedRaceCoverage below.  The exchange
# kernels open no parallel regions (the exchange is the serial barrier
# step between rounds), so the driver stamp covers the package.
RACECHECK_COVERS = [
    "repro.distributed.peel.sharded_nucleus_decomp",
]

#: The differential suite: (graph factory, r, s, shard count).  Two
#: partitioner choices and shard counts from 2 to 8, k-core through
#: (3,4) nuclei.
DIFFERENTIAL_SUITE = [
    ("figure1", lambda: figure1_graph(), 2, 3, 2, "hash"),
    ("community-kcore", lambda: planted_partition(120, 4, 0.3, 0.02,
                                                  seed=1), 1, 2, 4,
     "mincut"),
    ("community-truss", lambda: planted_partition(120, 4, 0.3, 0.02,
                                                  seed=2), 2, 3, 4,
     "mincut"),
    ("er-34", lambda: erdos_renyi(80, 400, seed=3), 3, 4, 3, "hash"),
    ("rmat-truss", lambda: rmat_graph(7, 8, seed=4), 2, 3, 8, "mincut"),
]


class TestDifferentialOracle:
    @pytest.mark.parametrize(
        "name,factory,r,s,shards,partitioner",
        DIFFERENTIAL_SUITE, ids=[row[0] for row in DIFFERENTIAL_SUITE])
    def test_bit_for_bit_vs_single_node(self, name, factory, r, s, shards,
                                        partitioner):
        graph = factory()
        reference = arb_nucleus_decomp(graph, r, s)
        for engine in ("scalar", "batch"):
            result = sharded_nucleus_decomp(graph, r, s, shards,
                                            partitioner=partitioner,
                                            exchange_engine=engine)
            assert np.array_equal(result._cells, reference._cells)
            assert np.array_equal(result._cores, reference._cores)
            assert result.as_dict() == reference.as_dict()
            assert result.rho == reference.rho
            assert result.max_core == reference.max_core
            assert result.n_r_cliques == reference.n_r_cliques
            assert result.n_s_cliques == reference.n_s_cliques

    def test_single_shard_has_no_comm(self):
        graph = planted_partition(80, 4, 0.3, 0.05, seed=5)
        result = sharded_nucleus_decomp(graph, 2, 3, 1)
        assert result.comm_messages == 0
        assert result.comm_bytes == 0
        assert result.as_dict() == arb_nucleus_decomp(graph, 2, 3).as_dict()

    def test_forces_representative_arithmetic(self):
        result = sharded_nucleus_decomp(figure1_graph(), 2, 3, 2)
        assert result.config.update_arithmetic == "representative"
        assert result.config.contraction is False

    def test_empty_table_early_return(self):
        result = sharded_nucleus_decomp(complete_graph(2), 3, 4, 2)
        assert result.n_r_cliques == 0
        assert result.rho == 0
        assert result.as_dict() == {}

    def test_round_log_matches_oracle(self):
        graph = planted_partition(100, 4, 0.3, 0.03, seed=6)
        reference = arb_nucleus_decomp(graph, 2, 3)
        result = sharded_nucleus_decomp(graph, 2, 3, 4)
        assert [(level, peeled) for level, peeled, _ in result.round_log] \
            == [(level, peeled) for level, peeled, _ in reference.round_log]


class TestExchangeParity:
    def test_scalar_and_batch_agree_on_every_tracker(self):
        graph = planted_partition(120, 4, 0.3, 0.02, seed=1)
        scalar = sharded_nucleus_decomp(graph, 2, 3, 4,
                                        exchange_engine="scalar")
        batch = sharded_nucleus_decomp(graph, 2, 3, 4,
                                       exchange_engine="batch")
        assert scalar.tracker.summary() == batch.tracker.summary()
        for st_scalar, st_batch in zip(scalar.shard_trackers,
                                       batch.shard_trackers):
            assert st_scalar.summary() == st_batch.summary()
        assert scalar.exchange_log == batch.exchange_log
        assert scalar.round_compute == batch.round_compute
        assert scalar.comm_messages == batch.comm_messages
        assert scalar.comm_bytes == batch.comm_bytes
        assert np.array_equal(scalar._cores, batch._cores)


def _exchange_fixture():
    """Owner map and a drained outbox with two destination shards."""
    owner_of = np.array([0, 1, 1, 2, 1, 1, 0, 1, 0, 2], dtype=np.int64)
    ledger = UpdateLedger(np.full(10, 8.0))
    ledger.begin_round(0)
    cells = np.array([9, 5, 7], dtype=np.int64)  # dsts 2, 1, 1
    deltas = np.array([1, 2, 1], dtype=np.int64)
    trackers = [CostTracker() for _ in range(3)]
    return owner_of, ledger, cells, deltas, trackers


class TestExchangeAccounting:
    """Closed-form charges: one exchange = sum of per-shard batch sizes."""

    @pytest.mark.parametrize("kernel", [_exchange_scalar, exchange_batch],
                             ids=["scalar", "batch"])
    def test_closed_form_messages_and_bytes(self, kernel):
        owner_of, ledger, cells, deltas, trackers = _exchange_fixture()
        sender = trackers[0]
        messages, n_bytes = kernel(cells, deltas, owner_of, ledger,
                                   trackers, sender)
        # Two destination groups: shard 1 gets cells {5, 7}, shard 2
        # gets cell {9}; three entries total.
        assert messages == 2
        assert n_bytes == 3 * ENTRY_BYTES
        assert sender.total.comm_messages == 2
        assert sender.total.comm_bytes == 3 * ENTRY_BYTES
        # No double-charging: receivers pay apply work, never comm.
        assert trackers[1].total.comm_messages == 0
        assert trackers[2].total.comm_messages == 0
        assert trackers[1].total.comm_bytes == 0
        # Receiver-side apply: one work unit + one atomic per entry.
        assert trackers[1].total.atomic_ops == 2
        assert trackers[2].total.atomic_ops == 1
        # Deltas landed at the owned cells; updated set in (dst, cell)
        # order.
        assert ledger.counts[5] == 6.0
        assert ledger.counts[7] == 7.0
        assert ledger.counts[9] == 7.0
        assert ledger.updated == [5, 7, 9]

    def test_total_volume_is_sum_of_batch_sizes(self):
        # Three shards each flush an outbox; global comm equals the sum
        # of the individual batch sizes (no entry is charged twice).
        owner_of = np.arange(12, dtype=np.int64) % 3
        ledger = UpdateLedger(np.full(12, 5.0))
        ledger.begin_round(0)
        trackers = [CostTracker() for _ in range(3)]
        sizes = []
        for src, remote_cells in enumerate(([4, 5], [0, 6, 8], [1])):
            cells = np.asarray(remote_cells, dtype=np.int64)
            deltas = np.ones(cells.size, dtype=np.int64)
            _exchange_scalar(cells, deltas, owner_of, ledger, trackers,
                             trackers[src])
            sizes.append(cells.size)
        total_bytes = sum(t.total.comm_bytes for t in trackers)
        assert total_bytes == sum(sizes) * ENTRY_BYTES

    def test_empty_outbox_charges_nothing(self):
        owner_of, ledger, _, _, trackers = _exchange_fixture()
        empty = np.zeros(0, dtype=np.int64)
        for kernel in (_exchange_scalar, exchange_batch):
            assert kernel(empty, empty, owner_of, ledger, trackers,
                          trackers[0]) == (0, 0)
        assert trackers[0].total.comm_messages == 0

    def test_kernels_agree_on_fixture(self):
        results = []
        for kernel in (_exchange_scalar, exchange_batch):
            owner_of, ledger, cells, deltas, trackers = _exchange_fixture()
            out = kernel(cells, deltas, owner_of, ledger, trackers,
                         trackers[0])
            results.append((out, [t.summary() for t in trackers],
                            list(ledger.counts), ledger.updated))
        assert results[0] == results[1]


class TestLedgerAndOutbox:
    def test_ledger_dedupes_within_round_only(self):
        ledger = UpdateLedger(np.full(4, 3.0))
        tracker = CostTracker()
        ledger.begin_round(0)
        ledger.fetch_sub(2, 1, tracker)
        ledger.fetch_sub(2, 1, tracker)
        assert ledger.updated == [2]
        assert ledger.counts[2] == 1.0
        ledger.begin_round(1)
        ledger.fetch_sub(2, 1, tracker)
        assert ledger.updated == [2]  # re-enters U in the new round
        assert tracker.total.atomic_ops == 3

    def test_outbox_coalesces_and_drains(self):
        outbox = ExchangeBuffer(6)
        tracker = CostTracker()
        outbox.begin_round(0)
        outbox.buffer_remote(3, tracker)
        outbox.buffer_remote(3, tracker)
        outbox.buffer_remote(1, tracker)
        cells, deltas = outbox.drain()
        assert list(cells) == [3, 1]  # first-touch order
        assert list(deltas) == [2, 1]
        cells, deltas = outbox.drain()
        assert cells.size == 0 and deltas.size == 0
        assert np.all(outbox.pending == 0)


class TestPartitioners:
    def test_hash_partition_deterministic_and_in_range(self):
        graph = erdos_renyi(200, 800, seed=7)
        first = hash_partition(graph, 5)
        second = hash_partition(graph, 5)
        assert np.array_equal(first.shard_of, second.shard_of)
        assert first.shard_of.min() >= 0
        assert first.shard_of.max() < 5
        assert first.shard_sizes().sum() == graph.n

    def test_mincut_deterministic(self):
        graph = planted_partition(150, 5, 0.3, 0.02, seed=8)
        first = mincut_partition(graph, 5)
        second = mincut_partition(graph, 5)
        assert np.array_equal(first.shard_of, second.shard_of)

    def test_mincut_respects_balance_cap(self):
        graph = planted_partition(150, 3, 0.4, 0.02, seed=9)
        partition = mincut_partition(graph, 3, slack=1.1)
        cap = int(np.ceil(graph.n / 3 * 1.1))
        assert partition.shard_sizes().max() <= cap

    def test_mincut_cuts_fewer_edges_than_hash(self):
        graph = planted_partition(200, 4, 0.3, 0.01, seed=10)
        edges = graph.edges()

        def edge_cut(partition):
            shard_of = partition.shard_of
            return int((shard_of[edges[:, 0]]
                        != shard_of[edges[:, 1]]).sum())

        assert edge_cut(mincut_partition(graph, 4)) \
            < edge_cut(hash_partition(graph, 4))

    def test_registry_names(self):
        assert set(PARTITIONERS) == {"hash", "mincut"}

    def test_mincut_reduces_comm_volume(self):
        graph = planted_partition(120, 4, 0.3, 0.02, seed=1)
        hash_run = sharded_nucleus_decomp(graph, 2, 3, 4,
                                          partitioner="hash")
        mincut_run = sharded_nucleus_decomp(graph, 2, 3, 4,
                                            partitioner="mincut")
        assert mincut_run.comm_bytes < hash_run.comm_bytes


class TestPartitionStatistics:
    def test_hand_computed_split(self):
        graph = complete_graph(4)  # 6 edges, 4 triangles
        shard_of = np.array([0, 0, 1, 1])
        stats = partition_statistics(graph, shard_of, 2, s=3)
        assert stats["shard_sizes"] == [2, 2]
        assert stats["imbalance"] == 1.0
        assert stats["edge_cut"] == 4  # all but {0,1} and {2,3}
        assert stats["cut_fraction"] == pytest.approx(4 / 6)
        # Neither half contains a full triangle.
        assert stats["triangle_spill"] == 4
        assert stats["triangle_spill_fraction"] == 1.0
        assert stats["s_clique_spill_estimate"] == pytest.approx(
            estimated_clique_spill(4 / 6, 3))

    def test_spill_estimate_closed_form(self):
        assert estimated_clique_spill(0.0, 4) == 0.0
        assert estimated_clique_spill(0.5, 2) == pytest.approx(0.5)
        assert estimated_clique_spill(0.25, 3) == pytest.approx(
            1.0 - 0.75 ** 3)


class TestCommCostModel:
    def test_comm_cost_closed_form(self):
        machine = MachineModel(comm_latency=100.0, comm_byte_time=2.0)
        assert machine.comm_cost(3, 50) == 3 * 100.0 + 50 * 2.0

    def test_tracker_comm_counters_feed_time(self):
        machine = MachineModel()
        tracker = CostTracker()
        idle = machine.time(tracker, 4)
        tracker.add_comm(2, 24)
        assert machine.time(tracker, 4) == pytest.approx(
            idle + machine.comm_cost(2, 24))
        breakdown = machine.time_breakdown(tracker, 4)
        assert breakdown["total"]["comm"] == machine.comm_cost(2, 24)

    def test_single_node_comm_term_is_zero(self):
        graph = figure1_graph()
        tracker = CostTracker()
        arb_nucleus_decomp(graph, 2, 3, tracker=tracker)
        assert tracker.total.comm_messages == 0
        assert tracker.total.comm_bytes == 0
        machine = MachineModel()
        assert machine.time_breakdown(tracker, 60)["total"]["comm"] == 0.0

    def test_distributed_model_composition(self):
        graph = planted_partition(120, 4, 0.3, 0.02, seed=1)
        result = sharded_nucleus_decomp(graph, 2, 3, 4)
        machine = DistributedMachineModel(MachineModel())
        breakdown = machine.time_breakdown(result, 60)
        base = machine.base
        p = base.effective_parallelism(60)
        compute = sum(
            max(work / p + base.span_factor * span
                for work, span in per_shard)
            for per_shard in result.round_compute)
        comm = base.comm_cost(result.comm_messages, result.comm_bytes)
        assert breakdown["compute"] == pytest.approx(compute)
        assert breakdown["comm"] == pytest.approx(comm)
        assert breakdown["time"] == pytest.approx(
            base.time(result.tracker, 60) + compute + comm)
        assert machine.time(result, 60) == breakdown["time"]

    def test_round_times_align_with_exchange_log(self):
        graph = planted_partition(100, 4, 0.3, 0.03, seed=2)
        result = sharded_nucleus_decomp(graph, 1, 2, 4)
        machine = DistributedMachineModel()
        rows = machine.round_times(result, 60)
        assert len(rows) == result.rho
        for row, record in zip(rows, result.exchange_log):
            assert row["round"] == record["round"]
            assert row["comm"] == machine.comm_time(record["messages"],
                                                    record["bytes"])


class TestShardedRaceCoverage:
    def test_sharded_peel_runs_clean_under_race_detector(self):
        graph = planted_partition(80, 4, 0.3, 0.05, seed=11)
        tracker = CostTracker()
        detector = RaceDetector()
        tracker.race_detector = detector
        result = sharded_nucleus_decomp(graph, 2, 3, 3, tracker=tracker)
        assert detector.settle(strict=False) == []
        assert detector.stats.tasks > 0
        assert result.as_dict() == arb_nucleus_decomp(graph, 2, 3).as_dict()

    def test_shard_trackers_share_the_detector(self):
        tracker = CostTracker()
        tracker.race_detector = RaceDetector()
        result = sharded_nucleus_decomp(figure1_graph(), 2, 3, 2,
                                        tracker=tracker)
        for st in result.shard_trackers:
            assert st.race_detector is tracker.race_detector
