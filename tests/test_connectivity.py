"""Tests for parallel connected components (Shiloach--Vishkin style)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hierarchy import build_hierarchy
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import erdos_renyi, planted_partition
from repro.parallel.connectivity import (components_of_sets,
                                         connected_components)
from repro.parallel.runtime import CostTracker


class TestConnectedComponents:
    def test_path(self):
        labels = connected_components(4, [(0, 1), (1, 2), (2, 3)])
        assert len(set(labels)) == 1

    def test_two_components(self):
        labels = connected_components(5, [(0, 1), (2, 3)])
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_no_edges(self):
        labels = connected_components(4, np.zeros((0, 2), dtype=np.int64))
        assert list(labels) == [0, 1, 2, 3]

    def test_labels_are_component_minimums(self):
        labels = connected_components(6, [(5, 3), (3, 4)])
        assert labels[5] == labels[3] == labels[4] == 3

    def test_matches_networkx(self):
        g = erdos_renyi(150, 160, seed=6)  # sparse: many components
        labels = connected_components(g.n, g.edges())
        nx_graph = nx.Graph(list(map(tuple, g.edges())))
        nx_graph.add_nodes_from(range(g.n))
        for comp in nx.connected_components(nx_graph):
            comp_labels = {int(labels[v]) for v in comp}
            assert len(comp_labels) == 1

    def test_logarithmic_rounds(self):
        # A long path is the adversarial case for hook-and-compress.
        n = 1024
        tracker = CostTracker()
        connected_components(n, [(i, i + 1) for i in range(n - 1)], tracker)
        assert tracker.rounds <= 4 * int(np.log2(n)) + 4

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_property_matches_networkx(self, seed):
        g = erdos_renyi(40, 45, seed=seed)
        labels = connected_components(g.n, g.edges())
        nx_graph = nx.Graph(list(map(tuple, g.edges())))
        nx_graph.add_nodes_from(range(g.n))
        assert len(set(labels.tolist())) == \
            nx.number_connected_components(nx_graph)


class TestComponentsOfSets:
    def test_groups_connect_members(self):
        labels = components_of_sets(6, [[0, 1, 2], [2, 3], [4, 5]])
        assert labels[0] == labels[3]
        assert labels[4] == labels[5]
        assert labels[0] != labels[4]

    def test_empty_groups(self):
        labels = components_of_sets(3, [])
        assert list(labels) == [0, 1, 2]

    def test_construction_charge_is_sum_of_group_sizes(self):
        # Building the star edge list scans every group member once; the
        # rest of the work is exactly connected_components on the stars.
        groups = [[0, 1, 2], [2, 3], [4, 5]]
        stars = [(0, 1), (0, 2), (2, 3), (4, 5)]
        grouped, direct = CostTracker(), CostTracker()
        components_of_sets(6, groups, grouped)
        connected_components(6, stars, direct)
        assert grouped.work == direct.work + sum(len(g) for g in groups)

    def test_singleton_groups_charge(self):
        # No star edges: the scan (2 members) plus the n_items labeling.
        tracker = CostTracker()
        components_of_sets(3, [[0], [1]], tracker)
        assert tracker.work == 5.0


class TestHierarchyBackendsAgree:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_nuclei(self, seed):
        graph = planted_partition(40, 4, 0.5, 0.02, seed=seed)
        result = arb_nucleus_decomp(graph, 2, 3)
        serial = build_hierarchy(graph, result, method="union_find")
        parallel = build_hierarchy(graph, result,
                                   method="shiloach_vishkin")
        key = lambda h: sorted((n.level, n.members) for n in h.nuclei)
        assert key(serial) == key(parallel)

    def test_method_validated(self):
        graph = planted_partition(20, 2, 0.5, 0.02, seed=1)
        result = arb_nucleus_decomp(graph, 2, 3)
        with pytest.raises(ValueError):
            build_hierarchy(graph, result, method="magic")