"""Tests for the cost-accounting lint rules (repro.sanitize.parlint)."""

import json
from pathlib import Path

from repro.sanitize.parlint import (RULES, lint_file, lint_paths, lint_source,
                                    main, report_json)

FIXTURES = Path(__file__).parent / "fixtures" / "parlint"


def rules_of(findings):
    return sorted(finding.rule for finding in findings)


class TestFixtures:
    def test_each_rule_has_a_fixture(self):
        for rule in RULES:
            fixture = FIXTURES / f"bad_{rule.lower()}.py"
            findings = lint_file(fixture)
            assert rules_of(findings) == [rule], fixture

    def test_clean_fixture_passes(self):
        assert lint_file(FIXTURES / "clean.py") == []

    def test_suppressions_silence_findings(self):
        assert lint_file(FIXTURES / "suppressed.py") == []

    def test_findings_carry_location(self):
        (finding,) = lint_file(FIXTURES / "bad_par002.py")
        assert finding.line == 6
        assert finding.path.endswith("bad_par002.py")
        assert "bad_par002.py:6:" in finding.render()


class TestRules:
    def test_par001_charged_region_passes(self):
        source = (
            "def f(tracker, items):\n"
            "    with tracker.parallel(len(items)) as region:\n"
            "        for item in items:\n"
            "            with region.task():\n"
            "                tracker.add_work(1.0)\n"
        )
        assert lint_source(source) == []

    def test_par002_charge_in_body_passes(self):
        source = (
            "def f(graph, tracker):\n"
            "    for v in range(graph.n):\n"
            "        tracker.add_work(1.0)\n"
        )
        assert lint_source(source) == []

    def test_par002_aggregate_charge_beside_loop_passes(self):
        # The listing/contraction pattern: one O(n) charge next to the loop.
        source = (
            "def f(graph, tracker):\n"
            "    for v in range(graph.n):\n"
            "        visit(v)\n"
            "    tracker.add_work(float(graph.n))\n"
        )
        assert lint_source(source) == []

    def test_par002_untracked_utility_exempt(self):
        source = (
            "def degrees(graph):\n"
            "    return [len(graph.neighbors(v)) for v in range(graph.n)]\n"
            "def walk(graph):\n"
            "    for v in range(graph.n):\n"
            "        yield v\n"
        )
        assert lint_source(source) == []

    def test_par002_tracker_passing_call_counts_as_charge(self):
        source = (
            "def f(graph, tracker):\n"
            "    for v in range(graph.n):\n"
            "        intersect_sorted(a, b, tracker=tracker)\n"
        )
        assert lint_source(source) == []

    def test_par003_local_array_exempt(self):
        source = (
            "def f(tracker, items):\n"
            "    with tracker.parallel(len(items)) as region:\n"
            "        for i in items:\n"
            "            with region.task():\n"
            "                tracker.add_work(1.0)\n"
            "                scratch = [0] * 4\n"
            "                scratch[0] = i\n"
        )
        assert lint_source(source) == []

    def test_par004_settled_meter_passes(self):
        source = (
            "def f(tracker):\n"
            "    meter = ContentionMeter()\n"
            "    meter.settle(tracker)\n"
        )
        assert lint_source(source) == []

    def test_par004_escaping_meter_passes(self):
        source = (
            "def f(tracker):\n"
            "    meter = ContentionMeter()\n"
            "    return meter\n"
        )
        assert lint_source(source) == []

    def test_par004_meter_passed_to_callee_passes(self):
        source = (
            "def f(tracker, capacity):\n"
            "    meter = ContentionMeter()\n"
            "    return make_aggregator('array', capacity, meter=meter)\n"
        )
        assert lint_source(source) == []


class TestRepoIsClean:
    def test_src_tree_lints_clean(self):
        src = Path(__file__).parent.parent / "src" / "repro"
        findings, n_files = lint_paths([src])
        assert findings == []
        assert n_files > 50


class TestReporting:
    def test_json_report_shape(self):
        findings, n_files = lint_paths([FIXTURES / "bad_par001.py"])
        report = json.loads(report_json(findings, n_files))
        assert report["tool"] == "parlint"
        assert report["checked_files"] == 1
        assert report["rules"] == RULES
        (entry,) = report["findings"]
        assert entry["rule"] == "PAR001"
        assert entry["line"] > 0

    def test_main_exit_codes(self, capsys):
        assert main([str(FIXTURES / "clean.py")]) == 0
        assert main([str(FIXTURES / "bad_par003.py")]) == 1
        out = capsys.readouterr().out
        assert "PAR003" in out

    def test_main_json_flag(self, capsys):
        assert main(["--json", str(FIXTURES / "bad_par004.py")]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["findings"][0]["rule"] == "PAR004"

    def test_missing_file_is_a_finding_not_a_crash(self):
        (finding,) = lint_file("/nonexistent/parlint-probe.py")
        assert finding.rule == "IOERR"

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        (finding,) = lint_file(bad)
        assert finding.rule == "SYNTAX"
        assert finding.line == 1

    def test_directory_discovery(self):
        findings, n_files = lint_paths([FIXTURES])
        assert n_files == len(list(FIXTURES.glob("*.py")))
        assert rules_of(findings) == ["PAR001", "PAR002", "PAR003", "PAR004"]


class TestScaleDetection:
    def test_par002_len_bound_detected(self):
        source = (
            "def f(items, tracker):\n"
            "    for i in range(len(items)):\n"
            "        visit(i)\n"
        )
        assert rules_of(lint_source(source)) == ["PAR002"]

    def test_par002_num_attr_bound_detected(self):
        source = (
            "def f(table, tracker):\n"
            "    for i in range(table.num_cells):\n"
            "        visit(i)\n"
        )
        assert rules_of(lint_source(source)) == ["PAR002"]

    def test_par002_fixed_bound_exempt(self):
        source = (
            "def f(tracker):\n"
            "    for i in range(8):\n"
            "        visit(i)\n"
        )
        assert lint_source(source) == []

    def test_par002_ancestor_block_aggregate_charge_passes(self):
        # The charge may sit in a sibling branch of an enclosing block
        # (the contraction pattern: a guarded aggregate charge beside a
        # guarded loop).
        source = (
            "def f(self, graph):\n"
            "    if self.tracker is not None:\n"
            "        self.tracker.add_work(float(graph.n))\n"
            "    if graph.n:\n"
            "        for v in range(graph.n):\n"
            "            visit(v)\n"
        )
        assert lint_source(source) == []


class TestSuppressionHygiene:
    def test_file_level_disable_silences_every_instance(self):
        source = (
            "# parlint: disable-file=PAR002\n"
            "def f(graph, tracker):\n"
            "    for v in range(graph.n):\n"
            "        visit(v)\n"
            "    for w in range(graph.m):\n"
            "        visit(w)\n"
        )
        assert lint_source(source) == []

    def test_unused_line_suppression_is_reported(self):
        source = (
            "def f(graph, tracker):\n"
            "    for v in range(graph.n):  # parlint: disable=PAR002\n"
            "        tracker.add_work(1.0)\n"
        )
        (finding,) = lint_source(source)
        assert finding.rule == "UNUSED-SUPPRESSION"
        assert finding.line == 2

    def test_unused_file_suppression_is_reported(self):
        source = (
            "# parlint: disable-file=PAR001\n"
            "def f():\n"
            "    return 1\n"
        )
        (finding,) = lint_source(source)
        assert finding.rule == "UNUSED-SUPPRESSION"
        assert finding.line == 1

    def test_unused_reporting_can_be_disabled(self):
        source = (
            "# parlint: disable-file=PAR001\n"
            "def f():\n"
            "    return 1\n"
        )
        assert lint_source(source, report_unused=False) == []
