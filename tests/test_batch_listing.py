"""Differential tests: the batch listing engine vs the scalar recursion.

The frontier engine's contract (docs/cost-model.md) mirrors the batch
peeling engine's: for any graph, ``listing_engine="batch"`` must discover
the same cliques in the same order and charge bit-for-bit identical
simulated costs --- work (both bins), span, rounds, atomics, contention,
table probes, cliques, and cache misses --- as the scalar oracle, whether
it runs standalone, inside the count phase, or inside the batch peeling
engine's UPDATE path.
"""

import numpy as np
import pytest

import repro.core.batchpeel as batchpeel
from repro.cliques.batchlist import batch_list_cliques, expand_cliques
from repro.cliques.counting import (edge_support, per_vertex_clique_counts,
                                    total_clique_count)
from repro.cliques.listing import collect_cliques, count_cliques
from repro.cliques.orient import orient
from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import complete_graph, erdos_renyi
from repro.machine.cache import CacheSimulator
from repro.parallel.runtime import CostTracker
from repro.sanitize.racecheck import RaceDetector

RS_PAIRS = [(1, 2), (2, 3), (2, 4), (3, 4)]
ORIENTATIONS = ["goodrich_pszona", "degeneracy"]


def _metrics(tracker: CostTracker) -> dict:
    totals = tracker.total
    out = {
        "work_int": totals.work_int, "work_frac": totals.work_frac,
        "span": tracker.span, "rounds": totals.rounds,
        "atomic": totals.atomic_ops, "contention": totals.contention,
        "probes": totals.table_probes, "cliques": totals.cliques_enumerated,
    }
    if tracker.cache is not None:
        out["cache_accesses"] = tracker.cache.accesses
        out["cache_misses"] = tracker.cache.misses
    return out


# -- kernel level: listing one oriented graph --------------------------------

class TestListingKernelParity:
    @pytest.mark.parametrize("c", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("method", ORIENTATIONS)
    def test_counts_and_charges(self, community60, c, method):
        dg, _ = orient(community60, method)
        t_scalar, t_batch = CostTracker(), CostTracker()
        n_scalar = count_cliques(dg, c, t_scalar)
        n_batch = batch_list_cliques(dg, c, t_batch)
        assert n_scalar == n_batch
        assert _metrics(t_scalar) == _metrics(t_batch)

    @pytest.mark.parametrize("c", [2, 3, 4])
    @pytest.mark.parametrize("method", ORIENTATIONS)
    def test_discovery_order(self, sparse100, c, method):
        """Block emission preserves the scalar DFS discovery order
        row for row, and the buffer-backed collector charges alike."""
        dg, _ = orient(sparse100, method)
        t_scalar, t_batch = CostTracker(), CostTracker()
        rows_scalar = collect_cliques(dg, c, t_scalar)
        rows_batch = collect_cliques(dg, c, t_batch, engine="batch")
        assert rows_scalar.shape == rows_batch.shape
        assert np.array_equal(rows_scalar, rows_batch)
        assert _metrics(t_scalar) == _metrics(t_batch)

    def test_collect_growth_charges_match(self):
        """More cliques than the initial buffer capacity: both paths pay
        the same amortized-doubling copy charges."""
        graph = complete_graph(14)  # C(14,3) = 364 > the 256-row buffer
        dg, _ = orient(graph)
        t_scalar, t_batch = CostTracker(), CostTracker()
        rows_scalar = collect_cliques(dg, 3, t_scalar)
        rows_batch = collect_cliques(dg, 3, t_batch, engine="batch")
        assert rows_scalar.shape[0] == 364
        assert np.array_equal(rows_scalar, rows_batch)
        assert _metrics(t_scalar) == _metrics(t_batch)
        # The growth copies are real work on top of the bare listing.
        t_bare = CostTracker()
        count_cliques(dg, 3, t_bare)
        assert t_scalar.total.work_int > t_bare.total.work_int

    def test_empty_result_keeps_width(self, star9):
        """A star has no triangles; the frontier drains before the
        emission level but the result keeps the full clique width."""
        dg, _ = orient(star9)
        blocks = []
        n = batch_list_cliques(dg, 3, sink=blocks.append)
        assert n == 0
        assert all(b.shape[1] == 3 for b in blocks)

    def test_expand_cliques_levels_zero(self, fig1):
        dg, _ = orient(fig1)
        bases = np.array([[0, 1], [2, 3]], dtype=np.int64)
        tracker = CostTracker()
        rows, base_of = expand_cliques(
            dg, bases, np.empty(0, dtype=np.int64),
            np.zeros(2, dtype=np.int64), 0, tracker)
        assert np.array_equal(rows, bases)
        assert np.array_equal(base_of, [0, 1])
        assert tracker.total.cliques_enumerated == 2


# -- counting conveniences ---------------------------------------------------

class TestCountingParity:
    @pytest.mark.parametrize("c", [3, 4])
    def test_total_clique_count(self, community60, c):
        t_scalar, t_batch = CostTracker(), CostTracker()
        n_scalar = total_clique_count(community60, c, tracker=t_scalar)
        n_batch = total_clique_count(community60, c, tracker=t_batch,
                                     engine="batch")
        assert n_scalar == n_batch
        assert _metrics(t_scalar) == _metrics(t_batch)

    @pytest.mark.parametrize("c", [3, 4])
    def test_per_vertex_counts(self, community60, c):
        t_scalar, t_batch = CostTracker(), CostTracker()
        scalar = per_vertex_clique_counts(community60, c, tracker=t_scalar)
        batch = per_vertex_clique_counts(community60, c, tracker=t_batch,
                                         engine="batch")
        assert np.array_equal(scalar, batch)
        assert _metrics(t_scalar) == _metrics(t_batch)

    def test_per_vertex_bump_charged(self, community60):
        """Satellite: each discovered clique increments c per-vertex
        counters --- exactly c extra work per clique over a bare count."""
        c = 3
        t_count, t_vertex = CostTracker(), CostTracker()
        n = total_clique_count(community60, c, tracker=t_count)
        per_vertex_clique_counts(community60, c, tracker=t_vertex)
        assert t_vertex.total.work_int - t_count.total.work_int == c * n

    def test_edge_support_values(self, fig1):
        """The vectorized edge_support reproduces the triangle-per-edge
        map (cross-checked against total triangle counts)."""
        support = edge_support(fig1)
        assert set(support) == {(int(u), int(v)) for u, v in fig1.edges()}
        n_triangles = total_clique_count(fig1, 3)
        assert sum(support.values()) == 3 * n_triangles

    def test_edge_support_charges_pinned(self, fig1):
        """Satellite regression: dict build (one per edge), one
        min+1 intersection per directed edge, three increments per
        triangle --- nothing more, nothing less."""
        dg, _ = orient(fig1)
        tracker = CostTracker()
        support = edge_support(fig1, tracker=tracker, dg=dg)
        degs = dg.out_degrees
        expected = fig1.m
        for u in range(dg.n):
            for v in dg.out_neighbors(u):
                expected += min(degs[u], degs[int(v)]) + 1
        expected += sum(support.values())  # 3 per triangle
        assert tracker.total.work_int == expected
        assert tracker.total.work_frac == 0.0


# -- end to end through the decomposition ------------------------------------

def _run_decomp(graph, r, s, engine, listing_engine, orientation,
                relabel, cache=False, detector=False):
    config = NucleusConfig(**{
        **NucleusConfig.optimal(r, s).__dict__,
        "engine": engine, "listing_engine": listing_engine,
        "orientation": orientation, "relabel": relabel,
        "contraction": False})
    tracker = CostTracker()
    if cache:
        tracker.cache = CacheSimulator(sample=1)
    if detector:
        tracker.race_detector = RaceDetector()
    result = arb_nucleus_decomp(graph, r, s, config, tracker)
    return result, _metrics(tracker)


def assert_listing_engines_agree(graph, r, s, orientation, relabel,
                                 engine="scalar", cache=False):
    scalar, m_scalar = _run_decomp(graph, r, s, engine, "scalar",
                                   orientation, relabel, cache)
    batch, m_batch = _run_decomp(graph, r, s, engine, "batch",
                                 orientation, relabel, cache)
    assert m_scalar == m_batch
    assert scalar.n_r_cliques == batch.n_r_cliques
    assert scalar.n_s_cliques == batch.n_s_cliques
    assert scalar.rho == batch.rho
    assert scalar.round_log == batch.round_log
    assert np.array_equal(scalar._cells, batch._cells)
    assert np.array_equal(scalar._cores, batch._cores)


class TestDecompListingParity:
    @pytest.mark.parametrize("rs", RS_PAIRS)
    @pytest.mark.parametrize("orientation", ORIENTATIONS)
    @pytest.mark.parametrize("relabel", [True, False])
    def test_scalar_peel(self, sparse100, rs, orientation, relabel):
        r, s = rs
        assert_listing_engines_agree(sparse100, r, s, orientation, relabel)

    @pytest.mark.parametrize("rs", RS_PAIRS)
    @pytest.mark.parametrize("relabel", [True, False])
    def test_batch_peel(self, community60, rs, relabel):
        """engine="batch" + listing_engine="batch": the UPDATE path also
        runs through the frontier engine."""
        r, s = rs
        assert_listing_engines_agree(community60, r, s, "goodrich_pszona",
                                     relabel, engine="batch")

    @pytest.mark.parametrize("rs", [(2, 3), (2, 4), (3, 4)])
    def test_cache_stream_parity(self, rs):
        """The order-sensitive cache simulator sees the identical address
        stream from both listing engines."""
        graph = erdos_renyi(50, 220, seed=11)
        r, s = rs
        for engine in ("scalar", "batch"):
            assert_listing_engines_agree(graph, r, s, "goodrich_pszona",
                                         False, engine=engine, cache=True)

    def test_all_batch_vs_all_scalar(self, community60):
        """Fully batched run reproduces the fully scalar run exactly."""
        scalar, m_scalar = _run_decomp(community60, 2, 4, "scalar",
                                       "scalar", "goodrich_pszona", True,
                                       cache=True)
        batch, m_batch = _run_decomp(community60, 2, 4, "batch", "batch",
                                     "goodrich_pszona", True, cache=True)
        assert m_scalar == m_batch
        assert scalar.round_log == batch.round_log
        assert np.array_equal(scalar._cores, batch._cores)


class TestListingEngineSelection:
    def test_unknown_listing_engine_rejected(self, fig1):
        with pytest.raises(ValueError, match="unknown listing_engine"):
            arb_nucleus_decomp(fig1, 2, 3,
                               NucleusConfig(listing_engine="turbo"))

    def test_listing_engine_recorded_in_config(self, fig1):
        result = arb_nucleus_decomp(
            fig1, 2, 3, NucleusConfig(listing_engine="batch"))
        assert result.config.listing_engine == "batch"

    def test_falls_back_under_race_detector(self, fig1):
        """A race detector forces the scalar recursion; results still
        match a plain scalar run."""
        plain, _ = _run_decomp(fig1, 2, 3, "scalar", "scalar",
                               "goodrich_pszona", True)
        checked, _ = _run_decomp(fig1, 2, 3, "batch", "batch",
                                 "goodrich_pszona", True, detector=True)
        assert plain.rho == checked.rho
        assert np.array_equal(plain._cores, checked._cores)

    def test_no_scalar_recursion_during_batch_peel(self, community60,
                                                   monkeypatch):
        """Acceptance criterion: with both batch engines, peeling never
        re-enters rec_list_cliques."""
        def _forbidden(*_args, **_kwargs):
            raise AssertionError(
                "rec_list_cliques called during batch peeling")

        monkeypatch.setattr(batchpeel, "rec_list_cliques", _forbidden)
        config = NucleusConfig(**{
            **NucleusConfig.optimal(2, 4).__dict__,
            "engine": "batch", "listing_engine": "batch"})
        result = arb_nucleus_decomp(community60, 2, 4, config)
        assert result.n_s_cliques > 0  # the (2,4) run really listed cliques
