"""Tests for SNAP edge-list IO (repro.graph.io)."""

import numpy as np

from repro.graph.generators import figure1_graph
from repro.graph.io import read_edge_list, write_edge_list


def test_round_trip(tmp_path):
    g = figure1_graph()
    path = tmp_path / "g.txt"
    write_edge_list(g, path)
    h = read_edge_list(path)
    assert h.n == g.n
    assert np.array_equal(h.edges(), g.edges())


def test_header_and_comments(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("# SNAP comment\n% other comment\n\n0 1\n1 2 99\n")
    g = read_edge_list(path)
    assert g.n == 3
    assert g.m == 2  # extra column ignored


def test_relabel_compacts_sparse_ids(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("100 200\n200 5000\n")
    g = read_edge_list(path)
    assert g.n == 3
    assert g.m == 2


def test_no_relabel_keeps_ids(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("0 2\n2 9\n")
    g = read_edge_list(path, relabel=False)
    assert g.n == 10
    assert g.has_edge(2, 9)


def test_empty_file(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# nothing here\n")
    g = read_edge_list(path)
    assert g.m == 0


def test_write_includes_header(tmp_path):
    g = figure1_graph()
    path = tmp_path / "g.txt"
    write_edge_list(g, path, header="hello\nworld")
    text = path.read_text()
    assert text.startswith("# hello\n# world\n")
    assert "# n=7 m=15" in text


def test_gzip_round_trip(tmp_path):
    g = figure1_graph()
    path = tmp_path / "g.txt.gz"
    write_edge_list(g, path)
    import gzip
    with gzip.open(path, "rt") as handle:  # really compressed
        assert "# n=7 m=15" in handle.read()
    h = read_edge_list(path)
    assert np.array_equal(h.edges(), g.edges())
