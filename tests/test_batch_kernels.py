"""Unit tests for the vectorized kernels behind the batch peeling engine.

Each kernel's contract is exact equivalence with its scalar counterpart:
same outputs, same simulated charges, same order-sensitive side effects.
Also hosts the regression tests for the two hot-path overflow bugs fixed
alongside the engine (clique-table probe overflow, simple-array
aggregator growth).
"""

import numpy as np
import pytest

from repro.bucketing.julienne import JulienneBucketing
from repro.cliques.encode import CliqueEncoder
from repro.cliques.listing import collect_cliques
from repro.cliques.orient import orient
from repro.core.aggregation import (HashTableAggregator, ListBufferAggregator,
                                    SimpleArrayAggregator)
from repro.core.tables import CliqueTable
from repro.graph.generators import planted_partition
from repro.machine.cache import AddressSpace, CacheSimulator
from repro.parallel.atomics import ContentionMeter
from repro.parallel.hashtable import hash64, hash64_many
from repro.parallel.primitives import (interleave_segments, intersect_many,
                                       segment_offsets)
from repro.parallel.runtime import CostTracker


def build_table(r=2, s=3, **layout):
    dg, _ = orient(planted_partition(40, 4, 0.5, 0.03, seed=5), "degeneracy")
    cliques = np.sort(collect_cliques(dg, r), axis=1)
    return CliqueTable(40, r, cliques, tracker=CostTracker(),
                       address_space=AddressSpace(), **layout), cliques


class TestCacheAccessMany:
    @pytest.mark.parametrize("sample", [1, 3, 13])
    def test_equivalent_to_scalar_loop(self, sample):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 50_000, size=700)
        a = CacheSimulator(sample=sample)
        b = CacheSimulator(sample=sample)
        for x in addrs:
            a.access(int(x))
        b.access_many(addrs)
        assert a.misses == b.misses
        assert a.accesses == b.accesses
        assert np.array_equal(a._tags, b._tags)
        assert np.array_equal(a._stamp, b._stamp)

    @pytest.mark.parametrize("sample", [1, 4])
    def test_interleaved_with_scalar_accesses(self, sample):
        """Batched and scalar accesses mix freely: sampling phase and LRU
        clocks carry across the boundary."""
        rng = np.random.default_rng(1)
        chunks = [rng.integers(0, 9_000, size=k) for k in (7, 1, 120, 3)]
        a = CacheSimulator(sample=sample)
        b = CacheSimulator(sample=sample)
        for i, chunk in enumerate(chunks):
            for x in chunk:
                a.access(int(x))
            if i % 2:
                b.access_many(chunk)
            else:
                for x in chunk:
                    b.access(int(x))
        assert a.misses == b.misses
        assert np.array_equal(a._stamp, b._stamp)

    def test_empty_batch(self):
        sim = CacheSimulator()
        assert sim.access_many(np.empty(0, dtype=np.int64)) == 0
        assert sim.accesses == 0


class TestHashAndEncodeMany:
    def test_hash64_many_matches_scalar(self):
        keys = np.arange(0, 4000, 7, dtype=np.uint64)
        batch = hash64_many(keys)
        assert batch.dtype == np.uint64
        assert all(int(h) == hash64(int(k)) for k, h in zip(keys, batch))

    def test_encode_decode_many_roundtrip(self):
        enc = CliqueEncoder(97, 3)
        rng = np.random.default_rng(2)
        rows = np.sort(rng.integers(0, 97, size=(50, 3)), axis=1)
        keys = enc.encode_many(rows)
        assert all(int(k) == enc.encode(tuple(row)) for row, k in
                   zip(rows.tolist(), keys))
        assert np.array_equal(enc.decode_many(keys), rows)


class TestTableBatchKernels:
    def test_lookup_many_matches_cell_of(self):
        table, cliques = build_table()
        cells, probes, slot_addrs, route_addrs = table.lookup_many(cliques)
        for row, cell in zip(cliques.tolist(), cells):
            assert table.cell_of(tuple(row)) == int(cell)
        assert probes.min() >= 1
        assert route_addrs.shape == (cliques.shape[0],
                                     table.route_charge_profile()[2])
        assert slot_addrs.shape == (cliques.shape[0],)

    def test_lookup_many_missing_raises(self):
        table, _ = build_table()
        with pytest.raises(KeyError):
            table.lookup_many(np.array([[38, 39]]))

    @pytest.mark.parametrize("layout", [
        dict(levels=2, style="array", contiguous=True,
             inverse_map="stored_pointers"),
        dict(levels=2, style="array", contiguous=False,
             inverse_map="binary_search"),
        dict(levels=1, style="hash", contiguous=False,
             inverse_map="binary_search"),
    ])
    def test_decode_many_matches_decode_and_charges(self, layout):
        table, cliques = build_table(**layout)
        cells = table.occupied_cells()
        base_work = table.tracker.total.work
        decoded, addrs, lens = table.decode_many(cells,
                                                 collect_addresses=True)
        bulk_work = table.tracker.total.work - base_work
        scalar = [table.decode(int(c)) for c in cells]
        scalar_work = table.tracker.total.work - base_work - bulk_work
        assert [tuple(row) for row in decoded.tolist()] == scalar
        assert bulk_work == scalar_work
        assert addrs.size == int(lens.sum())

    def test_add_count_at_many_matches_scalar(self):
        table_a, cliques = build_table()
        table_b, _ = build_table()
        cells = table_a.occupied_cells()[:10]
        deltas = np.full(10, -0.25)
        for cell, delta in zip(cells, deltas):
            table_a.add_count_at(int(cell), float(delta))
        table_b.add_count_at_many(cells, deltas)
        assert np.array_equal(table_a.counts, table_b.counts)
        assert table_a.tracker.total.work == table_b.tracker.total.work
        assert table_a.tracker.total.atomic_ops == \
            table_b.tracker.total.atomic_ops


class TestInsertProbeOverflow:
    """Satellite: a full sub-table must fail loudly, not probe forever."""

    def test_full_subtable_raises(self):
        table, _ = build_table(levels=1, style="hash", contiguous=False,
                               inverse_map="binary_search")
        # Forge a full sub-table: every slot occupied by keys that never
        # match the probe key.  The old unbounded linear probe spun forever
        # here; the bound turns it into a diagnosable RuntimeError.
        table._keys[:] = np.uint64(1) << np.uint64(60)
        with pytest.raises(RuntimeError, match="sub-table 0 is full"):
            table._insert(0, 12345)

    def test_error_names_capacity(self):
        table, _ = build_table(levels=1, style="hash", contiguous=False,
                               inverse_map="binary_search")
        table._keys[:] = np.uint64(1) << np.uint64(60)
        cap = int(table._caps[0])
        with pytest.raises(RuntimeError, match=f"probed all {cap} slots"):
            table._insert(0, 99)


class TestAggregatorGrowth:
    """Satellite: SimpleArrayAggregator must grow, not IndexError."""

    def test_records_past_initial_capacity(self):
        tracker = CostTracker()
        agg = SimpleArrayAggregator(4, tracker=tracker)
        agg.begin_round(4, 4)
        for cell in range(50):  # old code: IndexError at the 5th record
            agg.record(cell)
        assert sorted(agg.finish_round().tolist()) == list(range(50))

    def test_growth_charges_copy_work(self):
        tracker = CostTracker()
        agg = SimpleArrayAggregator(2, tracker=tracker)
        agg.begin_round(2, 2)
        for cell in range(3):
            agg.record(cell)
        # 3 records charge 1 work each; the doubling from 2 to 4 copies the
        # 2 live entries.
        assert tracker.total.work == 3 + 2

    def test_zero_capacity_never_breaks(self):
        agg = SimpleArrayAggregator(0)
        agg.begin_round(0, 0)
        agg.record(7)
        assert agg.finish_round().tolist() == [7]


AGGREGATORS = [SimpleArrayAggregator, ListBufferAggregator,
               HashTableAggregator]


class TestRecordMany:
    @pytest.mark.parametrize("cls", AGGREGATORS)
    def test_matches_scalar_records(self, cls):
        rng = np.random.default_rng(4)
        cells = rng.choice(500, size=120, replace=False)
        threads = rng.integers(0, 8, size=120)
        runs = []
        for batched in (False, True):
            tracker = CostTracker()
            meter = ContentionMeter()
            agg = cls(500, threads=8, tracker=tracker, meter=meter,
                      buffer_size=16)
            agg.begin_round(60, 120)
            if batched:
                agg.record_many(cells, threads)
            else:
                for cell, thread in zip(cells, threads):
                    agg.record(int(cell), int(thread))
            out = agg.finish_round()
            meter.settle(tracker)
            runs.append((out.tolist(), tracker.total.work,
                         tracker.total.atomic_ops,
                         tracker.total.contention))
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("cls", AGGREGATORS)
    def test_multi_round_state_carries(self, cls):
        """Batched and scalar recording interleave across rounds (the list
        buffer's per-thread cursors persist between rounds)."""
        rng = np.random.default_rng(5)
        trackers = [CostTracker(), CostTracker()]
        aggs = [cls(300, threads=4, tracker=t, meter=ContentionMeter(),
                    buffer_size=8) for t in trackers]
        for round_no in range(3):
            cells = rng.choice(300, size=40, replace=False)
            threads = rng.integers(0, 4, size=40)
            outs = []
            for k, agg in enumerate(aggs):
                agg.begin_round(20, 40)
                if k:
                    agg.record_many(cells, threads)
                else:
                    for cell, thread in zip(cells, threads):
                        agg.record(int(cell), int(thread))
                outs.append(agg.finish_round().tolist())
            assert outs[0] == outs[1]
        assert trackers[0].total.work == trackers[1].total.work

    def test_hash_record_many_address_sink(self):
        """The hash aggregator's captured per-record address segments,
        replayed in order, reproduce the scalar run's cache stream."""
        rng = np.random.default_rng(6)
        cells = rng.choice(200, size=50, replace=False)
        caches = []
        for batched in (False, True):
            tracker = CostTracker()
            tracker.cache = CacheSimulator(sample=1)
            agg = HashTableAggregator(200, threads=4, tracker=tracker,
                                      meter=ContentionMeter())
            agg.begin_round(25, 50)
            if batched:
                sink = []
                agg.record_many(cells, address_sink=sink)
                assert len(sink) == cells.size
                tracker.access_sequence(np.concatenate(sink))
            else:
                for cell in cells:
                    agg.record(int(cell))
            caches.append((tracker.cache.accesses, tracker.cache.misses))
        assert caches[0] == caches[1]


class TestJulienneFastPath:
    def _pair(self, n=400, window=16):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 60, size=n)
        ids = np.arange(n, dtype=np.int64)
        fast = JulienneBucketing(ids, values, window=window)
        slow = JulienneBucketing(ids, values, window=window)
        slow._update_fast = lambda *_: False  # force the per-id loop
        return fast, slow

    def test_update_matches_slow_loop(self):
        fast, slow = self._pair()
        rng = np.random.default_rng(8)
        for structure in (fast, slow):
            structure.next_bucket()
        updated = rng.choice(400, size=150, replace=False)
        new_values = np.maximum(
            rng.integers(-5, 55, size=150), 0)
        fast.update(updated, new_values)
        slow.update(updated, new_values)
        assert np.array_equal(fast.values, slow.values)
        # Identical extraction sequences afterwards (bucket order and
        # per-bucket append order both preserved).
        while len(slow):
            level_f, ids_f = fast.next_bucket()
            level_s, ids_s = slow.next_bucket()
            assert level_f == level_s
            assert np.array_equal(ids_f, ids_s)

    def test_duplicate_ids_fall_back(self):
        fast, slow = self._pair(n=50, window=8)
        ids = np.array([3, 3, 7])
        values = np.array([40, 41, 42])
        fast.update(ids, values)
        slow.update(ids, values)
        assert np.array_equal(fast.values, slow.values)

    def test_below_window_batch_still_raises(self):
        bucketing = JulienneBucketing(np.arange(20), np.arange(20),
                                      window=8)
        bucketing.next_bucket()  # extracts only the value-0 bucket
        with pytest.raises(ValueError, match="below the current window"):
            # Force still-alive ids below base to simulate protocol
            # breakage; the batch fast path must defer to the loop's error.
            bucketing.base = 50
            bucketing.update(np.array([1, 2]), np.array([31, 32]))

    def test_unknown_id_raises_keyerror(self):
        bucketing = JulienneBucketing(np.arange(10), np.arange(10),
                                      window=4)
        with pytest.raises(KeyError):
            bucketing.update(np.array([3, 99]), np.array([1, 1]))


class TestSegmentPrimitives:
    def test_segment_offsets(self):
        assert segment_offsets([3, 0, 2]).tolist() == [0, 1, 2, 0, 1]
        assert segment_offsets([]).tolist() == []

    def test_interleave_segments(self):
        a = np.array([1, 2, 3, 40, 50])
        b = np.array([9, 8])
        merged = interleave_segments(a, [3, 2], b, [1, 1])
        assert merged.tolist() == [1, 2, 3, 9, 40, 50, 8]

    def test_interleave_empty_side(self):
        a = np.array([5, 6])
        merged = interleave_segments(a, [1, 1], np.empty(0, np.int64),
                                     [0, 0])
        assert merged.tolist() == [5, 6]

    def test_mismatched_segment_counts(self):
        with pytest.raises(ValueError):
            interleave_segments(np.array([1]), [1], np.array([2]), [1, 0])


class TestIntersectManyRows:
    def test_matches_per_row_results_and_charge(self):
        rng = np.random.default_rng(9)
        rows = []
        for _ in range(40):
            row = [np.unique(rng.choice(80, size=rng.integers(0, 25)))
                   for _ in range(3)]
            rows.append(row)
        tracker_batch = CostTracker()
        batch = intersect_many(rows, tracker_batch)
        tracker_loop = CostTracker()
        loop = [intersect_many(row, tracker_loop) for row in rows]
        assert tracker_batch.total.work == tracker_loop.total.work
        assert len(batch) == len(loop)
        for got, want in zip(batch, loop):
            assert np.array_equal(got, np.asarray(want))

    def test_negative_values_fall_back(self):
        rows = [[np.array([-3, 1, 5]), np.array([-3, 5])]]
        result = intersect_many(rows, CostTracker())
        assert np.array_equal(result[0], np.array([-3, 5]))

    def test_two_dim_charge_equals_one_dim(self):
        a = np.array([1, 4, 9])
        b = np.array([4, 9, 11, 20])
        t1, t2 = CostTracker(), CostTracker()
        one = intersect_many([a, b], t1)
        two = intersect_many([[a, b]], t2)[0]
        assert np.array_equal(one, two)
        assert t1.total.work == t2.total.work
