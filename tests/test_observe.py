"""Tests for the observability layer (repro.observe): trace, bench."""

import json

import pytest

from repro.core.decomp import arb_nucleus_decomp
from repro.graph.generators import figure1_graph
from repro.machine.cache import CacheSimulator
from repro.observe import (TraceRecorder, breakdown_rows, compare,
                           format_breakdown, load_payload, run_entry,
                           run_suite, write_payload)
from repro.parallel.runtime import CostTracker, MachineModel


def _strip_host(entry):
    """Drop the host wall-clock field (the one nondeterministic value)."""
    return {k: v for k, v in entry.items() if k != "wall_clock"}


def _simulated(payload):
    return {**{k: v for k, v in payload.items() if k != "suite"},
            "suite": [_strip_host(e) for e in payload["suite"]]}


def _traced_run():
    tracker = CostTracker()
    tracker.trace = TraceRecorder()
    with tracker.phase("alpha"):
        tracker.add_work(10)
        with tracker.parallel(4) as region:
            for _ in range(4):
                with region.task():
                    tracker.add_work(5)
                    tracker.add_span(2)
    with tracker.phase("beta"):
        tracker.add_work(3)
    return tracker


class TestTraceRecorder:
    def test_phase_and_region_slices(self):
        tracker = _traced_run()
        events = tracker.trace.events
        names = [e["name"] for e in events]
        assert "alpha" in names and "beta" in names
        assert "parallel[4]" in names
        assert sum(e["cat"] == "task" for e in events) == 4

    def test_timestamps_are_work_units(self):
        tracker = _traced_run()
        alpha = next(e for e in tracker.trace.events if e["name"] == "alpha")
        assert alpha["ts"] == 0
        assert alpha["dur"] == pytest.approx(30)  # 10 + 4 tasks x 5
        beta = next(e for e in tracker.trace.events if e["name"] == "beta")
        assert beta["ts"] == pytest.approx(30)
        assert beta["dur"] == pytest.approx(3)

    def test_args_carry_counter_deltas(self):
        tracker = _traced_run()
        alpha = next(e for e in tracker.trace.events if e["name"] == "alpha")
        assert alpha["args"]["work"] == pytest.approx(30)
        region = next(e for e in tracker.trace.events
                      if e["cat"] == "region")
        assert region["args"]["max_task_span"] == pytest.approx(2)

    def test_task_limit_drops_slices(self):
        tracker = CostTracker()
        tracker.trace = TraceRecorder(task_limit=2)
        with tracker.parallel(5) as region:
            for _ in range(5):
                with region.task():
                    tracker.add_work(1)
        assert sum(e["cat"] == "task" for e in tracker.trace.events) == 2
        assert tracker.trace.dropped_tasks == 3
        # The region slice still records the true task count in its name.
        assert any(e["name"] == "parallel[5]" for e in tracker.trace.events)

    def test_accounting_neutral(self):
        graph = figure1_graph()
        plain = CostTracker()
        arb_nucleus_decomp(graph, 2, 3, tracker=plain)
        traced = CostTracker()
        traced.trace = TraceRecorder()
        arb_nucleus_decomp(graph, 2, 3, tracker=traced)
        assert plain.summary() == traced.summary()
        assert plain.phases.keys() == traced.phases.keys()
        for name in plain.phases:
            assert plain.phases[name] == traced.phases[name]

    def test_chrome_trace_is_valid_json(self, tmp_path):
        tracker = _traced_run()
        path = tmp_path / "trace.json"
        tracker.trace.write(path)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded["traceEvents"], list)
        for event in loaded["traceEvents"]:
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                # Perfetto rejects slices with negative durations.
                assert event["dur"] >= 0
                assert event["ts"] >= 0
                assert {"name", "ts", "pid", "tid"} <= event.keys()

    def test_nested_phases_nest_slices(self):
        tracker = CostTracker()
        tracker.trace = TraceRecorder()
        with tracker.phase("outer"):
            tracker.add_work(1)
            with tracker.phase("inner"):
                tracker.add_work(2)
        inner = next(e for e in tracker.trace.events
                     if e["name"] == "inner")
        outer = next(e for e in tracker.trace.events
                     if e["name"] == "outer")
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]


class TestBreakdownRendering:
    def test_rows_total_last_and_shares(self):
        tracker = CostTracker()
        with tracker.phase("a"):
            tracker.add_work(100)
        with tracker.phase("b"):
            tracker.add_work(300)
        rows = breakdown_rows(MachineModel().time_breakdown(tracker, 1))
        assert rows[-1]["phase"] == "TOTAL"
        assert rows[0]["phase"] == "b"  # sorted by descending time
        assert sum(r["share"] for r in rows[:-1]) == pytest.approx(1.0)

    def test_format_contains_terms(self):
        tracker = CostTracker()
        with tracker.phase("a"):
            tracker.add_work(100)
        text = format_breakdown(MachineModel().time_breakdown(tracker, 60))
        for term in ("work", "span", "barrier", "contention", "cache"):
            assert term in text
        assert "TOTAL" in text


class TestBenchSuite:
    @pytest.fixture(scope="class")
    def payload(self):
        # One small pinned entry keeps the test fast; the full suite runs
        # in the CI bench-trajectory job.
        return run_suite(suite=(("amazon", 1, 2), ("amazon", 2, 3)),
                         label="test")

    def test_entry_metrics(self, payload):
        entry = payload["suite"][0]
        for key in ("graph", "r", "s", "rho", "work", "span", "rounds",
                    "T1", "T60", "speedup", "contention", "cache_misses",
                    "phases", "breakdown"):
            assert key in entry
        assert entry["T1"] > entry["T60"]
        assert entry["speedup"] == pytest.approx(
            entry["T1"] / entry["T60"])

    def test_breakdown_sums_to_time(self, payload):
        for entry in payload["suite"]:
            total = entry["breakdown"]
            assert total["time"] == pytest.approx(
                total["work"] + total["span"] + total["barrier"]
                + total["contention"] + total["cache"])
            assert total["time"] == pytest.approx(entry["T60"])

    def test_phases_partition_totals(self, payload):
        for entry in payload["suite"]:
            phases = entry["phases"].values()
            assert sum(p["work"] for p in phases) == \
                pytest.approx(entry["work"])
            assert sum(p["span"] for p in phases) == \
                pytest.approx(entry["span"])
            assert sum(p["rounds"] for p in phases) == entry["rounds"]
            assert sum(p["cache_misses"] for p in phases) == \
                entry["cache_misses"]

    def test_deterministic(self, payload):
        again = run_suite(suite=(("amazon", 1, 2), ("amazon", 2, 3)),
                          label="test")
        # Everything except host wall-clock seconds is exactly repeatable.
        assert _simulated(again) == _simulated(payload)

    def test_roundtrip(self, payload, tmp_path):
        path = tmp_path / "BENCH.json"
        write_payload(payload, path)
        assert load_payload(path) == payload

    def test_run_entry_matches_suite(self, payload):
        entry = run_entry("amazon", 1, 2)
        assert _strip_host(entry) == _strip_host(payload["suite"][0])


class TestCompare:
    def _payloads(self):
        base = run_suite(suite=(("amazon", 1, 2),), label="base")
        current = json.loads(json.dumps(base))  # deep copy
        return current, base

    def test_identical_is_clean(self):
        current, base = self._payloads()
        assert compare(current, base) == []

    def test_flags_injected_regression(self):
        current, base = self._payloads()
        current["suite"][0]["work"] *= 1.2
        regressions = compare(current, base, tolerance=0.05)
        assert len(regressions) == 1
        assert "work" in regressions[0]

    def test_within_tolerance_is_clean(self):
        current, base = self._payloads()
        current["suite"][0]["work"] *= 1.04
        assert compare(current, base, tolerance=0.05) == []

    def test_improvement_is_clean(self):
        current, base = self._payloads()
        current["suite"][0]["work"] *= 0.5
        current["suite"][0]["speedup"] *= 2.0
        assert compare(current, base) == []

    def test_speedup_drop_is_regression(self):
        current, base = self._payloads()
        current["suite"][0]["speedup"] *= 0.8
        regressions = compare(current, base)
        assert len(regressions) == 1
        assert "speedup" in regressions[0] and "fell" in regressions[0]

    def test_missing_entry_is_regression(self):
        current, base = self._payloads()
        current["suite"] = []
        regressions = compare(current, base)
        assert regressions and "missing" in regressions[0]

    def test_new_entry_is_not_regression(self):
        current, base = self._payloads()
        current["suite"].append(dict(current["suite"][0], graph="extra"))
        assert compare(current, base) == []


class TestCacheMissAttribution:
    def test_misses_attributed_to_phase(self):
        tracker = CostTracker()
        tracker.cache = CacheSimulator(n_sets=4, ways=1)
        with tracker.phase("hot"):
            for addr in range(0, 4096, 64):
                tracker.access(addr)
        assert tracker.phases["hot"].cache_misses == tracker.cache.misses
        assert tracker.total.cache_misses == tracker.cache.misses
        assert tracker.phases["hot"].cache_misses > 0

    def test_sampled_misses_scale(self):
        tracker = CostTracker()
        tracker.cache = CacheSimulator(n_sets=4, ways=1, sample=4)
        with tracker.phase("hot"):
            for addr in range(0, 1 << 16, 64):
                tracker.access(addr)
        assert tracker.phases["hot"].cache_misses == tracker.cache.misses
