"""Tests for the multi-level clique table T (repro.core.tables)."""

import numpy as np
import pytest

from repro.cliques.listing import collect_cliques
from repro.cliques.orient import orient
from repro.core.tables import CliqueTable
from repro.graph.generators import figure1_graph, planted_partition


def fig1_cliques(c):
    dg, _ = orient(figure1_graph(), "degeneracy")
    return np.sort(collect_cliques(dg, c), axis=1)


ALL_LAYOUTS = [
    dict(levels=1),
    dict(levels=2, style="array", contiguous=False),
    dict(levels=2, style="array", contiguous=True),
    dict(levels=2, style="array", contiguous=True,
         inverse_map="stored_pointers"),
    dict(levels=2, style="hash", contiguous=True,
         inverse_map="stored_pointers"),
    dict(levels=3, style="hash", contiguous=False),
    dict(levels=3, style="hash", contiguous=True,
         inverse_map="stored_pointers"),
]


class TestMemoryUnits:
    """The paper's worked examples in Figures 3-4 (see DESIGN.md for the
    one number we cannot derive from the stated convention)."""

    def test_one_level_34(self):
        t = CliqueTable(7, 3, fig1_cliques(3), levels=1)
        assert t.memory_units == 42  # Figure 3

    def test_two_level_34(self):
        t = CliqueTable(7, 3, fig1_cliques(3), levels=2, style="array")
        assert t.memory_units == 35  # Figure 3

    def test_one_level_45(self):
        t = CliqueTable(7, 4, fig1_cliques(4), levels=1)
        assert t.memory_units == 24  # Figure 4

    def test_three_level_45(self):
        t = CliqueTable(7, 4, fig1_cliques(4), levels=3, style="hash")
        assert t.memory_units == 22  # Figure 4

    def test_multilevel_counts_intermediate_entries(self):
        t = CliqueTable(7, 3, fig1_cliques(3), levels=3, style="hash")
        # 3 first-level + 8 second-level entries (2 units each) + 14 keys.
        assert t.memory_units == 36


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
class TestLayouts:
    def test_decode_round_trip(self, layout):
        cliques = fig1_cliques(3)
        t = CliqueTable(7, 3, cliques, **layout)
        decoded = sorted(t.decode(int(c)) for c in t.occupied_cells())
        assert decoded == sorted(map(tuple, cliques.tolist()))

    def test_cell_of_finds_every_clique(self, layout):
        cliques = fig1_cliques(3)
        t = CliqueTable(7, 3, cliques, **layout)
        for row in cliques:
            cell = t.cell_of(tuple(row))
            assert cell >= 0
            assert t.decode(cell) == tuple(row)

    def test_cell_of_missing_returns_minus_one(self, layout):
        t = CliqueTable(7, 3, fig1_cliques(3), **layout)
        assert t.cell_of((4, 5, 6)) == -1  # efg is not a triangle

    def test_counts(self, layout):
        cliques = fig1_cliques(3)
        t = CliqueTable(7, 3, cliques, **layout)
        cell = t.add_count(tuple(cliques[0]), 2.0)
        t.add_count_at(cell, -0.5)
        assert t.count_at(cell) == pytest.approx(1.5)

    def test_len(self, layout):
        t = CliqueTable(7, 3, fig1_cliques(3), **layout)
        assert len(t) == 14


class TestIndexStability:
    def test_cells_identical_contiguous_or_not(self):
        """Paper 5.3: the index of each r-clique is the same regardless of
        whether T is contiguous in memory."""
        cliques = fig1_cliques(3)
        a = CliqueTable(7, 3, cliques, levels=2, style="array",
                        contiguous=False)
        b = CliqueTable(7, 3, cliques, levels=2, style="array",
                        contiguous=True)
        for row in cliques:
            assert a.cell_of(tuple(row)) == b.cell_of(tuple(row))


class TestValidation:
    def test_stored_pointers_require_contiguous(self):
        with pytest.raises(ValueError):
            CliqueTable(7, 3, fig1_cliques(3), levels=2, style="array",
                        contiguous=False, inverse_map="stored_pointers")

    def test_array_style_is_two_level_only(self):
        with pytest.raises(ValueError):
            CliqueTable(7, 3, fig1_cliques(3), levels=3, style="array")

    def test_levels_bounds(self):
        with pytest.raises(ValueError):
            CliqueTable(7, 3, fig1_cliques(3), levels=4)
        with pytest.raises(ValueError):
            CliqueTable(7, 3, fig1_cliques(3), levels=0)

    def test_bad_inverse_map(self):
        with pytest.raises(ValueError):
            CliqueTable(7, 3, fig1_cliques(3), levels=1, inverse_map="x")

    def test_key_width_forces_levels(self):
        from repro.cliques.encode import KeyWidthError
        # 2^20-vertex ids: 6 vertices cannot fit one 63-bit key.
        big_cliques = np.array([[0, 1, 2, 3, 4, 5]])
        with pytest.raises(KeyWidthError):
            CliqueTable(2**20, 6, big_cliques, levels=1)
        t = CliqueTable(2**20, 6, big_cliques, levels=4, style="hash")
        assert t.cell_of((0, 1, 2, 3, 4, 5)) >= 0

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            CliqueTable(7, 3, fig1_cliques(3), levels=2, style="wat")


class TestEmptyAndEdgeCases:
    def test_empty_table(self):
        t = CliqueTable(7, 3, np.zeros((0, 3), dtype=np.int64), levels=2,
                        style="array")
        assert len(t) == 0
        assert t.occupied_cells().size == 0

    def test_r_equals_one(self):
        vertices = np.arange(5).reshape(-1, 1)
        t = CliqueTable(5, 1, vertices, levels=1)
        assert len(t) == 5
        for v in range(5):
            assert t.decode(t.cell_of((v,))) == (v,)

    def test_larger_graph_all_layouts_agree(self):
        g = planted_partition(50, 4, 0.5, 0.02, seed=1)
        dg, _ = orient(g, "degeneracy")
        cliques = np.sort(collect_cliques(dg, 3), axis=1)
        reference = None
        for layout in ALL_LAYOUTS:
            t = CliqueTable(g.n, 3, cliques, **layout)
            decoded = sorted(t.decode(int(c)) for c in t.occupied_cells())
            if reference is None:
                reference = decoded
            assert decoded == reference
