"""Tests for the dynamic race detector (repro.sanitize.racecheck)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.nd import nd_decomposition
from repro.baselines.pkt import pkt_decomposition
from repro.core.config import NucleusConfig
from repro.core.decomp import arb_nucleus_decomp
from repro.core.kcore import k_core
from repro.graph.generators import figure1_graph
from repro.parallel.runtime import CostTracker
from repro.sanitize.racecheck import (RaceDetector, RaceError, ShadowArray,
                                      maybe_shadow)

# Static->dynamic coverage stamps for rule PAR011: each qualname names an
# entry point whose parallel regions the tests in this file drive under a
# live RaceDetector.  The static effect analyzer
# (repro.sanitize.effects) cross-references every shared-writing parallel
# region against these stamps; engine kernels must be stamped directly
# because they fall back to their scalar oracles whenever a detector is
# attached (see TestBatchEnginesRaceSmoke for what that stamp asserts).
RACECHECK_COVERS = [
    "repro.core.decomp.arb_nucleus_decomp",
    "repro.core.batchpeel.peel_batch",
]


def tracked_detector():
    tracker = CostTracker()
    detector = RaceDetector()
    tracker.race_detector = detector
    return tracker, detector


class TestOwnershipModel:
    def test_serial_accesses_never_race(self):
        detector = RaceDetector()
        detector.log(7, write=True)
        detector.log(7, write=True)
        assert detector.settle() == []

    def test_sibling_tasks_write_write(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    detector.log(7, write=True)
        races = detector.settle()
        assert len(races) == 1
        assert races[0].kind == "write-write"
        assert races[0].address == 7

    def test_task_vs_enclosing_serial_is_ordered(self):
        # The serial (empty-path) context is an ancestor of every task.
        tracker, detector = tracked_detector()
        detector.log(7, write=True)
        with tracker.parallel(2) as region:
            with region.task():
                detector.log(7, write=True)
        assert detector.settle() == []

    def test_nested_task_vs_its_parent_is_ordered(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as outer:
            with outer.task():
                detector.log(7, write=True)  # parent frame
                with tracker.parallel(2) as inner:
                    with inner.task():
                        detector.log(7, write=True)  # its own child
        assert detector.settle() == []

    def test_nested_tasks_of_different_parents_race(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as outer:
            for _ in range(2):
                with outer.task():
                    with tracker.parallel(1) as inner:
                        with inner.task():
                            detector.log(7, write=True)
        races = detector.settle()
        assert len(races) == 1
        assert races[0].kind == "write-write"

    def test_read_write_across_tasks(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            with region.task():
                detector.log(7, write=False)
            with region.task():
                detector.log(7, write=True)
        races = detector.settle()
        assert len(races) == 1
        assert races[0].kind == "read-write"

    def test_concurrent_reads_are_fine(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    detector.log(7, write=False)
        assert detector.settle() == []

    def test_explicit_owner_attribution(self):
        # Thread-owned state: tasks multiplexed onto one worker do not race.
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    detector.log(7, write=True, owner=("thread", 0))
        assert detector.settle() == []


class TestMediation:
    def test_atomics_never_race_with_atomics(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    detector.log(7, write=True, atomic=True)
        assert detector.settle() == []

    def test_plain_write_vs_atomic_write_races(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            with region.task():
                detector.log(7, write=True, atomic=True)
            with region.task():
                detector.log(7, write=True)
        races = detector.settle()
        assert len(races) == 1
        assert races[0].kind == "write-write"

    def test_plain_read_vs_atomic_write_races(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            with region.task():
                detector.log(7, write=False)
            with region.task():
                detector.log(7, write=True, atomic=True)
        races = detector.settle()
        assert len(races) == 1
        assert races[0].kind == "read-write"


class TestBarrierSemantics:
    def test_region_close_is_a_barrier(self):
        # A write in one region cannot race with a write in the next.
        tracker, detector = tracked_detector()
        for _ in range(2):
            with tracker.parallel(2) as region:
                with region.task():
                    detector.log(7, write=True)
        assert detector.settle() == []

    def test_inner_region_close_is_not_a_barrier(self):
        # Only the *outermost* close flushes: two sibling outer tasks still
        # race even when each wrapped its write in an inner region.
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as outer:
            for _ in range(2):
                with outer.task():
                    with tracker.parallel(1) as inner:
                        with inner.task():
                            detector.log(7, write=True)
        assert len(detector.settle()) == 1


class TestSettle:
    def test_strict_raises_with_description(self):
        tracker, detector = tracked_detector()
        base = detector.allocate(4, "shared")
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    detector.log(base + 2, write=True)
        with pytest.raises(RaceError) as excinfo:
            detector.settle(strict=True)
        assert "shared[2]" in str(excinfo.value)
        assert "write-write" in str(excinfo.value)

    def test_settle_keeps_races_for_inspection(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    detector.log(7, write=True)
        assert detector.settle() == detector.settle()

    def test_stats_counters(self):
        tracker, detector = tracked_detector()
        with tracker.parallel(3) as region:
            for _ in range(3):
                with region.task():
                    detector.log(1, write=False)
                    detector.log(2, write=False)
        detector.settle()
        assert detector.stats.logged == 6
        assert detector.stats.addresses_seen == 2
        assert detector.stats.regions == 1
        assert detector.stats.tasks == 3
        assert detector.stats.races == 0

    def test_allocate_separates_structures(self):
        detector = RaceDetector()
        a = detector.allocate(10, "a")
        b = detector.allocate(10, "b")
        assert b >= a + 10


class TestShadowArray:
    def test_reads_and_writes_are_logged(self):
        tracker, detector = tracked_detector()
        arr = ShadowArray(np.zeros(4, dtype=np.int64), detector)
        with tracker.parallel(2) as region:
            with region.task():
                arr[1] = 5
            with region.task():
                _ = arr[1]
        races = detector.settle()
        assert len(races) == 1
        assert races[0].kind == "read-write"

    def test_values_pass_through(self):
        arr = ShadowArray(np.arange(5), RaceDetector())
        assert arr[3] == 3
        arr[3] = 9
        assert arr.values[3] == 9
        assert len(arr) == 5 and arr.size == 5

    def test_slice_and_mask_and_fancy_indices(self):
        detector = RaceDetector()
        arr = ShadowArray(np.arange(6), detector)
        _ = arr[1:4]
        _ = arr[np.array([True, False, True, False, False, False])]
        arr[np.array([0, 5])] = 7
        assert detector.stats.logged == 3 + 2 + 2
        assert list(arr.values) == [7, 1, 2, 3, 4, 7]

    def test_atomic_shadow_never_races(self):
        tracker, detector = tracked_detector()
        arr = ShadowArray(np.zeros(4, dtype=np.int64), detector, atomic=True)
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    arr[0] = 1
        assert detector.settle() == []

    def test_label_in_race_report(self):
        tracker, detector = tracked_detector()
        arr = ShadowArray(np.zeros(4, dtype=np.int64), detector,
                          label="status")
        with tracker.parallel(2) as region:
            for _ in range(2):
                with region.task():
                    arr[3] = 1
        (race,) = detector.settle()
        assert race.describe().startswith("write-write race at status[3]")


class TestMaybeShadow:
    def test_no_detector_returns_raw_array(self):
        values = np.zeros(4)
        assert maybe_shadow(values, CostTracker()) is values
        assert maybe_shadow(values, None) is values

    def test_with_detector_wraps(self):
        tracker, detector = tracked_detector()
        wrapped = maybe_shadow(np.zeros(4), tracker, label="x")
        assert isinstance(wrapped, ShadowArray)
        assert wrapped.detector is detector


class TestBatchEnginesRaceSmoke:
    """Every batch engine, driven end-to-end with a detector attached.

    The batch engines fall back to their scalar oracles whenever a race
    detector is present (vectorized kernels replay whole rounds and
    cannot interleave), so the dynamic property checked here is fallback
    losslessness: a batch-engine run under the detector must produce the
    same answer as the uninstrumented batch run, and the detector must
    certify the replayed schedule race-free.  Together with the
    bit-for-bit batch/scalar cost-parity gates (tests/test_batch_*.py,
    rule PAR007) this is what the ``RACECHECK_COVERS`` stamp for
    ``peel_batch`` asserts.
    """

    ENGINES = {
        "batchpeel": staticmethod(lambda t: arb_nucleus_decomp(
            figure1_graph(), 2, 3,
            replace(NucleusConfig.optimal(2, 3), engine="batch"), t)),
        "batchlist": staticmethod(lambda t: arb_nucleus_decomp(
            figure1_graph(), 2, 3,
            replace(NucleusConfig.optimal(2, 3), listing_engine="batch"),
            t)),
        "batchcore": staticmethod(lambda t: k_core(
            figure1_graph(), t, engine="batch")),
        "batchnd": staticmethod(lambda t: nd_decomposition(
            figure1_graph(), 2, 3, t, engine="batch")),
        "batchtruss": staticmethod(lambda t: pkt_decomposition(
            figure1_graph(), t, engine="batch")),
    }

    @staticmethod
    def _comparable(result):
        if isinstance(result, np.ndarray):
            return result.tolist()
        if hasattr(result, "as_dict"):
            return result.as_dict()
        return (result.core, result.rounds)

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_race_free_and_lossless_fallback(self, name):
        run = self.ENGINES[name].__func__
        tracker, detector = tracked_detector()
        checked = run(tracker)
        assert detector.settle(strict=False) == []
        plain = run(CostTracker())
        assert self._comparable(checked) == self._comparable(plain)

    @pytest.mark.parametrize("name", ["batchpeel", "batchlist"])
    def test_shadow_arrays_engage(self, name):
        # The nucleus engines route their peeling state through
        # maybe_shadow, so the fallback run must actually log accesses
        # --- a silent no-op detector would make the smoke test
        # meaningless.
        run = self.ENGINES[name].__func__
        tracker, detector = tracked_detector()
        run(tracker)
        detector.settle(strict=False)
        assert detector.stats.logged > 0
        assert detector.stats.tasks > 0
