"""A shared-writing region with no coverage stamp (PAR011 fires).

Byte-for-byte the same safe shape as ``covered`` --- the finding is
purely about the missing ``RACECHECK_COVERS`` stamp, proving PAR011
keys on the stamp registry and not on the region's contents.
"""

import numpy as np


def _write_slot(out, i, value):
    out[i] = value


def run(tracker, n):
    out = np.zeros(n)
    with tracker.parallel(n) as region:
        for t in range(n):
            with region.task():
                tracker.add_work(1.0)
                _write_slot(out, t, 1.0)
    return out
