"""A genuine static race: every task funnels into the same cell.

The write happens inside a helper, so the lexical rule PAR003 cannot see
it --- only the interprocedural effect walk does.  The slot argument is
the constant ``0``, which binds the helper's index parameter as
task-private (not basis-derived), so the write is provably not
task-disjoint and PAR009 fires at the helper's assignment.
"""

import numpy as np


def _bump(acc, slot, value):
    acc[slot] = acc[slot] + value


def run(tracker, values, n):
    total = np.zeros(1)
    with tracker.parallel(n) as region:
        for t in range(n):
            with region.task():
                tracker.add_work(1.0)
                _bump(total, 0, float(values[t]))
    return total
