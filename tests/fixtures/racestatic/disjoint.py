"""Task-disjoint writes: each task owns its own cell.

The index flowing into the helper is the task-loop variable ``t``, so
the helper's index parameter joins the basis and the write is proven
disjoint --- no finding.  The mutation gate in test_race_static.py
replaces the index with a data-dependent expression (``int(data[t])``),
which breaks the proof and must flip a PAR009.
"""

import numpy as np


def _store(out, i, value):
    out[i] = value


def run(tracker, data, n):
    out = np.zeros(n)
    with tracker.parallel(n) as region:
        for t in range(n):
            with region.task():
                tracker.add_work(1.0)
                _store(out, t, float(data[t]))
    return out
