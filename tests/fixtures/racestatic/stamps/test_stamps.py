"""Coverage stamps for the racestatic fixture package.

This file is what tests/test_race_static.py passes as ``tests_dir``:
the analyzer's PAR011 pass globs ``test_*.py`` here (non-recursively,
which is also why this nested copy never pollutes the real test tree's
stamp scan) and cross-references the qualnames below against the
fixture package's parallel-region registry.  ``uncovered.run`` is
deliberately absent.

Pytest collects this file because of its name; it defines no tests,
imports nothing, and passes trivially.
"""

RACECHECK_COVERS = [
    "racestatic.racy.run",
    "racestatic.disjoint.run",
    "racestatic.mediated.run",
    "racestatic.accum.run",
    "racestatic.covered.run",
]
