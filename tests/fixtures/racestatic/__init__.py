"""Fixture package for the static parallel-effect analyzer tests.

Each module holds one shape the analyzer must classify correctly:

* ``racy``     --- a helper-mediated write to a constant slot (PAR009)
* ``disjoint`` --- per-task writes indexed by the task variable (clean)
* ``mediated`` --- non-disjoint writes into an atomic ShadowArray (clean)
* ``accum``    --- an atomic accumulation with a fractional delta (PAR010)
* ``covered``  --- a stamped region with shared writes (clean)
* ``uncovered``--- the same shape without a stamp (PAR011)

The modules are analyzed statically by tests/test_race_static.py; they
are never imported or executed.  Coverage stamps live in
``stamps/test_stamps.py`` so the analyzer can be pointed at them with an
explicit ``tests_dir``.
"""
