"""A race-free but order-dependent atomic accumulation (PAR010).

``CountTable.bump`` is both detector-instrumented and an accumulator
(``add_atomic`` charge + subscript ``+=``), so the write itself is
mediated and PAR009 stays quiet --- but the delta reaching the call site
is computed with a true division, so the accumulated float total depends
on task interleaving and PAR010 fires at the call.  The mutation gate in
test_race_static.py switches the delta to an integral value, which must
silence the finding.
"""

import numpy as np


class CountTable:
    def __init__(self, cells, tracker, detector=None):
        self.counts = np.zeros(cells)
        self.tracker = tracker
        self.detector = detector

    def bump(self, cell, delta):
        if self.detector is not None:
            self.detector.log(cell, write=True, atomic=True)
        self.tracker.add_atomic(1.0)
        self.counts[cell] += delta


def run(tracker, weights, n):
    table = CountTable(3, tracker)
    with tracker.parallel(n) as region:
        for t in range(n):
            with region.task():
                tracker.add_work(1.0)
                delta = 1.0 / float(weights[t])
                table.bump(t % 3, delta)
    return table
