"""Atomic-mediated writes: non-disjoint index, but atomic storage.

The stamp array is a ShadowArray created with ``atomic=True``, so the
classification lattice proves every write mediated even though the
index ``(t + 1) % n`` mentions the non-basis name ``n`` and is not
provably disjoint.  The mutation gate in test_race_static.py deletes
the ``atomic=True`` argument, which degrades the class to plain and
must flip a PAR009.
"""

import numpy as np

from repro.sanitize.racecheck import maybe_shadow


def _mark(stamp, slot):
    stamp[slot] = 1


def run(tracker, n):
    stamp = maybe_shadow(np.zeros(n), tracker, atomic=True, label="stamp")
    with tracker.parallel(n) as region:
        for t in range(n):
            with region.task():
                tracker.add_work(1.0)
                _mark(stamp, (t + 1) % n)
    return stamp
