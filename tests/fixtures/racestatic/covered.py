"""A shared-writing region that the stamps file covers (PAR011 clean).

Same disjoint-write shape as ``uncovered``; the only difference is the
``racestatic.covered.run`` stamp in stamps/test_stamps.py.
"""

import numpy as np


def _write_slot(out, i, value):
    out[i] = value


def run(tracker, n):
    out = np.zeros(n)
    with tracker.parallel(n) as region:
        for t in range(n):
            with region.task():
                tracker.add_work(1.0)
                _write_slot(out, t, 1.0)
    return out
