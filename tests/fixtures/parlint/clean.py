"""Fixture: correctly cost-accounted parallel code --- no findings."""

from repro.parallel.atomics import ContentionMeter


def peel(tracker, graph):
    meter = ContentionMeter()
    with tracker.parallel(graph.n) as region:
        for v in range(graph.n):
            with region.task():
                tracker.add_work(1.0)
    meter.settle(tracker)
    for v in range(graph.n):
        tracker.add_work(1.0)
    return graph.n
