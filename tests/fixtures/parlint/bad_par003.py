"""Fixture: direct numpy mutation of a shared array inside a task."""


def update(tracker, counts, updates):
    with tracker.parallel(len(updates)) as region:
        for i, delta in enumerate(updates):
            with region.task():
                tracker.add_work(1.0)
                counts[i] += delta  # shared-array store without AtomicArray
