"""Fixture: a parallel region whose body never charges work or span."""


def peel(tracker, items):
    results = []
    with tracker.parallel(len(items)) as region:
        for item in items:
            with region.task():
                results.append(item * 2)  # no add_work / add_span anywhere
    return results
