"""Fixture: violations silenced with inline parlint suppressions."""


def count_degrees(graph, tracker):
    total = 0
    for v in range(graph.n):  # parlint: disable=PAR002
        total += len(graph.neighbors(v))
    return total


def unaccounted(tracker, items):
    with tracker.parallel(len(items)):  # parlint: disable=PAR001
        pass
