"""Fixture: a graph-scale loop with no tracker charge on any path."""


def count_degrees(graph, tracker):
    total = 0
    for v in range(graph.n):
        total += len(graph.neighbors(v))
    return total
