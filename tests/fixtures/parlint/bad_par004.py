"""Fixture: a ContentionMeter that is constructed but never settled."""

from repro.parallel.atomics import ContentionMeter


def round_of_updates(tracker, cells):
    meter = ContentionMeter()
    for cell in cells:
        tracker.add_work(1.0)
        tracker.add_atomic()
    return len(cells)
