"""Shape: registered engine kernels, one blessed and one drifted.

``batch_sum`` matches its declared fingerprint -> clean.
``batch_drifted`` declares two add_work call sites but has one -> PAR007.
"""

import numpy as np

PARLINT_PARITY = {
    "batch_sum": {
        "oracle": "enginepkg.scalar.scalar_sum",
        "fingerprint": {"add_work": 1},
    },
    "batch_drifted": {
        "oracle": "enginepkg.scalar.scalar_sum",
        "fingerprint": {"add_work": 2},
    },
}


def batch_sum(values, tracker):
    tracker.add_work(float(len(values)))
    return float(np.cumsum(values)[-1])


def batch_drifted(values, tracker):
    tracker.add_work(float(len(values)))
    return float(np.cumsum(values)[-1])
