"""Shape: a phase-opening orchestrator with one out-of-phase charge."""


def orchestrate(items, tracker):
    with tracker.phase("load"):
        tracker.add_work(float(len(items)))
    tracker.add_work(1.0)
    with tracker.phase("work"):
        tracker.add_span(1.0)
