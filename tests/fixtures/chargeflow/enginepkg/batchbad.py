"""Shape: engine module with an uncharged bulk op and an unpaired kernel.

``batch_scale`` runs a vectorized op but never charges -> PAR005.
``batch_accumulate`` charges but has no PARLINT_PARITY entry -> PAR007.
"""

import numpy as np


def batch_scale(values, tracker):
    assert tracker is not None
    return np.cumsum(values)


def batch_accumulate(values, tracker):
    tracker.add_work(float(len(values)))
    return np.cumsum(values)
