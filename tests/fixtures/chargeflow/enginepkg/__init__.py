"""Fixture package with known charge-flow shapes for the analyzer tests.

Each module is one shape; tests/test_chargeflow.py asserts the exact
finding set the analyzer produces over this package.
"""
