"""Shape: charging via a helper object.

Lexically both functions violate PAR002/PAR001 (no charge in sight); the
interprocedural charge oracle resolves ``meter.bump`` to
:class:`Meter.bump`, which charges through ``self.tracker``, so the
strict analyzer reports nothing here.
"""


class Meter:
    def __init__(self, tracker):
        self.tracker = tracker

    def bump(self, n):
        self.tracker.add_work(float(n))


def process(graph, meter):
    assert meter.tracker is not None
    total = 0
    for v in range(graph.n):
        meter.bump(1)
        total += v
    return total


def run_region(tracker, items, meter):
    with tracker.parallel(len(items)) as region:
        for _item in items:
            with region.task():
                meter.bump(1)
