"""Scalar oracles for the paired engine fixtures."""


def scalar_sum(values, tracker):
    total = 0.0
    for v in values:
        total += float(v)
        tracker.add_work(1.0)
    return total
