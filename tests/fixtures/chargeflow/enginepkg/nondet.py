"""Shape: nondeterminism hazards in cost-accounted code (PAR006 x3)."""

import numpy as np


def hazards(values, mapping, tracker):
    tracker.add_work(1.0)
    order = np.argsort(values)
    total = 0
    for key in set(mapping):
        total += key
    rng = np.random.default_rng()
    return order, total, rng


def stable_ok(values, tracker):
    tracker.add_work(1.0)
    return np.argsort(values, kind="stable")
