"""Tests for union-find and the connected-nucleus hierarchy."""

import numpy as np
import pytest

from repro.analysis.hierarchy import build_hierarchy
from repro.core.decomp import arb_nucleus_decomp
from repro.graph.csr import CSRGraph
from repro.graph.generators import (complete_graph, figure1_graph,
                                    planted_partition)
from repro.parallel.unionfind import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert not uf.same(0, 1)

    def test_union_merges(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.same(0, 1)
        assert uf.n_components == 4

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.n_components == 3

    def test_transitivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.same(0, 2)
        assert not uf.same(2, 4)

    def test_components(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        groups = sorted(sorted(g) for g in uf.components().values())
        assert groups == [[0, 1], [2, 3], [4]]

    def test_find_charges_ascent_and_compression(self):
        from repro.parallel.runtime import CostTracker
        tracker = CostTracker()
        uf = UnionFind(4, tracker)
        uf.parent[:] = [1, 2, 3, 3]  # a path 0 -> 1 -> 2 -> 3
        uf.find(0)
        # 4 ascent steps (0, 1, 2, then the root check at 3) plus 2
        # compression writes repointing 0 and 1 at the root (2 already
        # points there).
        assert tracker.work == 6.0
        uf.find(0)
        # The path is compressed: 2 ascent steps, nothing to rewrite.
        assert tracker.work == 8.0
        assert list(uf.parent) == [3, 3, 3, 3]

    def test_find_on_root_charges_one(self):
        from repro.parallel.runtime import CostTracker
        tracker = CostTracker()
        uf = UnionFind(3, tracker)
        uf.find(2)
        assert tracker.work == 1.0

    def test_large_random_against_networkx(self):
        import networkx as nx
        rng = np.random.default_rng(3)
        pairs = [(int(a), int(b)) for a, b in rng.integers(0, 200, (300, 2))]
        uf = UnionFind(200)
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(range(200))
        for a, b in pairs:
            uf.union(a, b)
            nx_graph.add_edge(a, b)
        assert uf.n_components == nx.number_connected_components(nx_graph)


class TestHierarchyFigure1:
    """The paper's Figure 1 labels each k-(3,4) nucleus explicitly."""

    @pytest.fixture(scope="class")
    def hierarchy(self):
        graph = figure1_graph()
        return build_hierarchy(graph, arb_nucleus_decomp(graph, 3, 4))

    def test_level_counts(self, hierarchy):
        # Level 0: one nucleus per s-clique-connected component of all 14
        # triangles; cdg shares no 4-clique with anything -> isolated.
        level0 = hierarchy.at_level(0)
        sizes = sorted(n.size for n in level0)
        assert sizes == [1, 13]

    def test_level_1_is_the_13_triangle_component(self, hierarchy):
        level1 = hierarchy.at_level(1)
        assert len(level1) == 1
        assert level1[0].size == 13  # everything but cdg

    def test_level_2_nucleus(self, hierarchy):
        level2 = hierarchy.at_level(2)
        assert len(level2) == 1
        assert level2[0].size == 10  # the triangles of {a..e}
        assert level2[0].vertices == {0, 1, 2, 3, 4}

    def test_parent_links_nest(self, hierarchy):
        level2 = hierarchy.at_level(2)[0]
        parent = next(n for n in hierarchy.nuclei
                      if n.node_id == level2.parent_id)
        assert parent.level == 1
        assert set(level2.members) <= set(parent.members)

    def test_roots_and_leaves(self, hierarchy):
        assert all(n.level == 0 for n in hierarchy.roots())
        leaf_levels = {n.level for n in hierarchy.leaves()}
        assert 2 in leaf_levels


class TestHierarchyProperties:
    def test_members_partition_each_level(self):
        graph = planted_partition(50, 4, 0.5, 0.02, seed=2)
        result = arb_nucleus_decomp(graph, 2, 3)
        hierarchy = build_hierarchy(graph, result)
        cores = result.as_dict()
        for level in sorted({c for c in cores.values()}):
            survivors = {cl for cl, c in cores.items() if c >= level}
            members = [cl for n in hierarchy.at_level(level)
                       for cl in n.members]
            assert sorted(members) == sorted(survivors)

    def test_disconnected_cliques_make_separate_nuclei(self):
        left = complete_graph(5).edges()
        right = complete_graph(5).edges() + 5
        graph = CSRGraph.from_edges(10, np.concatenate([left, right]))
        hierarchy = build_hierarchy(graph, arb_nucleus_decomp(graph, 2, 3))
        top_level = max(n.level for n in hierarchy.nuclei)
        tops = hierarchy.at_level(top_level)
        assert len(tops) == 2
        assert {frozenset(n.vertices) for n in tops} == \
            {frozenset(range(5)), frozenset(range(5, 10))}

    def test_single_clique_single_chain(self):
        graph = complete_graph(6)
        hierarchy = build_hierarchy(graph, arb_nucleus_decomp(graph, 2, 3))
        assert all(len(hierarchy.at_level(n.level)) == 1
                   for n in hierarchy.nuclei)
