"""Tests for the O(alpha)-orientation algorithms."""

import numpy as np
import pytest

from repro.graph.csr import DirectedGraph
from repro.graph.generators import (complete_graph, cycle_graph, erdos_renyi,
                                    planted_partition, star_graph)
from repro.cliques.orient import (arboricity_bounds, barenboim_elkin_order,
                                  degeneracy, degeneracy_order, degree_order,
                                  goodrich_pszona_order, orient,
                                  orientation_rank)
from repro.parallel.runtime import CostTracker

ALL_METHODS = ["degeneracy", "goodrich_pszona", "barenboim_elkin", "degree"]


@pytest.mark.parametrize("method", ALL_METHODS)
class TestPermutation:
    def test_rank_is_permutation(self, method, community60):
        rank = orientation_rank(community60, method)
        assert sorted(rank) == list(range(community60.n))

    def test_every_edge_oriented_once(self, method, community60):
        dg, rank = orient(community60, method)
        assert dg.m == community60.m


class TestDegeneracy:
    def test_complete_graph(self):
        assert degeneracy(complete_graph(7)) == 6

    def test_cycle(self):
        assert degeneracy(cycle_graph(10)) == 2

    def test_star_is_one(self):
        assert degeneracy(star_graph(20)) == 1

    def test_order_peels_low_degree_first(self):
        g = star_graph(5)
        rank = degeneracy_order(g)
        # The hub peels only once its degree drops to 1: at earliest it
        # ties with the final leaf, so it ranks in the last two positions.
        assert rank[0] >= g.n - 2

    def test_out_degree_bounded_by_degeneracy(self, community60):
        rank = degeneracy_order(community60)
        dg = DirectedGraph.orient(community60, rank)
        # Smallest-last order gives max out-degree exactly the degeneracy.
        d = dg.max_out_degree
        for v in range(community60.n):
            assert dg.out_degree(v) <= d


class TestParallelOrders:
    @pytest.mark.parametrize("order_fn", [goodrich_pszona_order,
                                          barenboim_elkin_order])
    def test_out_degree_near_degeneracy(self, order_fn, community60):
        d = degeneracy(community60)
        rank = order_fn(community60)
        dg = DirectedGraph.orient(community60, rank)
        # (2 + eps)-approximations of the optimal orientation.
        assert dg.max_out_degree <= max(4, 4 * d)

    def test_rounds_logarithmic(self):
        g = erdos_renyi(500, 2000, seed=5)
        tracker = CostTracker()
        goodrich_pszona_order(g, tracker=tracker)
        assert tracker.rounds <= 4 * int(np.ceil(np.log2(g.n))) + 4

    def test_barenboim_elkin_rounds(self):
        g = planted_partition(300, 10, 0.3, 0.01, seed=2)
        tracker = CostTracker()
        barenboim_elkin_order(g, tracker=tracker)
        assert tracker.rounds <= 4 * int(np.ceil(np.log2(g.n))) + 4


class TestDegreeOrder:
    def test_sorted_by_degree(self, star9):
        rank = degree_order(star9)
        assert rank[0] == star9.n - 1  # the hub has max degree


class TestIdentityOrder:
    def test_is_identity(self, community60):
        from repro.cliques.orient import identity_order
        assert list(identity_order(community60)) == list(range(community60.n))

    def test_looser_than_degeneracy_on_skewed_graph(self):
        """Identity order gives hubs (low rMAT ids) huge out-degrees ---
        the inefficiency of counting without an O(alpha) orientation."""
        from repro.cliques.orient import identity_order
        from repro.graph.generators import rmat_graph
        g = rmat_graph(9, 8, seed=1)
        loose = DirectedGraph.orient(g, identity_order(g)).max_out_degree
        tight = DirectedGraph.orient(g, degeneracy_order(g)).max_out_degree
        assert loose > 2 * tight


class TestArboricity:
    def test_bounds_order(self, community60):
        lower, upper = arboricity_bounds(community60)
        assert lower <= upper

    def test_complete_graph_bounds(self):
        lower, upper = arboricity_bounds(complete_graph(10))
        # alpha(K10) = 5; degeneracy = 9.
        assert lower == pytest.approx(45 / 9)
        assert upper == 9


def test_unknown_method_rejected(community60):
    with pytest.raises(ValueError):
        orientation_rank(community60, "bogus")
