"""Tests for the multi-level set store (the Section 5.1 generalization)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.setstore import MultiLevelSetStore, flat_memory_units


class TestBasics:
    def test_insert_get(self):
        store = MultiLevelSetStore(levels=2)
        store.insert((3, 1, 2), 5.0)
        assert store.get((1, 2, 3)) == 5.0  # order-insensitive
        assert len(store) == 1

    def test_contains(self):
        store = MultiLevelSetStore()
        store.insert((1, 2))
        assert (2, 1) in store
        assert (1, 3) not in store

    def test_add(self):
        store = MultiLevelSetStore()
        store.insert((1, 2, 3), 1.0)
        assert store.add((1, 2, 3), 2.5) == 3.5

    def test_add_missing_raises(self):
        store = MultiLevelSetStore()
        with pytest.raises(KeyError):
            store.add((1, 2), 1.0)

    def test_overwrite_does_not_grow(self):
        store = MultiLevelSetStore()
        store.insert((1, 2), 1.0)
        store.insert((1, 2), 9.0)
        assert len(store) == 1
        assert store.get((1, 2)) == 9.0

    def test_duplicate_elements_rejected(self):
        store = MultiLevelSetStore()
        with pytest.raises(ValueError):
            store.insert((1, 1, 2))

    def test_variable_sizes(self):
        store = MultiLevelSetStore(levels=3)
        store.insert((5,), 1.0)
        store.insert((5, 6), 2.0)
        store.insert((5, 6, 7, 8), 3.0)
        assert store.get((5,)) == 1.0
        assert store.get((5, 6)) == 2.0
        assert store.get((5, 6, 7, 8)) == 3.0

    def test_items_round_trip(self):
        store = MultiLevelSetStore(levels=3)
        data = {(1, 2, 3): 1.0, (1, 2, 4): 2.0, (2, 3): 3.0}
        for key, value in data.items():
            store.insert(key, value)
        assert dict(store.items()) == data

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            MultiLevelSetStore(levels=0)


class TestMemoryAccounting:
    def test_overlapping_sets_save_memory(self):
        """Hyperedges sharing a prefix (the paper's hypergraph use case)."""
        hyperedges = [(0, i, i + 1, i + 2) for i in range(1, 40, 3)]
        store = MultiLevelSetStore(levels=2)
        for edge in hyperedges:
            store.insert(edge)
        assert store.memory_units < flat_memory_units(hyperedges)

    def test_disjoint_sets_cost_more_nested(self):
        """Without overlap, trie pointers are pure overhead -- mirroring
        the paper's observation that savings depend on the skew."""
        sets = [(10 * i, 10 * i + 1) for i in range(20)]
        store = MultiLevelSetStore(levels=2)
        for s in sets:
            store.insert(s)
        assert store.memory_units > flat_memory_units(sets)

    def test_matches_clique_table_convention(self):
        """Figure 3's two-level numbers, modulo the array-vs-hash top level:
        14 triangles, intermediate entries cost 2, suffixes cost 2."""
        from repro.cliques.listing import collect_cliques
        from repro.cliques.orient import orient
        from repro.graph.generators import figure1_graph
        dg, _ = orient(figure1_graph(), "degeneracy")
        triangles = [tuple(sorted(map(int, row)))
                     for row in collect_cliques(dg, 3)]
        store = MultiLevelSetStore(levels=2)
        for tri in triangles:
            store.insert(tri)
        # 3 distinct first vertices x 2 + 14 suffixes x 2 = 34.
        assert store.memory_units == 34


@settings(max_examples=40, deadline=None)
@given(st.lists(st.frozensets(st.integers(0, 30), min_size=1, max_size=6),
                max_size=40),
       st.integers(1, 4))
def test_model_equivalence(sets, levels):
    """The store behaves like a dict keyed by sorted tuples."""
    store = MultiLevelSetStore(levels=levels)
    model = {}
    for k, s in enumerate(sets):
        key = tuple(sorted(s))
        store.insert(key, float(k))
        model[key] = float(k)
    assert len(store) == len(model)
    for key, value in model.items():
        assert store.get(key) == value
    assert dict(store.items()) == model
