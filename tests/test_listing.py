"""Tests for REC-LIST-CLIQUES (Algorithm 1)."""

from itertools import combinations
from math import comb

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cliques.listing import (collect_cliques, count_cliques,
                                   list_cliques, rec_list_cliques)
from repro.cliques.orient import orient
from repro.graph.csr import CSRGraph
from repro.graph.generators import complete_graph, erdos_renyi, figure1_graph
from repro.parallel.runtime import CostTracker


def brute_count(graph: CSRGraph, c: int) -> int:
    total = 0
    for combo in combinations(range(graph.n), c):
        if all(graph.has_edge(u, v) for u, v in combinations(combo, 2)):
            total += 1
    return total


class TestCompleteGraphs:
    @pytest.mark.parametrize("n,c", [(5, 3), (6, 3), (6, 4), (7, 5), (7, 7)])
    def test_choose_counts(self, n, c):
        dg, _ = orient(complete_graph(n), "degeneracy")
        assert count_cliques(dg, c) == comb(n, c)

    def test_single_vertices(self):
        dg, _ = orient(complete_graph(4), "degeneracy")
        assert count_cliques(dg, 1) == 4

    def test_edges(self):
        dg, _ = orient(complete_graph(5), "degeneracy")
        assert count_cliques(dg, 2) == 10


class TestFigure1:
    @pytest.mark.parametrize("c,expected", [(3, 14), (4, 6), (5, 1), (6, 0)])
    def test_paper_counts(self, c, expected):
        dg, _ = orient(figure1_graph(), "degeneracy")
        assert count_cliques(dg, c) == expected


class TestCallback:
    def test_cliques_are_real_cliques(self, community60):
        dg, _ = orient(community60, "goodrich_pszona")
        seen = []
        list_cliques(dg, 3, seen.append)
        for clique in seen:
            for u, v in combinations(clique, 2):
                assert community60.has_edge(u, v)

    def test_each_clique_once(self, community60):
        dg, _ = orient(community60, "goodrich_pszona")
        seen = set()
        def record(clique):
            key = tuple(sorted(clique))
            assert key not in seen
            seen.add(key)
        list_cliques(dg, 3, record)

    def test_collect_shape(self, community60):
        dg, _ = orient(community60, "degeneracy")
        rows = collect_cliques(dg, 4)
        assert rows.ndim == 2 and rows.shape[1] == 4

    def test_collect_empty(self, ring12):
        dg, _ = orient(ring12, "degeneracy")
        rows = collect_cliques(dg, 3)
        assert rows.shape == (0, 3)


class TestRecListFromBase:
    """rec_list_cliques completing cliques from a fixed base (UPDATE's use)."""

    def test_completion_from_edge(self, fig1):
        # Complete triangles from edge (a, b): candidates are N(a) /\ N(b).
        dg, _ = orient(fig1, "degeneracy")
        candidates = np.intersect1d(fig1.neighbors(0), fig1.neighbors(1))
        found = []
        rec_list_cliques(dg, candidates, 1, (0, 1), found.append)
        assert sorted(found) == [(0, 1, 2), (0, 1, 3), (0, 1, 4), (0, 1, 5)]

    def test_two_level_completion(self, fig1):
        # Complete 4-cliques from edge (a, b): two more vertices needed.
        dg, _ = orient(fig1, "degeneracy")
        candidates = np.intersect1d(fig1.neighbors(0), fig1.neighbors(1))
        found = []
        rec_list_cliques(dg, candidates, 2, (0, 1), found.append)
        assert len(found) == 4  # abcd, abce, abde, abef
        assert all(len(set(c)) == 4 for c in found)

    def test_zero_levels_applies_once(self):
        dg, _ = orient(complete_graph(3), "degeneracy")
        found = []
        rec_list_cliques(dg, np.array([], dtype=np.int64), 0, (0, 1), found.append)
        assert found == [(0, 1)]


class TestCostAccounting:
    def test_cliques_counter(self, community60):
        tracker = CostTracker()
        dg, _ = orient(community60, "degeneracy")
        total = count_cliques(dg, 3, tracker)
        assert tracker.total.cliques_enumerated == total

    def test_work_scales_with_graph(self):
        small, large = erdos_renyi(50, 100, seed=1), erdos_renyi(400, 3000, seed=1)
        costs = []
        for g in (small, large):
            t = CostTracker()
            dg, _ = orient(g, "degeneracy")
            count_cliques(dg, 3, t)
            costs.append(t.work)
        assert costs[1] > costs[0]

    def test_invalid_c(self, community60):
        dg, _ = orient(community60, "degeneracy")
        with pytest.raises(ValueError):
            list_cliques(dg, 0, lambda c: None)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("c", [3, 4, 5])
    def test_random_graph_counts(self, c, community60):
        nx_graph = nx.Graph(list(map(tuple, community60.edges())))
        expected = sum(1 for clique in nx.enumerate_all_cliques(nx_graph)
                       if len(clique) == c)
        dg, _ = orient(community60, "goodrich_pszona")
        assert count_cliques(dg, c) == expected


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10**6), st.integers(3, 5))
def test_property_counts_match_bruteforce(seed, c):
    graph = erdos_renyi(14, 40, seed=seed)
    dg, _ = orient(graph, "degeneracy")
    assert count_cliques(dg, c) == brute_count(graph, c)
