"""Property-based tests for the multi-level clique table."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tables import CliqueTable


@st.composite
def clique_sets(draw):
    """A random set of r-cliques over a random vertex universe."""
    n = draw(st.integers(6, 60))
    r = draw(st.integers(1, 4))
    universe = list(range(n))
    count = draw(st.integers(0, 25))
    cliques = set()
    for _ in range(count):
        members = draw(st.permutations(universe))[:r]
        cliques.add(tuple(sorted(members)))
    return n, r, sorted(cliques)


def layout_strategy(r):
    return st.builds(
        dict,
        levels=st.integers(1, r),
        contiguous=st.booleans(),
        stored=st.booleans(),
        hash_style=st.booleans(),
    )


@settings(max_examples=60, deadline=None)
@given(data=clique_sets(), layout=st.data())
def test_round_trip_any_layout(data, layout):
    n, r, cliques = data
    params = layout.draw(layout_strategy(r))
    levels = params["levels"]
    style = "hash" if (params["hash_style"] or levels != 2) else "array"
    contiguous = params["contiguous"] or False
    inverse = "stored_pointers" if (params["stored"] and contiguous
                                    and levels > 1) else "binary_search"
    if levels == 1:
        contiguous = False
        inverse = "binary_search"
    table = CliqueTable(n, r, np.asarray(cliques, dtype=np.int64).reshape(-1, r),
                        levels=levels, style=style, contiguous=contiguous,
                        inverse_map=inverse)
    # Every inserted clique is found, decodes to itself, and counts work.
    assert len(table) == len(cliques)
    for clique in cliques:
        cell = table.cell_of(clique)
        assert cell >= 0
        assert table.decode(cell) == clique
        table.add_count_at(cell, 2.0)
        assert table.count_at(cell) == 2.0
    # Cells are unique per clique.
    cells = [table.cell_of(clique) for clique in cliques]
    assert len(set(cells)) == len(cells)
    # Absent keys are reported absent.
    for clique in cliques[:3]:
        shifted = tuple(sorted({(v + 1) % n for v in clique}))
        if len(shifted) == r and shifted not in set(cliques):
            assert table.cell_of(shifted) == -1 or \
                table.decode(table.cell_of(shifted)) == shifted


@settings(max_examples=30, deadline=None)
@given(data=clique_sets())
def test_memory_units_formula(data):
    """Memory units follow the documented Figures 3-4 convention."""
    n, r, cliques = data
    rows = np.asarray(cliques, dtype=np.int64).reshape(-1, r)
    one = CliqueTable(n, r, rows, levels=1)
    assert one.memory_units == len(cliques) * r
    if r >= 2:
        two = CliqueTable(n, r, rows, levels=2, style="array")
        assert two.memory_units == n + len(cliques) * (r - 1)
        multi = CliqueTable(n, r, rows, levels=2, style="hash")
        distinct_firsts = len({clique[0] for clique in cliques})
        assert multi.memory_units == \
            2 * distinct_firsts + len(cliques) * (r - 1)
