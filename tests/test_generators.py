"""Tests for the synthetic graph generators (repro.graph.generators)."""

import numpy as np
import pytest

from repro.cliques.counting import total_clique_count
from repro.graph.generators import (barabasi_albert, complete_graph,
                                    cycle_graph, embed_cliques, erdos_renyi,
                                    figure1_graph, planted_partition,
                                    rmat_graph, star_graph)


class TestRmat:
    def test_size(self):
        g = rmat_graph(8, 8, seed=1)
        assert g.n == 256
        assert 0 < g.m <= 8 * 256  # duplicates removed

    def test_deterministic(self):
        a = rmat_graph(7, 4, seed=9)
        b = rmat_graph(7, 4, seed=9)
        assert np.array_equal(a.edges(), b.edges())

    def test_seed_changes_graph(self):
        a = rmat_graph(7, 4, seed=1)
        b = rmat_graph(7, 4, seed=2)
        assert not np.array_equal(a.edges(), b.edges())

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            rmat_graph(5, 2, a=0.9, b=0.9, c=0.1, d=0.1)

    def test_skew(self):
        # The paper's parameters (a=0.5) concentrate edges on low ids.
        g = rmat_graph(10, 8, seed=3)
        degs = g.degrees
        assert degs[:256].sum() > degs[768:].sum()

    def test_density_grows_with_edge_factor(self):
        sparse = rmat_graph(9, 4, seed=5)
        dense = rmat_graph(9, 16, seed=5)
        assert dense.m > sparse.m


class TestClassicModels:
    def test_erdos_renyi_edge_count(self):
        g = erdos_renyi(200, 400, seed=1)
        assert g.n == 200
        assert g.m <= 400

    def test_barabasi_albert(self):
        g = barabasi_albert(100, 3, seed=1)
        assert g.n == 100
        # Later vertices attach exactly 3 edges (minus collisions with dups).
        assert g.m >= 3 * 90

    def test_barabasi_albert_validates(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 5)

    def test_planted_partition_clusters(self):
        g = planted_partition(120, 6, p_in=0.6, p_out=0.001, seed=2)
        assert g.n == 120
        # Dense blocks produce triangles; a pure sparse G(n,p) of the same
        # total density would have almost none.
        assert total_clique_count(g, 3) > 50

    def test_planted_partition_deterministic(self):
        a = planted_partition(50, 4, 0.5, 0.01, seed=8)
        b = planted_partition(50, 4, 0.5, 0.01, seed=8)
        assert np.array_equal(a.edges(), b.edges())


class TestSmallGraphs:
    def test_complete(self):
        g = complete_graph(5)
        assert g.m == 10
        assert all(g.degree(v) == 4 for v in range(5))

    def test_cycle(self):
        g = cycle_graph(8)
        assert g.m == 8
        assert all(g.degree(v) == 2 for v in range(8))

    def test_star(self):
        g = star_graph(6)
        assert g.m == 6
        assert g.degree(0) == 6


class TestFigure1:
    """The paper specifies this graph's clique structure exactly."""

    def test_shape(self):
        g = figure1_graph()
        assert g.n == 7
        assert g.m == 15

    def test_triangle_count(self):
        assert total_clique_count(figure1_graph(), 3) == 14

    def test_four_clique_count(self):
        assert total_clique_count(figure1_graph(), 4) == 6

    def test_five_clique_count(self):
        assert total_clique_count(figure1_graph(), 5) == 1


class TestEmbedCliques:
    def test_adds_clique(self):
        g = cycle_graph(20)
        h = embed_cliques(g, 1, 6, seed=4)
        assert h.m > g.m
        assert total_clique_count(h, 6) >= 1

    def test_preserves_existing_edges(self):
        g = cycle_graph(20)
        h = embed_cliques(g, 2, 4, seed=4)
        for u, v in g.edges():
            assert h.has_edge(int(u), int(v))
