"""Exploring a graph's nucleus structure across (r,s) values.

Uses the analysis toolkit on one dataset to answer the questions an
analyst actually asks after a decomposition:

* how fast does the subgraph densify as the core level rises
  (``density_profile``)?
* how many r-cliques survive at each level (``core_spectrum``)?
* do different (r,s) choices agree about where the dense region is
  (``overlap_matrix``)?
* is a deeper s feasible before running it (sampling-based clique-count
  estimation, after Eden et al.)?

Run with:  python examples/nucleus_explorer.py
"""

from repro import arb_nucleus_decomp, load_dataset
from repro.analysis import core_spectrum, density_profile, overlap_matrix
from repro.cliques.approx import approximate_clique_count

RS_CHOICES = [(1, 2), (2, 3), (2, 4), (3, 4)]


def _mixed_structure_graph():
    """Sparse background + a dense bipartite block + a planted clique."""
    import numpy as np

    from repro import CSRGraph
    from repro.graph.generators import erdos_renyi

    rng = np.random.default_rng(3)
    base = erdos_renyi(200, 400, seed=3)
    edges = [tuple(e) for e in base.edges()]
    for u in range(100, 135):  # bipartite block: high degree, no triangles
        for v in range(135, 170):
            if rng.random() < 0.6:
                edges.append((u, v))
    clique = range(10, 22)  # the genuinely clique-dense region
    for i, u in enumerate(clique):
        for v in list(clique)[i + 1:]:
            edges.append((u, v))
    return CSRGraph.from_edges(200, edges)


def main() -> None:
    graph = load_dataset("dblp")
    print(f"dblp surrogate: n={graph.n}, m={graph.m}\n")

    print("== feasibility: estimated clique counts (20% edge sample) ==")
    for c in (3, 4, 5):
        estimate = approximate_clique_count(graph, c, sample_fraction=0.2)
        print(f"  ~{estimate.estimate:10.0f} {c}-cliques "
              f"(from {estimate.samples} sampled edges)")

    results = []
    for r, s in RS_CHOICES:
        results.append(arb_nucleus_decomp(graph, r, s))

    print("\n== densification along the (2,3) peeling ==")
    truss = results[1]
    print(f"  {'level':>5}  {'vertices':>8}  {'edges':>6}  {'density':>8}")
    for row in density_profile(graph, truss):
        print(f"  {row['level']:>5}  {row['vertices']:>8}  "
              f"{row['edges']:>6}  {row['density']:>8.3f}")

    print("\n== survivors per level, (3,4) ==")
    spectrum = core_spectrum(results[3])
    for level, count in spectrum.items():
        bar = "#" * max(1, count * 40 // max(spectrum.values()))
        print(f"  core >= {level}: {count:6d} {bar}")

    print("\n== agreement of top-level regions across (r,s) ==")
    # On a graph with a high-degree but triangle-poor region, the shallow
    # decompositions disagree with the deep ones about where the "dense"
    # part is; dblp's planted cliques dominate everything equally, so use
    # a mixed graph for this comparison.
    mixed = _mixed_structure_graph()
    print(f"  (on a mixed graph: n={mixed.n}, m={mixed.m}, with a dense "
          f"bipartite block and a planted clique)")
    results = [arb_nucleus_decomp(mixed, r, s) for r, s in RS_CHOICES]
    matrix = overlap_matrix(results)
    labels = [f"({r},{s})" for r, s in RS_CHOICES]
    print("        " + "  ".join(f"{lab:>6}" for lab in labels))
    for label, row in zip(labels, matrix):
        cells = "  ".join(f"{value:6.2f}" for value in row)
        print(f"  {label:>6}{cells}")
    print("\nHigh off-diagonal overlap means those (r,s) find the same")
    print("dense region; low overlap means the deeper decomposition is")
    print("isolating structure the shallower one cannot see.")

    print("\n== connectivity-refined hierarchy (3,4) on the mixed graph ==")
    # The original nucleus definition additionally splits each level into
    # s-clique-connected components (paper Section 3, footnote 2); the
    # analysis package provides that refinement as post-processing.
    from repro.analysis import build_hierarchy

    hierarchy = build_hierarchy(mixed, results[3])
    for level in sorted({n.level for n in hierarchy.nuclei}):
        nuclei = hierarchy.at_level(level)
        sizes = sorted((n.size for n in nuclei), reverse=True)
        print(f"  level {level}: {len(nuclei)} connected "
              f"{'nucleus' if len(nuclei) == 1 else 'nuclei'} "
              f"(triangle counts: {sizes[:6]}"
              f"{' ...' if len(sizes) > 6 else ''})")


if __name__ == "__main__":
    main()
