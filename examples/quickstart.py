"""Quickstart: compute a nucleus decomposition and read the results.

Runs the paper's worked example ((3,4) on the Figure 1 graph) and then a
k-truss-style (2,3) decomposition on the dblp surrogate dataset, printing
the core-number histogram and the densest nucleus found.

Run with:  python examples/quickstart.py
"""

from repro import NucleusConfig, arb_nucleus_decomp, figure1_graph, load_dataset


def figure1_walkthrough() -> None:
    """Reproduce the paper's Figure 1/2 walkthrough exactly."""
    graph = figure1_graph()
    result = arb_nucleus_decomp(graph, r=3, s=4)
    names = "abcdefg"
    print("Figure 1 example, (3,4) nucleus decomposition")
    print(f"  triangles: {result.n_r_cliques}, 4-cliques: {result.n_s_cliques}")
    print(f"  peeling rounds (rho): {result.rho}, max core: {result.max_core}")
    for clique, core in sorted(result.as_dict().items(),
                               key=lambda kv: (kv[1], kv[0])):
        label = "".join(names[v] for v in clique)
        print(f"    triangle {label}: (3,4)-core {core}")
    print()


def dblp_truss() -> None:
    """(2,3) nucleus (k-truss) on the dblp surrogate."""
    graph = load_dataset("dblp")
    config = NucleusConfig.optimal(2, 3)
    result = arb_nucleus_decomp(graph, r=2, s=3, config=config)
    print(f"dblp surrogate: n={graph.n}, m={graph.m}")
    print(f"  edges (2-cliques): {result.n_r_cliques}, "
          f"triangles: {result.n_s_cliques}")
    print(f"  rho: {result.rho}, max trussness: {result.max_core}")
    print("  core histogram (trussness -> #edges):")
    for core, count in sorted(result.core_histogram().items()):
        print(f"    {core:3d}: {count}")
    # The densest nucleus: vertices of edges at the maximum core.
    cores = result.as_dict()
    densest = sorted({v for edge, c in cores.items()
                      if c == result.max_core for v in edge})
    print(f"  densest nucleus spans {len(densest)} vertices: "
          f"{densest[:20]}{' ...' if len(densest) > 20 else ''}")


if __name__ == "__main__":
    figure1_walkthrough()
    dblp_truss()
