"""Exploring the paper's optimizations and the simulated parallel machine.

Shows the instrumentation angle of this reproduction: every run returns
work/span/round/contention counters, a memory-unit footprint for the clique
table T, and simulated running times on any thread count (Brent's bound
plus barrier/contention/cache terms -- see repro.parallel.runtime).

The script compares the unoptimized configuration against the paper's
optimal one on the skitter surrogate, prints where the time went, and
plots (as text) the self-relative speedup curve of Figure 14.

Run with:  python examples/tuning_and_scaling.py
"""

from repro import CostTracker, MachineModel, NucleusConfig, load_dataset
from repro.core.decomp import arb_nucleus_decomp

THREADS = (1, 2, 4, 8, 16, 30, 60)


def run(graph, r, s, config, label):
    tracker = CostTracker()
    result = arb_nucleus_decomp(graph, r, s, config, tracker)
    machine = MachineModel()
    t1 = machine.time(tracker, 1)
    t60 = machine.time(tracker, 60)
    print(f"{label:>28}: work={tracker.work:12.0f}  span={tracker.span:8.0f}"
          f"  rounds={tracker.rounds:4d}  contention={tracker.total.contention:8.0f}")
    print(f"{'':>28}  T(T1)={t1:12.0f}  T(60)={t60:10.0f}  "
          f"speedup={t1 / t60:5.1f}x  T-memory={result.table_memory_units}u")
    return tracker, result


def main() -> None:
    graph = load_dataset("skitter")
    print(f"skitter surrogate: n={graph.n}, m={graph.m}\n")

    print("== (2,3) nucleus decomposition: unoptimized vs optimal ==")
    unopt, _ = run(graph, 2, 3, NucleusConfig.unoptimized(), "unoptimized")
    best, _ = run(graph, 2, 3, NucleusConfig.optimal(2, 3), "paper-optimal")
    machine = MachineModel()
    gain = machine.time(unopt, 60) / machine.time(best, 60)
    print(f"\ncombined optimizations: {gain:.2f}x faster at 60 threads "
          f"(the paper reports up to 5.10x at its scale)\n")

    print("== Figure 14-style scalability, (3,4) on skitter ==")
    tracker = CostTracker()
    arb_nucleus_decomp(graph, 3, 4, NucleusConfig.optimal(3, 4), tracker)
    t1 = machine.time(tracker, 1)
    for p in THREADS:
        speedup = t1 / machine.time(tracker, p)
        bar = "#" * int(round(speedup))
        print(f"  {p:3d} threads: {speedup:5.2f}x  {bar}")
    print("\nHyper-threads past the 30 physical cores contribute at a")
    print("discounted rate, flattening the curve exactly as in Figure 14.")


if __name__ == "__main__":
    main()
