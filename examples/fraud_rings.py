"""Fraud-ring detection in a synthetic transaction graph.

Collusive fraud (fake reviews, money muling, bot farms) shows up as small,
unusually dense subgraphs: every participant interacts with most others.
Spam/fraud detection is one of the dense-subgraph applications motivating
the paper's introduction (Gibson et al.; Angel et al.).

This example builds a transaction graph where honest users transact along
a heavy-tailed random pattern while fraud rings transact among themselves,
then ranks vertices by their maximum (2,4)-core number --- edges inside a
ring participate in many 4-cliques, honest edges almost never do --- and
reports detection quality at each threshold.

Run with:  python examples/fraud_rings.py
"""

from collections import defaultdict

import numpy as np

from repro import CSRGraph, arb_nucleus_decomp
from repro.analysis import HierarchyIndex, nucleus_hierarchy
from repro.graph.generators import rmat_graph


def build_transaction_graph(seed: int = 11):
    rng = np.random.default_rng(seed)
    base = rmat_graph(9, 5, seed=seed)  # heavy-tailed honest traffic
    n = base.n
    edges = [tuple(e) for e in base.edges()]
    rings = []
    for _ in range(4):
        members = rng.choice(n, size=9, replace=False)
        rings.append({int(v) for v in members})
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if rng.random() < 0.9:
                    edges.append((int(u), int(v)))
    fraud = set().union(*rings)
    return CSRGraph.from_edges(n, edges), fraud, rings


def vertex_scores(result) -> dict[int, int]:
    """Score each vertex by the max (2,4)-core of any incident edge."""
    score: dict[int, int] = defaultdict(int)
    for (u, v), core in result.as_dict().items():
        score[u] = max(score[u], core)
        score[v] = max(score[v], core)
    return score


def ring_drilldown(graph, result, rings) -> None:
    """Drill into each planted ring through the nucleus query service.

    The hierarchy refines the threshold sweep: instead of one global
    cutoff, each ring is recovered as the *connected* nucleus around any
    one of its transactions --- the "densest nucleus containing edge
    (u, v)" query, answered from the precomputed indexes.
    """
    hierarchy = nucleus_hierarchy(graph, result, engine="batch",
                                  listing_engine="batch")
    index = HierarchyIndex(hierarchy)
    print("\nring drill-down via the nucleus query service "
          f"[{len(hierarchy)} nuclei, top level "
          f"{max(index.levels())}]:")
    for number, ring in enumerate(rings):
        u, v = sorted(ring)[:2]
        nucleus = index.densest_containing_edge(u, v)
        if nucleus is None:
            print(f"  ring {number}: transaction ({u}, {v}) is in no "
                  f"nucleus")
            continue
        vertices = nucleus.vertices
        caught = len(vertices & ring)
        print(f"  ring {number}: densest nucleus around transaction "
              f"({u}, {v}) sits at level {nucleus.level}, covers "
              f"{caught}/{len(ring)} members with "
              f"{len(vertices) - caught} outsiders")


def main() -> None:
    graph, fraud, rings = build_transaction_graph()
    print(f"transaction graph: n={graph.n}, m={graph.m}, "
          f"{len(rings)} rings, {len(fraud)} fraudulent accounts")
    result = arb_nucleus_decomp(graph, r=2, s=4)
    score = vertex_scores(result)
    thresholds = sorted({c for c in score.values() if c > 0})
    print(f"\n{'threshold':>9}  {'flagged':>7}  {'precision':>9}  "
          f"{'recall':>7}")
    for threshold in thresholds:
        flagged = {v for v, c in score.items() if c >= threshold}
        hits = len(flagged & fraud)
        precision = hits / len(flagged) if flagged else 0.0
        recall = hits / len(fraud)
        print(f"{threshold:>9}  {len(flagged):>7}  {precision:>9.2f}  "
              f"{recall:>7.2f}")
    best = max(thresholds,
               key=lambda t: min(
                   len({v for v, c in score.items() if c >= t} & fraud)
                   / max(1, len({v for v, c in score.items() if c >= t})),
                   len({v for v, c in score.items() if c >= t} & fraud)
                   / len(fraud)))
    ring_drilldown(graph, result, rings)
    flagged = {v for v, c in score.items() if c >= best}
    print(f"\nbest threshold {best}: flags {len(flagged)} accounts, "
          f"{len(flagged & fraud)} of them truly fraudulent")


if __name__ == "__main__":
    main()
