"""Dense-community recovery: why nuclei beat k-cores (the paper's pitch).

The nucleus decomposition generalizes k-core and k-truss because cliques
capture *higher-order* density.  The classic failure mode of the k-core is
a dense **bipartite** block: every vertex has high degree (so high
coreness) but the block contains no triangles at all, let alone cliques.

This example plants two things into a sparse background:

* three clique-like communities (the structure we want to find), and
* one dense bipartite block (a decoy: high-degree but trianglefree).

It then flags, for each decomposition level, the vertices in the top core,
and measures precision against the clique-like communities.  The k-core is
fooled by the decoy; (2,3) and (3,4) nuclei are not.

Run with:  python examples/community_cores.py
"""

import numpy as np

from repro import CSRGraph, arb_nucleus_decomp
from repro.analysis import HierarchyIndex, nucleus_hierarchy
from repro.graph.generators import erdos_renyi


def build_graph(seed: int = 7):
    rng = np.random.default_rng(seed)
    n = 400
    background = erdos_renyi(n, 900, seed=seed)
    edges = [tuple(e) for e in background.edges()]
    communities: set[int] = set()
    for _ in range(3):
        members = rng.choice(200, size=14, replace=False)
        communities.update(int(v) for v in members)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                if rng.random() < 0.85:  # near-clique, not perfect
                    edges.append((int(u), int(v)))
    # The decoy: a dense bipartite block among vertices 300..379.
    left = list(range(300, 340))
    right = list(range(340, 380))
    decoy = set(left) | set(right)
    for u in left:
        for v in right:
            if rng.random() < 0.45:
                edges.append((u, v))
    return CSRGraph.from_edges(n, edges), communities, decoy


def top_core_vertices(graph, r, s):
    result = arb_nucleus_decomp(graph, r, s)
    cores = result.as_dict()
    vertices = {v for clique, c in cores.items()
                if c == result.max_core for v in clique}
    return vertices, result.max_core


def main() -> None:
    graph, communities, decoy = build_graph()
    print(f"graph: n={graph.n}, m={graph.m}")
    print(f"planted: {len(communities)} community vertices, "
          f"{len(decoy)} decoy (bipartite) vertices\n")
    print(f"{'decomposition':>14}  {'max core':>8}  {'|top|':>6}  "
          f"{'precision':>9}  {'decoy hits':>10}")
    for r, s in ((1, 2), (2, 3), (3, 4)):
        vertices, max_core = top_core_vertices(graph, r, s)
        hits = len(vertices & communities)
        precision = hits / len(vertices) if vertices else 0.0
        print(f"{f'({r},{s})':>14}  {max_core:>8}  {len(vertices):>6}  "
              f"{precision:>9.2f}  {len(vertices & decoy):>10}")
    print("\nThe k-core's top level is the triangle-free bipartite decoy;")
    print("the (2,3) and (3,4) nuclei land on the planted communities,")
    print("because their density requirement is clique-based.")

    # The flat top level lumps all communities into one vertex set; the
    # query service over the connected-nucleus hierarchy separates them.
    result = arb_nucleus_decomp(graph, 2, 3)
    hierarchy = nucleus_hierarchy(graph, result, engine="batch",
                                  listing_engine="batch")
    index = HierarchyIndex(hierarchy)
    top = max(index.levels())
    tops = index.at_level(top)
    print(f"\nquery service on the 2-3 nucleus hierarchy "
          f"[{len(hierarchy)} nuclei]: {len(tops)} separate "
          f"nucleus(es) at top level {top}")
    for nucleus in tops:
        vertices = nucleus.vertices
        print(f"  node {nucleus.node_id}: {len(vertices)} vertices, "
              f"{len(vertices & communities)} of them planted")
    probe = min(tops[0].vertices & communities)
    deepest = index.densest_containing_vertex(probe)
    print(f"densest nucleus containing vertex {probe}: node "
          f"{deepest.node_id} at level {deepest.level}, "
          f"{len(deepest.vertices)} vertices")


if __name__ == "__main__":
    main()
