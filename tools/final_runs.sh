#!/bin/bash
# Final verification sequence: full tests, full benchmarks, experiment report.
set -x
cd /root/repo
python3 -m pytest tests/ --durations=15 2>&1 | tee /root/repo/test_output.txt
python3 -m pytest benchmarks/ --benchmark-only 2>&1 | tee /root/repo/bench_output.txt
python3 tools/generate_experiments.py 2>&1 | tee /tmp/gen_experiments_final.log
echo FINAL-RUNS-DONE
