#!/usr/bin/env python3
"""Run the pinned perf-trajectory suite and maintain BENCH_nucleus.json.

Usage (from the repo root)::

    python tools/bench_trajectory.py                      # write baseline
    python tools/bench_trajectory.py --compare BENCH_nucleus.json \
        --output BENCH_current.json                       # gate a change
    python tools/bench_trajectory.py --label "$(git rev-parse --short HEAD)"

Exit status is non-zero when ``--compare`` detects a regression beyond
``--tolerance``, so the script doubles as the CI gate.  See
docs/profiling.md for the workflow.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.observe import bench  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_nucleus.json",
                        help="where to write the canonical metrics "
                             "(default: BENCH_nucleus.json)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline payload to diff against; exits "
                             "non-zero on regressions")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative regression tolerance (default 0.05)")
    parser.add_argument("--threads", type=int, default=bench.BENCH_THREADS,
                        help="parallel thread count for the T column")
    parser.add_argument("--label", default="",
                        help="free-form label stored in the payload "
                             "(e.g. a git revision)")
    parser.add_argument("--engine", choices=["scalar", "batch"],
                        default="scalar",
                        help="peeling implementation for the suite run")
    parser.add_argument("--engine-gate", action="store_true",
                        help="run the suite under BOTH engines, require "
                             "bit-for-bit identical simulated metrics and "
                             "a batch peel wall-clock speedup of at least "
                             "--min-speedup; writes the scalar payload to "
                             "--output and the batch payload next to it")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum suite-total peel wall-clock speedup "
                             "the batch engine must reach in --engine-gate "
                             "mode (default 1.0: strictly faster)")
    args = parser.parse_args(argv)

    # Load the baseline up front: --output may name the same file.
    baseline = bench.load_payload(args.compare) if args.compare else None

    if args.engine_gate:
        return _engine_gate(args, baseline)

    payload = bench.run_suite(threads=args.threads, label=args.label,
                              progress=lambda msg: print(msg, flush=True),
                              engine=args.engine)
    bench.write_payload(payload, args.output)
    print(f"wrote {len(payload['suite'])} suite entries to {args.output}")

    if baseline is not None:
        regressions = bench.compare(payload, baseline,
                                    tolerance=args.tolerance)
        if regressions:
            print(f"REGRESSIONS vs {args.compare}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"no regressions vs {args.compare} "
              f"(tolerance {100.0 * args.tolerance:.1f}%)")
    return 0


#: Entry fields excluded from the bit-for-bit engine comparison: host
#: wall-clock is the one thing the batch engine is *supposed* to change.
_HOST_ONLY_FIELDS = ("wall_clock", "engine")


def _simulated_view(entry: dict) -> dict:
    return {k: v for k, v in entry.items() if k not in _HOST_ONLY_FIELDS}


def _engine_gate(args, baseline) -> int:
    """Run both engines; enforce the cost-parity invariant + a speedup."""
    progress = lambda msg: print(msg, flush=True)  # noqa: E731
    scalar = bench.run_suite(threads=args.threads, label=args.label,
                             progress=progress, engine="scalar")
    batch = bench.run_suite(threads=args.threads, label=args.label,
                            progress=progress, engine="batch")
    bench.write_payload(scalar, args.output)
    root, ext = os.path.splitext(args.output)
    batch_path = f"{root}.batch{ext or '.json'}"
    bench.write_payload(batch, batch_path)
    print(f"wrote scalar payload to {args.output}, "
          f"batch payload to {batch_path}")

    failures = []
    for s_entry, b_entry in zip(scalar["suite"], batch["suite"]):
        key = bench.entry_key(s_entry)
        if _simulated_view(s_entry) != _simulated_view(b_entry):
            diffs = [k for k in _simulated_view(s_entry)
                     if s_entry.get(k) != b_entry.get(k)]
            failures.append(f"{key}: simulated metrics differ between "
                            f"engines in fields {diffs}")
    scalar_peel = sum(e["wall_clock"].get("peel", 0.0)
                      for e in scalar["suite"])
    batch_peel = sum(e["wall_clock"].get("peel", 0.0)
                     for e in batch["suite"])
    ratio = scalar_peel / batch_peel if batch_peel > 0 else float("inf")
    print(f"suite peel wall-clock: scalar {scalar_peel:.3f}s, "
          f"batch {batch_peel:.3f}s (speedup x{ratio:.2f})")
    if ratio < args.min_speedup:
        failures.append(f"batch peel speedup x{ratio:.2f} below the "
                        f"required x{args.min_speedup:.2f}")

    if baseline is not None:
        for name, payload in (("scalar", scalar), ("batch", batch)):
            regressions = bench.compare(payload, baseline,
                                        tolerance=args.tolerance)
            failures.extend(f"[{name}] {line}" for line in regressions)

    if failures:
        print("ENGINE GATE FAILURES:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("engine gate passed: identical simulated metrics, "
          f"batch peel x{ratio:.2f} faster")
    return 0


if __name__ == "__main__":
    sys.exit(main())
