#!/usr/bin/env python3
"""Run the pinned perf-trajectory suite and maintain BENCH_nucleus.json.

Usage (from the repo root)::

    python tools/bench_trajectory.py                      # write baseline
    python tools/bench_trajectory.py --compare BENCH_nucleus.json \
        --output BENCH_current.json                       # gate a change
    python tools/bench_trajectory.py --label "$(git rev-parse --short HEAD)"

Exit status is non-zero when ``--compare`` detects a regression beyond
``--tolerance``, so the script doubles as the CI gate.  See
docs/profiling.md for the workflow.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.observe import bench  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_nucleus.json",
                        help="where to write the canonical metrics "
                             "(default: BENCH_nucleus.json)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline payload to diff against; exits "
                             "non-zero on regressions")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative regression tolerance (default 0.05)")
    parser.add_argument("--threads", type=int, default=bench.BENCH_THREADS,
                        help="parallel thread count for the T column")
    parser.add_argument("--label", default="",
                        help="free-form label stored in the payload "
                             "(e.g. a git revision)")
    parser.add_argument("--engine", choices=["scalar", "batch"],
                        default="scalar",
                        help="peeling implementation for the suite run")
    parser.add_argument("--listing-engine", choices=["scalar", "batch"],
                        dest="listing_engine", default="scalar",
                        help="clique-listing implementation for the suite "
                             "run")
    parser.add_argument("--engine-gate", action="store_true",
                        help="run the suite AND the baseline suite under "
                             "BOTH engines (plus a batch-listing run), "
                             "require bit-for-bit identical simulated "
                             "metrics, a batch peel wall-clock speedup of "
                             "at least --min-speedup, a batch-listing "
                             "count-phase speedup of at least "
                             "--min-listing-speedup, a baseline "
                             "hot-phase speedup of at least "
                             "--min-baseline-speedup and a hierarchy "
                             "level-sweep speedup of at least "
                             "--min-hierarchy-speedup; writes the scalar "
                             "payload to --output and the batch / listing "
                             "payloads next to it")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum suite-total peel wall-clock speedup "
                             "the batch engine must reach in --engine-gate "
                             "mode (default 1.0: strictly faster)")
    parser.add_argument("--min-listing-speedup", type=float, default=1.0,
                        help="minimum suite-total count-phase wall-clock "
                             "speedup the batch listing engine must reach "
                             "in --engine-gate mode (default 1.0: strictly "
                             "faster)")
    parser.add_argument("--min-baseline-speedup", type=float, default=1.0,
                        help="minimum baseline-suite hot-phase wall-clock "
                             "speedup the batch baseline engines must "
                             "reach in --engine-gate mode (default 1.0: "
                             "strictly faster)")
    parser.add_argument("--min-hierarchy-speedup", type=float, default=1.0,
                        help="minimum hierarchy-suite level-sweep "
                             "wall-clock speedup the batch hierarchy "
                             "engine must reach in --engine-gate mode "
                             "(default 1.0: strictly faster)")
    parser.add_argument("--min-comm-reduction", type=float, default=1.0,
                        help="minimum simulated comm-time reduction "
                             "(hash comm time / mincut comm time) every "
                             "sharded-suite entry must reach in "
                             "--engine-gate mode (default 1.0: mincut no "
                             "worse than hash)")
    args = parser.parse_args(argv)

    # Load the baseline up front: --output may name the same file.
    baseline = bench.load_payload(args.compare) if args.compare else None

    if args.engine_gate:
        return _engine_gate(args, baseline)

    progress = lambda msg: print(msg, flush=True)  # noqa: E731
    payload = bench.run_suite(threads=args.threads, label=args.label,
                              progress=progress,
                              engine=args.engine,
                              listing_engine=args.listing_engine)
    payload["baselines"] = bench.run_baseline_suite(
        threads=args.threads, progress=progress, engine=args.engine)
    payload["hierarchy"] = bench.run_hierarchy_suite(
        threads=args.threads, progress=progress, engine=args.engine,
        listing_engine=args.listing_engine)
    payload["sharded"] = bench.run_sharded_suite(
        threads=args.threads, progress=progress,
        exchange_engine=args.engine)
    bench.write_payload(payload, args.output)
    print(f"wrote {len(payload['suite'])} suite entries, "
          f"{len(payload['baselines'])} baseline entries, "
          f"{len(payload['hierarchy'])} hierarchy entries and "
          f"{len(payload['sharded'])} sharded entries to "
          f"{args.output}")

    if baseline is not None:
        regressions = bench.compare(payload, baseline,
                                    tolerance=args.tolerance)
        if regressions:
            print(f"REGRESSIONS vs {args.compare}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"no regressions vs {args.compare} "
              f"(tolerance {100.0 * args.tolerance:.1f}%)")
    return 0


#: Entry fields excluded from the bit-for-bit engine comparison: host
#: wall-clock is the one thing the batch engines are *supposed* to change.
_HOST_ONLY_FIELDS = ("wall_clock", "engine", "listing_engine",
                     "exchange_engine")


def _simulated_view(entry: dict) -> dict:
    return {k: v for k, v in entry.items() if k not in _HOST_ONLY_FIELDS}


def _phase_wall_total(payload: dict, phase: str) -> float:
    return sum(e["wall_clock"].get(phase, 0.0) for e in payload["suite"])


_SECTION_KEYS = {
    "suite": lambda: bench.entry_key,
    "baselines": lambda: bench.baseline_entry_key,
    "hierarchy": lambda: bench.hierarchy_entry_key,
    "sharded": lambda: bench.sharded_entry_key,
}


def _parity_failures(reference: dict, candidate: dict,
                     label: str, section: str = "suite") -> list[str]:
    """Bit-for-bit simulated-metric differences between two suite runs."""
    key_of = _SECTION_KEYS[section]()
    failures = []
    for ref_entry, cand_entry in zip(reference[section], candidate[section]):
        key = key_of(ref_entry)
        if _simulated_view(ref_entry) != _simulated_view(cand_entry):
            diffs = [k for k in _simulated_view(ref_entry)
                     if ref_entry.get(k) != cand_entry.get(k)]
            failures.append(f"{key}: simulated metrics differ between "
                            f"{label} in fields {diffs}")
    return failures


def _baseline_hot_total(payload: dict) -> float:
    return sum(e["wall_clock"].get(e["hot_phase"], 0.0)
               for e in payload["baselines"])


def _hierarchy_hot_total(payload: dict) -> float:
    return sum(e["wall_clock"].get(e["hot_phase"], 0.0)
               for e in payload["hierarchy"])


def _engine_gate(args, baseline) -> int:
    """Run both engines (and the batch listing engine); enforce the
    cost-parity invariants plus the peel and count-phase speedups."""
    progress = lambda msg: print(msg, flush=True)  # noqa: E731
    scalar = bench.run_suite(threads=args.threads, label=args.label,
                             progress=progress, engine="scalar")
    batch = bench.run_suite(threads=args.threads, label=args.label,
                            progress=progress, engine="batch")
    listing = bench.run_suite(threads=args.threads, label=args.label,
                              progress=progress, engine="batch",
                              listing_engine="batch")
    scalar["baselines"] = bench.run_baseline_suite(
        threads=args.threads, progress=progress, engine="scalar")
    batch["baselines"] = bench.run_baseline_suite(
        threads=args.threads, progress=progress, engine="batch")
    scalar["hierarchy"] = bench.run_hierarchy_suite(
        threads=args.threads, progress=progress, engine="scalar")
    batch["hierarchy"] = bench.run_hierarchy_suite(
        threads=args.threads, progress=progress, engine="batch",
        listing_engine="batch")
    scalar["sharded"] = bench.run_sharded_suite(
        threads=args.threads, progress=progress, exchange_engine="scalar")
    batch["sharded"] = bench.run_sharded_suite(
        threads=args.threads, progress=progress, exchange_engine="batch")
    bench.write_payload(scalar, args.output)
    root, ext = os.path.splitext(args.output)
    batch_path = f"{root}.batch{ext or '.json'}"
    listing_path = f"{root}.listing{ext or '.json'}"
    bench.write_payload(batch, batch_path)
    bench.write_payload(listing, listing_path)
    print(f"wrote scalar payload to {args.output}, batch payload to "
          f"{batch_path}, batch-listing payload to {listing_path}")

    failures = _parity_failures(scalar, batch, "peel engines")
    failures += _parity_failures(scalar, listing, "listing engines")
    failures += _parity_failures(scalar, batch, "baseline engines",
                                 section="baselines")
    failures += _parity_failures(scalar, batch, "hierarchy engines",
                                 section="hierarchy")
    failures += _parity_failures(scalar, batch, "exchange engines",
                                 section="sharded")
    scalar_peel = _phase_wall_total(scalar, "peel")
    batch_peel = _phase_wall_total(batch, "peel")
    ratio = scalar_peel / batch_peel if batch_peel > 0 else float("inf")
    print(f"suite peel wall-clock: scalar {scalar_peel:.3f}s, "
          f"batch {batch_peel:.3f}s (speedup x{ratio:.2f})")
    if ratio < args.min_speedup:
        failures.append(f"batch peel speedup x{ratio:.2f} below the "
                        f"required x{args.min_speedup:.2f}")
    scalar_count = _phase_wall_total(scalar, "count_s")
    listing_count = _phase_wall_total(listing, "count_s")
    listing_ratio = scalar_count / listing_count if listing_count > 0 \
        else float("inf")
    print(f"suite count_s wall-clock: scalar {scalar_count:.3f}s, "
          f"batch listing {listing_count:.3f}s (speedup "
          f"x{listing_ratio:.2f})")
    if listing_ratio < args.min_listing_speedup:
        failures.append(f"batch listing count-phase speedup "
                        f"x{listing_ratio:.2f} below the required "
                        f"x{args.min_listing_speedup:.2f}")
    scalar_hot = _baseline_hot_total(scalar)
    batch_hot = _baseline_hot_total(batch)
    baseline_ratio = scalar_hot / batch_hot if batch_hot > 0 \
        else float("inf")
    print(f"baseline-suite hot-phase wall-clock: scalar {scalar_hot:.3f}s, "
          f"batch {batch_hot:.3f}s (speedup x{baseline_ratio:.2f})")
    if baseline_ratio < args.min_baseline_speedup:
        failures.append(f"batch baseline hot-phase speedup "
                        f"x{baseline_ratio:.2f} below the required "
                        f"x{args.min_baseline_speedup:.2f}")
    scalar_hier = _hierarchy_hot_total(scalar)
    batch_hier = _hierarchy_hot_total(batch)
    hierarchy_ratio = scalar_hier / batch_hier if batch_hier > 0 \
        else float("inf")
    print(f"hierarchy-suite level-sweep wall-clock: scalar "
          f"{scalar_hier:.3f}s, batch {batch_hier:.3f}s (speedup "
          f"x{hierarchy_ratio:.2f})")
    if hierarchy_ratio < args.min_hierarchy_speedup:
        failures.append(f"batch hierarchy level-sweep speedup "
                        f"x{hierarchy_ratio:.2f} below the required "
                        f"x{args.min_hierarchy_speedup:.2f}")
    worst_reduction = float("inf")
    for entry in batch["sharded"]:
        reduction = entry["comm_reduction"]
        worst_reduction = min(worst_reduction, reduction)
        print(f"sharded {bench.sharded_entry_key(entry)}: comm time "
              f"hash {entry['hash']['comm_time']:.0f} -> mincut "
              f"{entry['mincut']['comm_time']:.0f} (x{reduction:.2f}), "
              f"speedup vs 1 node x{entry['speedup']:.2f}, "
              f"oracle match {entry['matches_oracle']}")
        if not entry["matches_oracle"]:
            failures.append(f"{bench.sharded_entry_key(entry)}: sharded "
                            f"cores differ from the single-node oracle")
        if reduction < args.min_comm_reduction:
            failures.append(f"{bench.sharded_entry_key(entry)}: mincut "
                            f"comm reduction x{reduction:.2f} below the "
                            f"required x{args.min_comm_reduction:.2f}")

    if baseline is not None:
        for name, payload in (("scalar", scalar), ("batch", batch),
                              ("listing", listing)):
            regressions = bench.compare(payload, baseline,
                                        tolerance=args.tolerance)
            failures.extend(f"[{name}] {line}" for line in regressions)

    if failures:
        print("ENGINE GATE FAILURES:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("engine gate passed: identical simulated metrics, batch peel "
          f"x{ratio:.2f} faster, batch listing count phase "
          f"x{listing_ratio:.2f} faster, batch baselines "
          f"x{baseline_ratio:.2f} faster, batch hierarchy level sweep "
          f"x{hierarchy_ratio:.2f} faster, worst mincut comm reduction "
          f"x{worst_reduction:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
