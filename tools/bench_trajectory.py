#!/usr/bin/env python3
"""Run the pinned perf-trajectory suite and maintain BENCH_nucleus.json.

Usage (from the repo root)::

    python tools/bench_trajectory.py                      # write baseline
    python tools/bench_trajectory.py --compare BENCH_nucleus.json \
        --output BENCH_current.json                       # gate a change
    python tools/bench_trajectory.py --label "$(git rev-parse --short HEAD)"

Exit status is non-zero when ``--compare`` detects a regression beyond
``--tolerance``, so the script doubles as the CI gate.  See
docs/profiling.md for the workflow.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.observe import bench  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_nucleus.json",
                        help="where to write the canonical metrics "
                             "(default: BENCH_nucleus.json)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="baseline payload to diff against; exits "
                             "non-zero on regressions")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="relative regression tolerance (default 0.05)")
    parser.add_argument("--threads", type=int, default=bench.BENCH_THREADS,
                        help="parallel thread count for the T column")
    parser.add_argument("--label", default="",
                        help="free-form label stored in the payload "
                             "(e.g. a git revision)")
    args = parser.parse_args(argv)

    # Load the baseline up front: --output may name the same file.
    baseline = bench.load_payload(args.compare) if args.compare else None

    payload = bench.run_suite(threads=args.threads, label=args.label,
                              progress=lambda msg: print(msg, flush=True))
    bench.write_payload(payload, args.output)
    print(f"wrote {len(payload['suite'])} suite entries to {args.output}")

    if baseline is not None:
        regressions = bench.compare(payload, baseline,
                                    tolerance=args.tolerance)
        if regressions:
            print(f"REGRESSIONS vs {args.compare}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"no regressions vs {args.compare} "
              f"(tolerance {100.0 * args.tolerance:.1f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
