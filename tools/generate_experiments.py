"""Regenerate EXPERIMENTS.md from live runs of every figure driver.

Runs each experiment at the same scope the benchmark suite uses, renders
the measured rows next to the paper-reported values, and writes
EXPERIMENTS.md at the repository root.

Usage:  python tools/generate_experiments.py  [--fast]

``--fast`` shrinks the graph lists to smoke-test the report pipeline.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.harness import geometric_mean
from repro.experiments.report import figure_section, render_report

ROOT = Path(__file__).resolve().parent.parent

PREAMBLE = """
This file records, for every table and figure in the paper's evaluation
(Section 6), what the paper reports versus what this reproduction measures.

**Reading guide.** Absolute values are *not* comparable: the paper runs
C++ on a 30-core Cascade Lake machine over SNAP graphs up to 1.8B edges,
while this reproduction runs a deterministic work-span simulation over
deterministic surrogate graphs thousands of times smaller (see DESIGN.md
for the substitutions). The reproduction targets the *shape* of each
result: who wins, in which regime, and by roughly what factor. Simulated
times are in abstract operation units; only ratios are meaningful.

Rows marked "OOM (paper)" follow the paper's reported omissions: whether a
competitor exhausts memory depends on machine constants that a scaled-down
surrogate cannot reveal, so those rows are marked rather than fabricated.

Regenerate with `python tools/generate_experiments.py` (about 30 minutes),
or run `pytest benchmarks/ --benchmark-only` for the asserted versions.

The canonical simulated metrics behind these tables are tracked across
PRs in `BENCH_nucleus.json` (regenerate and gate with `make bench`); to
decompose any run's simulated time into its five cost-model terms or
export a Perfetto timeline, see [docs/profiling.md](docs/profiling.md).
The payload also carries a `baselines` section: the pinned competitor
suite (`bench.BASELINE_SUITE` — ND/PND on dblp, the truss family and
k-core on youtube, the densest scan on amazon and dblp), each run
recording its simulated metrics plus host wall-clock per phase. The
engine gate requires the batched baseline engines to reproduce the
scalar oracles' simulated metrics bit-for-bit *and* to beat them by at
least 3x aggregate wall-clock on their hot (vectorized) phases — so
host-speed regressions in the competitor implementations fail CI just
like simulated-cost regressions do. Note the fig12 numbers predating
the baseline accounting fixes (PKT's duplicated frontier entries, the
uncharged densest scan) were regenerated; the corrected charges are
the pinned trajectory.
"""


def _fig07():
    fig = figures.fig07()
    columns = ["graph", "n", "m", "rho(2,3)", "max(2,3)", "rho(3,4)",
               "max(3,4)", "rho(2,4)", "max(2,4)"]
    commentary = """
**Paper:** seven SNAP graphs from amazon (n=335K, m=926K) to friendster
(n=65.6M, m=1.8B), with rho and max (r,s)-core for all r < s <= 7; e.g.
dblp stands out with very high max cores (its large co-author cliques).
**Measured:** the surrogates preserve the size ordering and dblp's
standout core numbers (planted co-author cliques). Pairs whose runs the
paper reports as timeouts/OOMs on large graphs are likewise restricted
here (see RS_BY_GRAPH in repro/experiments/figures.py).
"""
    return figure_section(fig, columns, commentary)


def _fig08(fast):
    fig = figures.fig08(graphs=["amazon", "dblp"] if fast else None)
    commentary = """
**Paper (Fig. 8):** for (3,4), the best T layout is two-level + contiguous
+ stored pointers, up to 1.32x over one-level (1.34x for 3-multi-level on
orkut); space savings up to 2.15x; amazon is too small to benefit.
**Measured:** same ordering --- layered tables save space everywhere except
the smallest surrogate and speed up the mid/large graphs modestly; amazon
shows the paper's too-small-to-benefit behavior.
"""
    return figure_section(
        fig, ["graph", "combo", "speedup", "space_saving", "memory_units",
              "miss_rate"], commentary)


def _fig09_10(fast):
    fig = figures.fig09_fig10(graphs=["amazon", "dblp"] if fast else None)
    commentary = """
**Paper (Figs. 9-10):** for (4,5), space savings grow to 2.51x and the
3-multi-level table becomes competitive (1.46x on dblp); livejournal,
orkut, friendster OOM. **Measured:** the 3-multi-level layout saves the
most space on the clique-rich surrogates, matching the r=4 sharing effect.
"""
    return figure_section(
        fig, ["graph", "combo", "speedup", "space_saving", "memory_units",
              "miss_rate"], commentary)


def _fig11(fast):
    fig = figures.fig11(graphs=["amazon", "dblp"] if fast else None)
    rows = fig.rows
    agg = [r["speedup"] for r in rows if r["variant"].startswith("U=")]
    combined = [r["speedup"] for r in rows
                if r["variant"] == "combined(best/unopt)"]
    commentary = f"""
**Paper (Fig. 11):** list buffer up to 3.98x and hash table up to 4.12x
over the simple array; relabeling up to 1.29x (slight slowdowns on (2,3));
contraction up to 1.08x ((2,3) only); all optimizations combined up to
5.10x over unoptimized. **Measured:** aggregation speedups reach
{max(agg):.2f}x (geo-mean {geometric_mean(agg):.2f}x) and the combined
configuration reaches {max(combined):.2f}x --- same ranking: aggregation
dominates, relabeling is mild, contraction is near break-even.
"""
    return figure_section(fig, ["rs", "graph", "variant", "speedup"],
                          commentary)


def _fig12(fast):
    fig = figures.fig12(graphs=["amazon", "dblp"] if fast else None)
    commentary = """
**Paper (Fig. 12 + Section 6.3):** ARB beats ND by 8.19-58.02x, PND by
3.84-54.96x, AND by 1.32-60.44x, AND-NN by 1.04-8.78x; self-relative
speedups 3.31-40.14x. PND performs 5,608-84,170x more rounds; AND
discovers 1.69-46x more s-cliques (median ~15x), AND-NN <= 3.45x (median
~1.4x). ARB beats PKT 1.07-2.88x and MSP 2.35-7.65x everywhere;
PKT-OPT-CPU wins on large graphs (up to 2.27x) and loses on small (up to
1.64x). **Measured:** identical ordering and regime structure; the
magnitudes are compressed by the smaller surrogates (e.g. PND's round
blowup is in the hundreds rather than thousands), and the ARB-vs-PKT-OPT
crossover lands between the two smallest surrogates rather than between
youtube and skitter.
"""
    return figure_section(
        fig, ["rs", "graph", "algorithm", "slowdown", "self_speedup",
              "round_ratio", "visit_ratio", "note"], commentary)


def _fig13(fast):
    fig = figures.fig13(graphs=["amazon"] if fast else None)
    commentary = """
**Paper (Fig. 13):** across r < s <= 7, per-graph slowdowns over the
fastest (r,s) span one to three orders of magnitude, with many large-(r,s)
bars missing (OOM/timeout) on bigger graphs. **Measured:** the same wide
spread, with the expensive pairs being those with the most s-cliques.
"""
    return figure_section(fig, ["graph", "rs", "slowdown_vs_fastest", "T60"],
                          commentary)


def _fig14(fast):
    fig = figures.fig14(graphs=["dblp"] if fast else None)
    commentary = """
**Paper (Fig. 14):** near-linear scaling to 30 cores, flattening across
the hyper-threading region; overall self-relative speedups 3.31-40.14x.
**Measured:** the same curve shape from the Brent-bound machine model with
discounted hyper-threads; larger graphs scale better.
"""
    columns = ["graph", "rs"] + [f"S{p}" for p in (1, 2, 4, 8, 16, 30, 60)]
    return figure_section(fig, columns, commentary)


def _fig15(fast):
    fig = figures.fig15(scales=[7, 8] if fast else None)
    commentary = """
**Paper (Fig. 15):** rMAT graphs (a=0.5, b=c=0.1, d=0.3, duplicates
removed) at increasing size and density; running time scales with the
number of s-cliques. **Measured:** time grows monotonically in both scale
and edge factor, and log-time correlates strongly with log s-clique count.
"""
    columns = ["scale", "edge_factor", "n", "m", "T(2,3)", "T(3,4)",
               "T(4,5)"]
    return figure_section(fig, columns, commentary)


def main() -> int:
    fast = "--fast" in sys.argv
    sections = []
    for name, builder in [("fig07", _fig07), ("fig08", _fig08),
                          ("fig09_10", _fig09_10), ("fig11", _fig11),
                          ("fig12", _fig12), ("fig13", _fig13),
                          ("fig14", _fig14), ("fig15", _fig15)]:
        start = time.time()
        if name == "fig07":
            sections.append(builder() if not fast else
                            figure_section(figures.fig07(["amazon"]),
                                           ["graph", "n", "m", "rho(2,3)",
                                            "max(2,3)"]))
        else:
            sections.append(builder(fast))
        print(f"{name} done in {time.time() - start:.0f}s", flush=True)
    text = render_report(
        "EXPERIMENTS — paper versus measured", PREAMBLE, sections)
    (ROOT / "EXPERIMENTS.md").write_text(text + "\n")
    print(f"wrote {ROOT / 'EXPERIMENTS.md'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
