"""Command-line interface for the nucleus decomposition library.

Subcommands::

    python -m repro.cli decompose --input graph.txt --r 2 --s 3
    python -m repro.cli decompose --dataset dblp --r 3 --s 4 --histogram
    python -m repro.cli generate --kind rmat --scale 10 --edge-factor 8 -o g.txt
    python -m repro.cli stats --dataset skitter
    python -m repro.cli figure fig14
    python -m repro.cli lint src/repro --json
    python -m repro.cli sanitize
    python -m repro.cli bench --compare BENCH_nucleus.json -o BENCH_new.json
    python -m repro.cli profile --dataset dblp --r 2 --s 3 -o trace.json
    python -m repro.cli shard --dataset dblp --r 2 --s 3 --shards 4 --verify
    python -m repro.cli hierarchy --dataset dblp --r 2 --s 3 --summary
    python -m repro.cli hierarchy --dataset dblp --r 2 --s 3 -o hier.json
    python -m repro.cli hierarchy --load hier.json --vertex 5 --level 2
    python -m repro.cli hierarchy --load hier.json --edge 3 7

``decompose`` reads a SNAP-style edge list (or a named surrogate dataset),
runs ARB-NUCLEUS-DECOMP, and prints summary statistics, the core-number
histogram, and optionally every r-clique's core number.  ``lint`` runs the
parlint cost-accounting rules (PAR001--PAR004; with ``--strict`` the
interprocedural charge-flow analyzer adds PAR005--PAR011: the
batch/scalar parity registry plus the static race, atomic-commutativity,
and race-coverage rules) and ``sanitize`` drives the dynamic race
detector over the main algorithm and the baselines.
``bench`` runs the pinned perf-trajectory suite (optionally gating on a
baseline) and ``profile`` runs one decomposition under the trace recorder,
writing a Chrome-trace JSON and printing the six-term time breakdown.
``shard`` runs the sharded multi-node decomposition (docs/sharding.md)
and reports partition quality, communication volume, and the composed
distributed time model.
``hierarchy`` builds the connected-nucleus hierarchy on the simulated
machine (or loads a saved one) and serves the indexed queries: nuclei at
a level, the nucleus containing a vertex at a level, and the densest
nucleus containing an edge.
"""

from __future__ import annotations

import argparse
import sys

from .core.config import NucleusConfig
from .core.decomp import arb_nucleus_decomp
from .experiments import figures
from .graph.datasets import dataset_names, load_dataset
from .graph.generators import erdos_renyi, planted_partition, rmat_graph
from .graph.io import read_edge_list, write_edge_list
from .parallel.runtime import CostTracker, MachineModel


def _load_graph(args):
    if args.dataset:
        return load_dataset(args.dataset), args.dataset
    if args.input:
        return read_edge_list(args.input), args.input
    raise SystemExit("provide --input FILE or --dataset NAME")


def _build_config(args) -> NucleusConfig:
    if getattr(args, "unoptimized", False):
        config = NucleusConfig.unoptimized()
    else:
        config = NucleusConfig.optimal(args.r, args.s)
    overrides = {}
    for field in ("levels", "aggregation", "bucketing", "orientation",
                  "engine", "listing_engine"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if getattr(args, "no_relabel", False):
        overrides["relabel"] = False
    if overrides:
        from dataclasses import replace
        config = replace(config, **overrides)
    return config


def _cmd_decompose(args) -> int:
    graph, name = _load_graph(args)
    config = _build_config(args)
    tracker = CostTracker()
    result = arb_nucleus_decomp(graph, args.r, args.s, config, tracker)
    machine = MachineModel()
    print(f"graph {name}: n={graph.n} m={graph.m}")
    print(f"({args.r},{args.s}) nucleus decomposition:")
    print(f"  r-cliques: {result.n_r_cliques}  s-cliques: {result.n_s_cliques}")
    print(f"  peeling rounds (rho): {result.rho}  max core: {result.max_core}")
    print(f"  T memory units: {result.table_memory_units}")
    print(f"  simulated time: T(1)={machine.time(tracker, 1):.0f} "
          f"T(60)={machine.time(tracker, 60):.0f} "
          f"(speedup {machine.speedup(tracker, 60):.1f}x)")
    if args.histogram:
        print("  core histogram:")
        for core, count in sorted(result.core_histogram().items()):
            print(f"    {core}: {count}")
    if args.full:
        for clique, core in sorted(result.as_dict().items()):
            print(" ".join(map(str, clique)), core)
    return 0


def _cmd_generate(args) -> int:
    if args.kind == "rmat":
        graph = rmat_graph(args.scale, args.edge_factor, seed=args.seed)
    elif args.kind == "erdos-renyi":
        n = 1 << args.scale
        graph = erdos_renyi(n, args.edge_factor * n, seed=args.seed)
    else:
        n = 1 << args.scale
        graph = planted_partition(n, max(4, n // 20), 0.5, 1.0 / n,
                                  seed=args.seed)
    write_edge_list(graph, args.output, header=f"generated: {args.kind}")
    print(f"wrote {graph.n} vertices / {graph.m} edges to {args.output}")
    return 0


def _print_partition_quality(quality: dict, indent: str = "  ") -> None:
    print(f"{indent}shard sizes = {quality['shard_sizes']} "
          f"(imbalance {quality['imbalance']:.2f})")
    print(f"{indent}edge cut = {quality['edge_cut']} "
          f"({100.0 * quality['cut_fraction']:.1f}% of edges)")
    print(f"{indent}triangle spill = {quality['triangle_spill']} "
          f"({100.0 * quality['triangle_spill_fraction']:.1f}% of "
          f"triangles)")
    if "s_clique_spill_estimate" in quality:
        print(f"{indent}s-clique spill estimate = "
              f"{100.0 * quality['s_clique_spill_estimate']:.1f}%")


def _cmd_stats(args) -> int:
    graph, name = _load_graph(args)
    from .cliques.orient import degeneracy
    from .cliques.counting import triangle_count
    print(f"graph {name}:")
    print(f"  n = {graph.n}")
    print(f"  m = {graph.m}")
    print(f"  max degree = {int(graph.degrees.max()) if graph.n else 0}")
    print(f"  degeneracy = {degeneracy(graph)}")
    print(f"  triangles = {triangle_count(graph)}")
    if args.shards:
        from .distributed import PARTITIONERS
        from .graph.stats import partition_statistics
        partition = PARTITIONERS[args.partitioner](graph, args.shards)
        quality = partition_statistics(graph, partition.shard_of,
                                       args.shards, s=args.s)
        print(f"  partition [{args.partitioner}, {args.shards} shard(s)]:")
        _print_partition_quality(quality, indent="    ")
    return 0


def _cmd_figure(args) -> int:
    drivers = {
        "fig07": figures.fig07, "fig08": figures.fig08,
        "fig09": figures.fig09_fig10, "fig10": figures.fig09_fig10,
        "fig11": figures.fig11, "fig12": figures.fig12,
        "fig13": figures.fig13, "fig14": figures.fig14,
        "fig15": figures.fig15,
    }
    if args.name not in drivers:
        raise SystemExit(f"unknown figure {args.name!r}; "
                         f"options: {sorted(set(drivers))}")
    print(drivers[args.name]().show())
    return 0


def _cmd_lint(args) -> int:
    if args.explain:
        from .sanitize import chargeflow
        return chargeflow.main(["--explain", args.explain])
    if args.strict or args.sarif is not None or args.baseline \
            or args.emit_registry or args.race_tests:
        from .sanitize import chargeflow
        root = args.paths[0] if args.paths else "src/repro"
        argv = [root]
        if args.json:
            argv.append("--json")
        if args.sarif is not None:
            argv += ["--sarif", args.sarif] if args.sarif != "-" \
                else ["--sarif"]
        if args.baseline:
            argv += ["--baseline", args.baseline]
        if args.emit_registry:
            argv.append("--emit-registry")
        if args.race_tests:
            argv += ["--race-tests", args.race_tests]
        return chargeflow.main(argv)
    from .sanitize.parlint import lint_paths, report_json
    findings, n_files = lint_paths(args.paths)
    if args.json:
        print(report_json(findings, n_files))
    else:
        for finding in findings:
            print(finding.render())
        print(f"parlint: {len(findings)} finding(s) in {n_files} file(s)")
    return 1 if findings else 0


def _cmd_sanitize(args) -> int:
    """Run every decomposition under the dynamic race detector."""
    from .baselines.local import and_decomposition
    from .baselines.msp import msp_decomposition
    from .baselines.nd import nd_decomposition
    from .baselines.pkt import pkt_decomposition
    from .graph.generators import figure1_graph
    from .sanitize.racecheck import RaceDetector

    if args.dataset:
        graph, name = load_dataset(args.dataset), args.dataset
    else:
        graph, name = figure1_graph(), "figure1"
    runs = [
        ("arb (2,3)", lambda t: arb_nucleus_decomp(
            graph, 2, 3, NucleusConfig.optimal(2, 3), t)),
        ("arb (1,2)", lambda t: arb_nucleus_decomp(
            graph, 1, 2, NucleusConfig.optimal(1, 2), t)),
        ("nd", lambda t: nd_decomposition(graph, 2, 3, t)),
        ("pkt", lambda t: pkt_decomposition(graph, t)),
        ("msp", lambda t: msp_decomposition(graph, t)),
        ("and", lambda t: and_decomposition(graph, 2, 3, t)),
    ]
    failures = 0
    print(f"sanitize: graph {name} (n={graph.n} m={graph.m})")
    for label, run in runs:
        tracker = CostTracker()
        detector = RaceDetector()
        tracker.race_detector = detector
        run(tracker)
        races = detector.settle(strict=False)
        stats = detector.stats
        status = "ok" if not races else f"{len(races)} race(s)"
        print(f"  {label:<10} {status}  "
              f"({stats.logged} accesses, {stats.tasks} tasks)")
        for race in races[:10]:
            print(f"    {race.describe()}")
        failures += bool(races)
    return 1 if failures else 0


def _cmd_bench(args) -> int:
    """Run the pinned perf-trajectory suite; optionally gate on a baseline."""
    from .observe import bench
    # Load the baseline up front: --output may name the same file.
    baseline = bench.load_payload(args.compare) if args.compare else None
    payload = bench.run_suite(threads=args.threads, label=args.label,
                              progress=lambda msg: print(msg, flush=True),
                              engine=args.engine,
                              listing_engine=args.listing_engine)
    bench.write_payload(payload, args.output)
    print(f"wrote {len(payload['suite'])} suite entries to {args.output}")
    if baseline is not None:
        regressions = bench.compare(payload, baseline,
                                    tolerance=args.tolerance)
        if regressions:
            print(f"REGRESSIONS vs {args.compare}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"no regressions vs {args.compare} "
              f"(tolerance {100.0 * args.tolerance:.1f}%)")
    return 0


def _describe_nucleus(nucleus) -> str:
    vertices = sorted(nucleus.vertices)
    shown = " ".join(map(str, vertices[:12]))
    if len(vertices) > 12:
        shown += f" ... [{len(vertices)} vertices]"
    return (f"node {nucleus.node_id} level {nucleus.level} "
            f"parent {nucleus.parent_id} "
            f"({nucleus.size} r-cliques): {shown}")


def _cmd_hierarchy(args) -> int:
    """Build (or load) a nucleus hierarchy and serve indexed queries."""
    from .analysis import (HierarchyIndex, load_hierarchy_json,
                           nucleus_hierarchy, save_hierarchy_json)
    if args.load:
        hierarchy = load_hierarchy_json(args.load)
        print(f"loaded ({hierarchy.r},{hierarchy.s}) hierarchy from "
              f"{args.load}: {len(hierarchy)} nuclei")
    else:
        if args.r is None or args.s is None:
            raise SystemExit("provide --r and --s (or --load FILE)")
        graph, name = _load_graph(args)
        config = _build_config(args)
        tracker = CostTracker()
        result = arb_nucleus_decomp(graph, args.r, args.s, config, tracker)
        hierarchy = nucleus_hierarchy(graph, result, tracker,
                                      engine=config.engine,
                                      listing_engine=config.listing_engine)
        machine = MachineModel()
        print(f"graph {name}: n={graph.n} m={graph.m}")
        print(f"({args.r},{args.s}) hierarchy: {len(hierarchy)} nuclei "
              f"across {len({x.level for x in hierarchy.nuclei})} levels "
              f"(max core {result.max_core})")
        print(f"  simulated time (decompose + build): "
              f"T(1)={machine.time(tracker, 1):.0f} "
              f"T(60)={machine.time(tracker, 60):.0f}")
    if args.output:
        save_hierarchy_json(hierarchy, args.output)
        print(f"wrote hierarchy JSON to {args.output}")
    index = HierarchyIndex(hierarchy)
    queried = False
    if args.edge:
        queried = True
        u, v = args.edge
        nucleus = index.densest_containing_edge(u, v)
        if nucleus is None:
            print(f"edge ({u}, {v}): no nucleus contains both endpoints")
        else:
            print(f"densest nucleus containing edge ({u}, {v}):")
            print(f"  {_describe_nucleus(nucleus)}")
    if args.vertex is not None and args.level is not None:
        queried = True
        found = index.nucleus_of_vertex(args.vertex, args.level)
        if not found:
            print(f"vertex {args.vertex} is in no nucleus at level "
                  f"{args.level}")
        for nucleus in found:
            print(f"vertex {args.vertex} at level {args.level}: "
                  f"{_describe_nucleus(nucleus)}")
    elif args.vertex is not None:
        queried = True
        nucleus = index.densest_containing_vertex(args.vertex)
        if nucleus is None:
            print(f"vertex {args.vertex} is in no nucleus")
        else:
            print(f"densest nucleus containing vertex {args.vertex}:")
            print(f"  {_describe_nucleus(nucleus)}")
    elif args.level is not None:
        queried = True
        found = index.at_level(args.level)
        print(f"{len(found)} nucleus(es) at level {args.level}:")
        for nucleus in found:
            print(f"  {_describe_nucleus(nucleus)}")
    if args.summary or not queried:
        levels = index.levels()
        print(f"levels: {levels}")
        for level in levels:
            sizes = [nucleus.size for nucleus in index.at_level(level)]
            print(f"  level {level}: {len(sizes)} nucleus(es), "
                  f"sizes {sizes[:10]}"
                  + (" ..." if len(sizes) > 10 else ""))
        print(f"roots: {len(hierarchy.roots())}  "
              f"leaves: {len(hierarchy.leaves())}")
    return 0


def _cmd_profile(args) -> int:
    """Run one decomposition under the trace recorder + breakdown.

    With ``--shards`` the run is sharded and the written trace merges the
    coordinator's lanes with one lane group per shard, so the exchange
    barriers between local peel rounds are visible.
    """
    from .machine.cache import CacheSimulator
    from .observe import TraceRecorder, format_breakdown, write_merged_trace
    graph, name = _load_graph(args)
    config = _build_config(args)
    tracker = CostTracker()
    tracker.cache = CacheSimulator()
    tracker.trace = TraceRecorder(task_limit=args.task_limit)
    machine = MachineModel()
    if args.shards:
        from .distributed import sharded_nucleus_decomp
        result = sharded_nucleus_decomp(graph, args.r, args.s, args.shards,
                                        partitioner=args.partitioner,
                                        config=config, tracker=tracker)
        print(f"graph {name}: n={graph.n} m={graph.m}  "
              f"({args.r},{args.s}) x{args.shards} shard(s) "
              f"rho={result.rho} max_core={result.max_core}")
        print(format_breakdown(machine.time_breakdown(tracker, args.threads),
                               title="coordinator time breakdown"))
        recorders = [tracker.trace, *result.shard_traces]
        write_merged_trace(recorders, args.output)
        events = sum(len(recorder.events) for recorder in recorders)
    else:
        result = arb_nucleus_decomp(graph, args.r, args.s, config, tracker)
        print(f"graph {name}: n={graph.n} m={graph.m}  "
              f"({args.r},{args.s}) rho={result.rho} "
              f"max_core={result.max_core}")
        print(format_breakdown(machine.time_breakdown(tracker,
                                                      args.threads)))
        tracker.trace.write(args.output)
        events = len(tracker.trace.events)
    print(f"wrote {events} trace events to {args.output} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    return 0


def _cmd_shard(args) -> int:
    """Run the sharded decomposition; report comm, quality, and time."""
    from .distributed import DistributedMachineModel, sharded_nucleus_decomp
    from .graph.stats import partition_statistics
    from .observe import TraceRecorder, write_merged_trace
    graph, name = _load_graph(args)
    tracker = CostTracker()
    if args.trace:
        tracker.trace = TraceRecorder()
    result = sharded_nucleus_decomp(graph, args.r, args.s, args.shards,
                                    partitioner=args.partitioner,
                                    tracker=tracker,
                                    exchange_engine=args.exchange_engine)
    quality = partition_statistics(graph, result.partition.shard_of,
                                   args.shards, s=args.s)
    machine = DistributedMachineModel(MachineModel())
    breakdown = machine.time_breakdown(result, args.threads)
    print(f"graph {name}: n={graph.n} m={graph.m}")
    print(f"({args.r},{args.s}) sharded decomposition on {args.shards} "
          f"shard(s) [{args.partitioner} partitioner, "
          f"{args.exchange_engine} exchange]:")
    print(f"  r-cliques: {result.n_r_cliques}  "
          f"s-cliques: {result.n_s_cliques}")
    print(f"  peeling rounds (rho): {result.rho}  "
          f"max core: {result.max_core}")
    print("  partition quality:")
    _print_partition_quality(quality, indent="    ")
    print(f"  comm: {result.comm_messages} message(s), "
          f"{result.comm_bytes} byte(s) -> simulated time "
          f"{machine.comm_time(result.comm_messages, result.comm_bytes):.0f}")
    print(f"  simulated time at {args.threads} thread(s)/shard: "
          f"coordinator {breakdown['coordinator']:.0f} + "
          f"compute {breakdown['compute']:.0f} + "
          f"comm {breakdown['comm']:.0f} = {breakdown['time']:.0f}")
    for shard, st in enumerate(result.shard_trackers):
        print(f"    shard {shard}: work={st.total.work:.0f} "
              f"span={st.span:.0f} atomics={st.total.atomic_ops} "
              f"sent={st.total.comm_messages} msg / "
              f"{st.total.comm_bytes} B")
    if args.verify:
        reference_tracker = CostTracker()
        reference = arb_nucleus_decomp(graph, args.r, args.s,
                                       tracker=reference_tracker)
        if result.as_dict() != reference.as_dict():
            print("  oracle check: MISMATCH vs the single-node run")
            return 1
        speedup = machine.speedup_vs_single(result, reference_tracker,
                                            args.threads)
        print(f"  oracle check: cores identical to the single-node run "
              f"(distributed speedup x{speedup:.2f})")
    if args.trace:
        write_merged_trace([tracker.trace, *result.shard_traces],
                           args.trace)
        print(f"wrote merged shard trace to {args.trace}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel (r,s) nucleus decomposition (VLDB 2021 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("decompose", help="run ARB-NUCLEUS-DECOMP")
    p.add_argument("--input", help="SNAP-style edge list file")
    p.add_argument("--dataset", choices=dataset_names(),
                   help="named surrogate dataset")
    p.add_argument("--r", type=int, required=True)
    p.add_argument("--s", type=int, required=True)
    p.add_argument("--histogram", action="store_true",
                   help="print the core-number histogram")
    p.add_argument("--full", action="store_true",
                   help="print every r-clique with its core number")
    p.add_argument("--unoptimized", action="store_true",
                   help="run the Section 6.2 baseline configuration")
    p.add_argument("--levels", type=int,
                   help="levels of the clique table T")
    p.add_argument("--aggregation",
                   choices=["array", "list_buffer", "hash"],
                   help="update-aggregation strategy for U")
    p.add_argument("--bucketing",
                   choices=["julienne", "fibonacci", "dense"],
                   help="bucketing backend")
    p.add_argument("--orientation",
                   choices=["degeneracy", "goodrich_pszona",
                            "barenboim_elkin", "degree"],
                   help="O(alpha)-orientation algorithm")
    p.add_argument("--engine", choices=["scalar", "batch"],
                   help="peeling implementation (batch: vectorized, "
                        "identical simulated costs)")
    p.add_argument("--listing-engine", choices=["scalar", "batch"],
                   dest="listing_engine",
                   help="clique-listing implementation (batch: frontier "
                        "engine, identical simulated costs)")
    p.add_argument("--no-relabel", action="store_true",
                   help="disable orientation-order relabeling")
    p.set_defaults(func=_cmd_decompose)

    p = sub.add_parser("generate", help="write a synthetic graph")
    p.add_argument("--kind", choices=["rmat", "erdos-renyi", "community"],
                   default="rmat")
    p.add_argument("--scale", type=int, default=10, help="log2(n)")
    p.add_argument("--edge-factor", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("stats", help="basic structural statistics")
    p.add_argument("--input")
    p.add_argument("--dataset", choices=dataset_names())
    p.add_argument("--shards", type=int,
                   help="also report partition quality for this many "
                        "shards")
    p.add_argument("--partitioner", choices=["hash", "mincut"],
                   default="mincut",
                   help="partitioner for the quality report "
                        "(default: mincut)")
    p.add_argument("--s", type=int,
                   help="clique size for the s-clique spill estimate "
                        "(with --shards)")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("figure", help="regenerate a paper figure's table")
    p.add_argument("name", help="fig07 .. fig15")
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("lint",
                       help="run the parlint cost-accounting rules "
                            "(--strict: interprocedural charge-flow "
                            "analyzer, PAR001-PAR011)")
    p.add_argument("paths", nargs="*", default=["src/repro"],
                   help="files or directories (with --strict: one "
                        "package directory; default src/repro)")
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON report")
    p.add_argument("--strict", action="store_true",
                   help="run the interprocedural charge-flow analyzer "
                        "(call graph + summaries + PAR005-PAR011)")
    p.add_argument("--explain", metavar="RULE",
                   help="print the rule-catalog entry for PARxxx and exit")
    p.add_argument("--race-tests", metavar="DIR", dest="race_tests",
                   help="directory of test files whose RACECHECK_COVERS "
                        "stamps satisfy PAR011 (implies --strict)")
    p.add_argument("--sarif", metavar="FILE", nargs="?", const="-",
                   help="write a SARIF 2.1.0 report (implies --strict; "
                        "default stdout)")
    p.add_argument("--baseline", metavar="FILE",
                   help="committed baseline of accepted strict findings "
                        "(implies --strict)")
    p.add_argument("--emit-registry", action="store_true",
                   help="print PARLINT_PARITY templates for engine "
                        "modules (implies --strict)")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "sanitize",
        help="run the race detector over arb + the baselines")
    p.add_argument("--dataset", choices=dataset_names(),
                   help="named surrogate dataset (default: figure-1 graph)")
    p.set_defaults(func=_cmd_sanitize)

    p = sub.add_parser(
        "bench",
        help="run the pinned perf-trajectory suite (BENCH_nucleus.json)")
    p.add_argument("-o", "--output", default="BENCH_nucleus.json",
                   help="output payload path (default: BENCH_nucleus.json)")
    p.add_argument("--compare", metavar="BASELINE",
                   help="baseline payload; exit non-zero on regressions")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="relative regression tolerance (default 0.05)")
    p.add_argument("--threads", type=int, default=60,
                   help="parallel thread count for the T column")
    p.add_argument("--engine", choices=["scalar", "batch"],
                   default="scalar",
                   help="peeling implementation for the whole suite")
    p.add_argument("--listing-engine", choices=["scalar", "batch"],
                   dest="listing_engine", default="scalar",
                   help="clique-listing implementation for the whole suite")
    p.add_argument("--label", default="",
                   help="free-form label stored in the payload")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "hierarchy",
        help="build the connected-nucleus hierarchy and serve queries "
             "(nucleus of a vertex at a level, nuclei at a level, "
             "densest nucleus containing an edge)")
    p.add_argument("--input", help="SNAP-style edge list file")
    p.add_argument("--dataset", choices=dataset_names(),
                   help="named surrogate dataset")
    p.add_argument("--r", type=int)
    p.add_argument("--s", type=int)
    p.add_argument("--engine", choices=["scalar", "batch"],
                   help="level-sweep kernel (batch: vectorized, "
                        "identical simulated costs)")
    p.add_argument("--listing-engine", choices=["scalar", "batch"],
                   dest="listing_engine",
                   help="s-clique listing implementation")
    p.add_argument("-o", "--output",
                   help="write the hierarchy as JSON")
    p.add_argument("--load", metavar="FILE",
                   help="serve a previously saved hierarchy JSON "
                        "instead of decomposing")
    p.add_argument("--level", type=int,
                   help="query: all nuclei at this core level")
    p.add_argument("--vertex", type=int,
                   help="query: the nucleus containing this vertex (at "
                        "--level if given, else the densest)")
    p.add_argument("--edge", type=int, nargs=2, metavar=("U", "V"),
                   help="query: the densest nucleus containing both "
                        "endpoints")
    p.add_argument("--summary", action="store_true",
                   help="print the per-level summary (default when no "
                        "query is given)")
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser(
        "profile",
        help="trace one decomposition (Chrome trace + time breakdown)")
    p.add_argument("--input", help="SNAP-style edge list file")
    p.add_argument("--dataset", choices=dataset_names(),
                   help="named surrogate dataset")
    p.add_argument("--r", type=int, required=True)
    p.add_argument("--s", type=int, required=True)
    p.add_argument("-o", "--output", default="trace.json",
                   help="Chrome trace-event JSON path (default: trace.json)")
    p.add_argument("--threads", type=int, default=60,
                   help="thread count for the printed breakdown")
    p.add_argument("--task-limit", type=int, default=256,
                   help="max task slices recorded per parallel region")
    p.add_argument("--unoptimized", action="store_true",
                   help="profile the Section 6.2 baseline configuration")
    p.add_argument("--shards", type=int,
                   help="profile the sharded run on this many shards "
                        "(one trace lane group per shard)")
    p.add_argument("--partitioner", choices=["hash", "mincut"],
                   default="mincut",
                   help="partitioner for --shards (default: mincut)")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "shard",
        help="run the sharded multi-node decomposition "
             "(docs/sharding.md)")
    p.add_argument("--input", help="SNAP-style edge list file")
    p.add_argument("--dataset", choices=dataset_names(),
                   help="named surrogate dataset")
    p.add_argument("--r", type=int, required=True)
    p.add_argument("--s", type=int, required=True)
    p.add_argument("--shards", type=int, required=True,
                   help="number of shards (simulated nodes)")
    p.add_argument("--partitioner", choices=["hash", "mincut"],
                   default="mincut",
                   help="vertex partitioner (default: mincut)")
    p.add_argument("--exchange-engine", choices=["scalar", "batch"],
                   dest="exchange_engine", default="batch",
                   help="cross-shard exchange kernel (batch: vectorized, "
                        "identical simulated costs)")
    p.add_argument("--threads", type=int, default=60,
                   help="thread count per shard for the time model")
    p.add_argument("--verify", action="store_true",
                   help="also run the single-node oracle and check the "
                        "cores match bit for bit")
    p.add_argument("--trace", metavar="FILE",
                   help="write a merged per-shard Chrome trace to FILE")
    p.set_defaults(func=_cmd_shard)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
