"""Charged, level-batched nucleus-hierarchy construction.

:func:`repro.analysis.hierarchy.build_hierarchy` is the *post-hoc*
definition of the hierarchy: for every core level it rescans all
s-cliques, re-tests survival, and regroups from scratch.  Correct, and
retained as the differential oracle, but quadratic in the number of
levels and off the simulated machine.  This module is the first-class
engine (after the parallel dendrogram construction of Sariyuce--Pinar
hierarchies, arXiv:2306.08623): every step is tracker-charged, the
s-clique enumeration reuses the decomposition's lister (batch frontier
engine when ``listing_engine="batch"``), and connectivity is built
*incrementally* down the levels instead of per-level from scratch.

The key observation is that an s-clique "dies" at a single level --- the
minimum core number among its C(s, r) member r-cliques --- and survives
at every level up to it.  Processing levels in descending order, the
level-c connectivity is the level-(c+1) connectivity plus the star edges
of the s-cliques whose death level is exactly c, so each s-clique is
unioned exactly once overall.  Per level the new star edges (mapped
through the current component labels) feed one Shiloach--Vishkin
hook-and-compress pass (:func:`repro.parallel.connectivity
.connected_components`), and the resulting relabeling is composed into a
persistent label array over the growing set of alive r-cliques.

Three phases land in the tracker (and in ``phase_wall``, which the bench
trajectory's ``--min-hierarchy-speedup`` gate reads):

``hier_list``
    s-clique enumeration plus the subset-to-r-clique-index mapping
    (shared between engines; the listing engine choice changes only host
    wall-clock, never simulated charges).
``hier_levels``
    the descending level sweep --- the registered batch/scalar kernel
    pair (:func:`_levels_scalar` here, ``batch_levels`` in
    :mod:`repro.analysis.batchhier`; rule PAR007 pins their parity).
``hier_emit``
    materializing :class:`~repro.analysis.hierarchy.Nucleus` records
    from the per-level label snapshots, reproducing the oracle's node
    ids and parent links exactly (groups ordered by minimum member
    index, ids assigned ascending by level).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..cliques.encode import CliqueEncoder, KeyWidthError
from ..cliques.listing import collect_cliques
from ..cliques.orient import orient
from ..core.decomp import NucleusResult
from ..graph.csr import CSRGraph
from ..parallel.connectivity import connected_components
from ..parallel.runtime import CostTracker, _log2
from .hierarchy import Nucleus, NucleusHierarchy


def nucleus_hierarchy(graph: CSRGraph, result: NucleusResult,
                      tracker: CostTracker | None = None,
                      engine: str | None = None,
                      listing_engine: str | None = None,
                      s_cliques=None) -> NucleusHierarchy:
    """Build the connected-nucleus hierarchy on the simulated machine.

    ``engine`` selects the level-sweep kernel (``"scalar"`` or
    ``"batch"``) and ``listing_engine`` the s-clique lister; both default
    to the decomposition's configuration.  By the engines' cost-parity
    contract the simulated charges are engine-independent --- only host
    wall-clock differs.  Pass ``s_cliques`` (an iterable of vertex
    tuples) to skip the enumeration, e.g. when the caller already holds
    the list.

    Returns the same :class:`~repro.analysis.hierarchy.NucleusHierarchy`
    (bit-identical node ids, members, and parent links) as the post-hoc
    :func:`~repro.analysis.hierarchy.build_hierarchy` oracle.
    """
    if engine is None:
        engine = result.config.engine
    if engine not in ("scalar", "batch"):
        raise ValueError(f"unknown engine {engine!r}; "
                         f"options: scalar, batch")
    if listing_engine is None:
        listing_engine = result.config.listing_engine
    if tracker is None:
        tracker = CostTracker()

    with tracker.phase("hier_list"):
        cliques, cores, members = _prepare(graph, result, tracker,
                                           listing_engine, s_cliques)
    with tracker.phase("hier_levels"):
        if engine == "batch":
            from .batchhier import batch_levels
            levels_data = batch_levels(cores, members, tracker)
        else:
            levels_data = _levels_scalar(cores, members, tracker)
    with tracker.phase("hier_emit"):
        hierarchy = _emit(result.r, result.s, cliques, levels_data,
                          tracker)
    return hierarchy


def _prepare(graph: CSRGraph, result: NucleusResult,
             tracker: CostTracker, listing_engine: str,
             s_cliques) -> tuple[list, np.ndarray, np.ndarray]:
    """Sorted r-clique list, core array, and the (m_s, C(s,r)) member
    matrix mapping every s-clique to its r-subset indices.

    Shared between the engines: the simulated charges here are identical
    regardless of ``listing_engine`` (the lister's own parity contract)
    and of whether the vectorized key-packing path or the dict fallback
    resolves the subsets (both charge the same closed forms).
    """
    r, s = result.r, result.s
    cores_dict = result.as_dict()
    cliques = sorted(cores_dict)
    n_r = len(cliques)
    # Semisort the r-cliques by key and build the core array.
    tracker.add_work(float(n_r) * _log2(max(n_r, 2)))
    tracker.add_work_int(n_r)
    cores = np.fromiter((cores_dict[clique] for clique in cliques),
                        dtype=np.int64, count=n_r)
    if s_cliques is None:
        dg, _ = orient(graph, "degeneracy", tracker)
        raw = collect_cliques(dg, s, tracker, engine=listing_engine)
    else:
        raw = np.asarray([tuple(int(v) for v in clique)
                          for clique in s_cliques],
                         dtype=np.int64).reshape(-1, s)
    rows = np.sort(raw, axis=1)
    m_s = int(rows.shape[0])
    # Per-row sort into ascending vertex order (s log s comparisons).
    tracker.add_work_frac_repeated(float(s) * _log2(s), m_s)
    combs = list(combinations(range(s), r))
    n_sub = len(combs)
    if m_s:
        subs = np.stack([rows[:, comb] for comb in combs], axis=1)
    else:
        subs = np.empty((0, n_sub, r), dtype=np.int64)
    members = _map_subsets(graph.n, subs, cliques, tracker)
    return cliques, cores, members


def _map_subsets(n_vertices: int, subs: np.ndarray, cliques: list,
                 tracker: CostTracker) -> np.ndarray:
    """Map every r-subset row to its index in the sorted r-clique list.

    Packs subsets into integer keys and binary-searches the (already
    lexicographically sorted) clique key array; falls back to a dict
    probe when the keys overflow 63 bits.  Charges r units to pack plus
    a log-time sorted probe per subset, identically on both paths.
    """
    m_s, n_sub, r = (int(subs.shape[0]), int(subs.shape[1]),
                     int(subs.shape[2]))
    n_r = len(cliques)
    tracker.add_work_int(m_s * n_sub * r)
    tracker.add_work_frac_repeated(_log2(max(n_r, 2)), m_s * n_sub)
    if m_s == 0 or n_r == 0:
        return np.empty((m_s, n_sub), dtype=np.int64)
    try:
        encoder = CliqueEncoder(max(n_vertices, 2), r)
    except KeyWidthError:
        index = {clique: i for i, clique in enumerate(cliques)}
        out = np.empty((m_s, n_sub), dtype=np.int64)
        for j in range(m_s):
            for k in range(n_sub):
                out[j, k] = index[tuple(int(v) for v in subs[j, k])]
        return out
    clique_keys = encoder.encode_many(
        np.asarray(cliques, dtype=np.int64).reshape(n_r, r))
    sub_keys = encoder.encode_many(subs.reshape(m_s * n_sub, r))
    idx = np.minimum(np.searchsorted(clique_keys, sub_keys), n_r - 1)
    if not bool(np.all(clique_keys[idx] == sub_keys)):
        raise ValueError("an s-clique has an r-subset that is not in "
                         "the decomposition's r-clique table")
    return idx.reshape(m_s, n_sub).astype(np.int64)


def _levels_scalar(cores: np.ndarray, members: np.ndarray,
                   tracker: CostTracker | None = None) -> list:
    """The scalar level-sweep kernel (and the batch engine's oracle).

    ``cores[i]`` is the core number of r-clique ``i`` (ids index the
    lexicographically sorted clique list); ``members[j]`` holds the
    C(s, r) r-subset ids of s-clique ``j``.  Returns, ascending by
    level, one ``(level, active_ids, labels)`` triple per present core
    value: the alive r-cliques (ordered by descending core, ties by
    ascending id --- the accumulation order of the descending sweep) and
    their connected-component label under s-clique connectivity at that
    level.

    Charge model (mirrored exactly by ``batch_levels``): ``width`` per
    s-clique death-level min, 1 per bucketed item, ``3(width-1)`` per
    dying s-clique's star-edge build-and-map, the shared
    :func:`connected_components` charges per level, 1 per alive r-clique
    for the label composition (levels with new edges only), 1 per alive
    r-clique for the snapshot, plus one round and a log-span per level.
    """
    n = int(cores.size)
    count = int(members.shape[0])
    width = int(members.shape[1])
    death = np.empty(count, dtype=np.int64)
    for j in range(count):
        row = members[j]
        low = int(cores[row[0]])
        for k in range(1, width):
            core = int(cores[row[k]])
            if core < low:
                low = core
        death[j] = low
        if tracker is not None:
            tracker.add_work(float(width))
    r_buckets: dict[int, list[int]] = {}
    for i in range(n):
        r_buckets.setdefault(int(cores[i]), []).append(i)
        if tracker is not None:
            tracker.add_work(1.0)
    s_buckets: dict[int, list[int]] = {}
    for j in range(count):
        s_buckets.setdefault(int(death[j]), []).append(j)
        if tracker is not None:
            tracker.add_work(1.0)
    label = np.arange(n, dtype=np.int64)
    active: list[int] = []
    out: list[tuple[int, np.ndarray, np.ndarray]] = []
    for level in sorted(r_buckets, reverse=True):
        if tracker is not None:
            tracker.add_round()
        for i in r_buckets[level]:
            active.append(i)
        edges: list[tuple[int, int]] = []
        for j in s_buckets.get(level, ()):
            row = members[j]
            first = int(label[row[0]])
            for k in range(1, width):
                edges.append((first, int(label[row[k]])))
            if tracker is not None:
                tracker.add_work(float(3 * (width - 1)))
        if edges:
            relabel = connected_components(n, edges, tracker)
            for a in active:
                label[a] = relabel[label[a]]
            if tracker is not None:
                tracker.add_work(float(len(active)))
        snapshot = np.empty(len(active), dtype=np.int64)
        for pos in range(len(active)):
            snapshot[pos] = label[active[pos]]
        if tracker is not None:
            tracker.add_work(float(len(active)))
            tracker.add_span(_log2(len(active) + len(edges)))
        out.append((int(level), np.array(active, dtype=np.int64),
                    snapshot))
    out.reverse()
    return out


def _emit(r: int, s: int, cliques: list, levels_data: list,
          tracker: CostTracker) -> NucleusHierarchy:
    """Materialize Nucleus records from the per-level label snapshots.

    Shared by both engines (same inputs by the kernels' parity contract,
    so same charges).  Reproduces the post-hoc oracle's numbering
    exactly: levels ascending, groups within a level ordered by their
    minimum member index, members sorted, parent looked up through the
    previous level's membership of the group's minimum member.
    """
    hierarchy = NucleusHierarchy(r, s)
    previous_node: dict[int, int] = {}
    next_id = 0
    for level, active, labels in levels_data:
        groups: dict[int, list[int]] = {}
        for pos in range(active.size):
            groups.setdefault(int(labels[pos]), []).append(int(active[pos]))
        # One pass to group plus one to emit; group-by-label is a
        # semisort (linear work in the level's alive count).
        tracker.add_work(float(2 * active.size))
        tracker.add_span(_log2(active.size + 1))
        current_node: dict[int, int] = {}
        for group in sorted(groups.values(), key=min):
            group.sort()
            nucleus = Nucleus(level=int(level),
                              members=tuple(cliques[i] for i in group),
                              node_id=next_id,
                              parent_id=previous_node.get(group[0], -1))
            hierarchy.nuclei.append(nucleus)
            for i in group:
                current_node[i] = next_id
            next_id += 1
        previous_node = current_node
    return hierarchy
