"""The nucleus query service: indexed answers over a built hierarchy.

A :class:`~repro.analysis.hierarchy.NucleusHierarchy` is a flat list of
nuclei, and its navigation helpers (``at_level``, ``children_of``) scan
that list on every call --- fine for a one-off inspection, unusable as a
serving layer.  :class:`HierarchyIndex` precomputes, in one pass over
the dendrogram at construction time, the indexes the ROADMAP's query
shapes need:

* a node table (id -> nucleus) and a child index (id -> children);
* a level index (level -> node ids, in hierarchy order);
* a vertex index (vertex -> level -> node ids), answering "the nucleus
  containing v at level k" directly;
* per-vertex node-id sets, answering "the densest nucleus containing
  edge (u, v)" by intersecting two membership sets.

Every query walks only its own answer (plus, for the edge query, the
two endpoint membership sets) --- never the full nucleus list.  A vertex
can belong to several nuclei at one level (two dense regions may share
a vertex without being s-clique connected), so vertex queries return
lists.

"Densest" follows the nucleus-decomposition reading: deeper levels are
denser subgraphs, so the densest nucleus containing an edge is the one
at the maximum level containing both endpoints; ties (possible only
when the endpoints co-occur in several same-level nuclei) break to the
fewest member r-cliques, then the smallest node id.
"""

from __future__ import annotations

from .hierarchy import Nucleus, NucleusHierarchy


class HierarchyIndex:
    """Precomputed child/level/vertex indexes over a nucleus hierarchy.

    Construction is one pass over ``hierarchy.nuclei``; queries never
    scan it again.
    """

    def __init__(self, hierarchy: NucleusHierarchy):
        self.hierarchy = hierarchy
        self._node: dict[int, Nucleus] = {}
        self._children: dict[int, list[int]] = {}
        self._by_level: dict[int, list[int]] = {}
        self._vertex_level: dict[int, dict[int, list[int]]] = {}
        self._vertex_nodes: dict[int, set[int]] = {}
        for nucleus in hierarchy.nuclei:
            node_id = nucleus.node_id
            self._node[node_id] = nucleus
            if nucleus.parent_id != -1:
                self._children.setdefault(nucleus.parent_id,
                                          []).append(node_id)
            self._by_level.setdefault(nucleus.level, []).append(node_id)
            for vertex in sorted(nucleus.vertices):
                levels = self._vertex_level.setdefault(vertex, {})
                levels.setdefault(nucleus.level, []).append(node_id)
                self._vertex_nodes.setdefault(vertex, set()).add(node_id)

    # -- basic lookups ----------------------------------------------------

    def node(self, node_id: int) -> Nucleus:
        """The nucleus with this id (KeyError if absent)."""
        return self._node[node_id]

    def children_of(self, node_id: int) -> list[Nucleus]:
        """The nuclei one level deeper contained in this one."""
        return [self._node[child]
                for child in self._children.get(node_id, [])]

    def levels(self) -> list[int]:
        """All levels with at least one nucleus, ascending."""
        return sorted(self._by_level)

    # -- the three ROADMAP query shapes -----------------------------------

    def at_level(self, level: int) -> list[Nucleus]:
        """All nuclei at core level ``level`` (hierarchy order)."""
        return [self._node[node_id]
                for node_id in self._by_level.get(level, [])]

    def nucleus_of_vertex(self, vertex: int, level: int) -> list[Nucleus]:
        """The nuclei at ``level`` whose vertex set contains ``vertex``.

        Usually zero or one nucleus; more than one when the vertex sits
        in several dense regions that are not s-clique connected.
        """
        levels = self._vertex_level.get(vertex)
        if not levels:
            return []
        return [self._node[node_id] for node_id in levels.get(level, [])]

    def densest_containing_edge(self, u: int, v: int) -> Nucleus | None:
        """The deepest nucleus containing both endpoints, or None.

        Intersects the two endpoints' membership sets and picks the
        maximum level (ties: fewest members, then smallest node id).
        The endpoints need not be adjacent in the input graph --- the
        query answers "the densest region containing both".
        """
        shared = self._vertex_nodes.get(u, set()) \
            & self._vertex_nodes.get(v, set())
        if not shared:
            return None
        best = min(shared, key=lambda node_id: (
            -self._node[node_id].level, self._node[node_id].size,
            node_id))
        return self._node[best]

    def densest_containing_vertex(self, vertex: int) -> Nucleus | None:
        """The deepest nucleus containing ``vertex``, or None."""
        levels = self._vertex_level.get(vertex)
        if not levels:
            return None
        level = max(levels)
        candidates = levels[level]
        best = min(candidates, key=lambda node_id: (
            self._node[node_id].size, node_id))
        return self._node[best]
