"""Serializing decomposition results.

JSON round-tripping for :class:`~repro.core.decomp.NucleusResult` outputs
(core numbers plus run metadata), and a flat-record view convenient for
DataFrame-style consumers.  The tracker and table internals are not
serialized --- only the answer and its summary statistics.
"""

from __future__ import annotations

import json

from ..core.decomp import NucleusResult


def result_to_records(result: NucleusResult) -> list[dict]:
    """One flat record per r-clique: vertices plus core number."""
    return [{"clique": list(clique), "core": core}
            for clique, core in sorted(result.as_dict().items())]


def save_result_json(result: NucleusResult, path) -> None:
    """Write the decomposition (cores + metadata) as JSON."""
    payload = {
        "r": result.r,
        "s": result.s,
        "n_r_cliques": result.n_r_cliques,
        "n_s_cliques": result.n_s_cliques,
        "rho": result.rho,
        "max_core": result.max_core,
        "table_memory_units": result.table_memory_units,
        "stats": result.tracker.summary(),
        "cores": [[list(clique), core]
                  for clique, core in sorted(result.as_dict().items())],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_result_json(path) -> dict:
    """Load a saved decomposition.

    Returns a dict with the saved metadata plus ``cores`` as a mapping
    from vertex tuples to core numbers (the natural Python form).
    """
    with open(path) as handle:
        payload = json.load(handle)
    payload["cores"] = {tuple(clique): core
                        for clique, core in payload["cores"]}
    return payload
