"""Serializing decomposition results and hierarchies.

JSON round-tripping for :class:`~repro.core.decomp.NucleusResult` outputs
(core numbers plus run metadata) and for
:class:`~repro.analysis.hierarchy.NucleusHierarchy` dendrograms, plus a
flat-record view convenient for DataFrame-style consumers.  The tracker
and table internals are not serialized --- only the answer and its
summary statistics.
"""

from __future__ import annotations

import json

from ..core.decomp import NucleusResult
from .hierarchy import Nucleus, NucleusHierarchy


def result_to_records(result: NucleusResult) -> list[dict]:
    """One flat record per r-clique: vertices plus core number."""
    return [{"clique": list(clique), "core": core}
            for clique, core in sorted(result.as_dict().items())]


def save_result_json(result: NucleusResult, path) -> None:
    """Write the decomposition (cores + metadata) as JSON."""
    payload = {
        "r": result.r,
        "s": result.s,
        "n_r_cliques": result.n_r_cliques,
        "n_s_cliques": result.n_s_cliques,
        "rho": result.rho,
        "max_core": result.max_core,
        "table_memory_units": result.table_memory_units,
        "stats": result.tracker.summary(),
        "cores": [[list(clique), core]
                  for clique, core in sorted(result.as_dict().items())],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_result_json(path) -> dict:
    """Load a saved decomposition.

    Returns a dict with the saved metadata plus ``cores`` as a mapping
    from vertex tuples to core numbers (the natural Python form).
    """
    with open(path) as handle:
        payload = json.load(handle)
    payload["cores"] = {tuple(clique): core
                        for clique, core in payload["cores"]}
    return payload


def hierarchy_to_payload(hierarchy: NucleusHierarchy) -> dict:
    """The JSON-ready dict form of a nucleus hierarchy.

    One record per nucleus (node id, parent id, level, member r-cliques
    as vertex lists); node ids are the hierarchy's own, so parent links
    survive the round trip untouched.
    """
    return {
        "r": hierarchy.r,
        "s": hierarchy.s,
        "nuclei": [{"node_id": nucleus.node_id,
                    "parent_id": nucleus.parent_id,
                    "level": nucleus.level,
                    "members": [list(clique)
                                for clique in nucleus.members]}
                   for nucleus in hierarchy.nuclei],
    }


def payload_to_hierarchy(payload: dict) -> NucleusHierarchy:
    """Rebuild a :class:`NucleusHierarchy` from its payload dict."""
    hierarchy = NucleusHierarchy(int(payload["r"]), int(payload["s"]))
    for record in payload["nuclei"]:
        hierarchy.nuclei.append(Nucleus(
            level=int(record["level"]),
            members=tuple(tuple(int(v) for v in clique)
                          for clique in record["members"]),
            node_id=int(record["node_id"]),
            parent_id=int(record["parent_id"])))
    return hierarchy


def save_hierarchy_json(hierarchy: NucleusHierarchy, path) -> None:
    """Write the hierarchy (levels, members, parent links) as JSON."""
    with open(path, "w") as handle:
        json.dump(hierarchy_to_payload(hierarchy), handle)


def load_hierarchy_json(path) -> NucleusHierarchy:
    """Load a hierarchy saved by :func:`save_hierarchy_json`."""
    with open(path) as handle:
        return payload_to_hierarchy(json.load(handle))
