"""Navigating nucleus decompositions: subgraphs, spectra, densities.

The decomposition assigns each r-clique a core number; these helpers turn
that labeling into the objects analysts actually inspect --- the subgraph
at a level, the vertex set of the densest region, per-level densities, and
cross-decomposition comparisons.

(Partitioning a level into *connected* nuclei via s-clique connectivity is
the hierarchy problem the paper explicitly scopes out; these utilities work
with the union-at-a-level instead, like the paper's algorithm.)
"""

from __future__ import annotations

import numpy as np

from ..core.decomp import NucleusResult
from ..graph.csr import CSRGraph


def nucleus_members(result: NucleusResult, level: int) -> set[int]:
    """Vertices of r-cliques whose core number is at least ``level``."""
    return {v for clique, core in result.as_dict().items()
            if core >= level for v in clique}


def core_level_subgraph(graph: CSRGraph, result: NucleusResult,
                        level: int) -> tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by the level's member vertices.

    Returns ``(subgraph, originals)`` with ``originals[i]`` the input id of
    subgraph vertex ``i``.
    """
    members = nucleus_members(result, level)
    if not members:
        return CSRGraph.from_edges(1, []), np.zeros(0, dtype=np.int64)
    return graph.induced_subgraph(sorted(members))


def core_spectrum(result: NucleusResult) -> dict[int, int]:
    """r-cliques per core level, cumulative from above.

    ``spectrum[c]`` counts r-cliques with core >= c --- the size of the
    level-c union-nucleus.
    """
    histogram = result.core_histogram()
    spectrum: dict[int, int] = {}
    running = 0
    for level in sorted(histogram, reverse=True):
        running += histogram[level]
        spectrum[level] = running
    return dict(sorted(spectrum.items()))


def density_profile(graph: CSRGraph, result: NucleusResult) -> list[dict]:
    """Edge density of each level's induced subgraph.

    One record per core level: vertex count, edge count, and density
    ``2m / (n (n-1))`` of the induced subgraph --- the monotone densification
    that makes nuclei useful for dense-substructure discovery.
    """
    profile = []
    for level in sorted(set(result.core_histogram())):
        sub, originals = core_level_subgraph(graph, result, level)
        n, m = sub.n, sub.m
        density = 2.0 * m / (n * (n - 1)) if n > 1 else 0.0
        profile.append({"level": level, "vertices": int(originals.size),
                        "edges": m, "density": density})
    return profile


def overlap_matrix(results: list[NucleusResult],
                   level_fraction: float = 1.0) -> np.ndarray:
    """Jaccard overlap of top-level vertex sets across decompositions.

    For each result, takes the vertices at core >= ``level_fraction *
    max_core`` and returns the pairwise Jaccard similarity matrix ---
    quantifying how much the (r,s) choices agree about where the dense
    region is (cf. the paper's motivation that different (r,s) capture
    different structures).

    Two *empty* top sets score 0.0, not 1.0: an empty selection carries
    no evidence of agreement, and Jaccard(0/0) is conventionally zero
    here so a pair of decompositions with no dense region never reads as
    a perfect match.  (The diagonal stays 1.0 by definition.)

    Caveat: when a result's ``max_core`` is 0 the threshold is also 0,
    so its top set is *every* vertex touching an r-clique --- the
    decomposition found no dense region and the "top" degenerates to the
    whole clique-covered graph.  Callers comparing such results should
    treat their rows as uninformative rather than as genuine overlap.
    """
    tops = []
    for result in results:
        threshold = int(np.ceil(level_fraction * result.max_core))
        tops.append(nucleus_members(result, threshold))
    k = len(tops)
    matrix = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            union = tops[i] | tops[j]
            inter = tops[i] & tops[j]
            value = len(inter) / len(union) if union else 0.0
            matrix[i, j] = matrix[j, i] = value
    return matrix
