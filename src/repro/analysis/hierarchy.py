"""Connectivity-refined nucleus hierarchy (the Sariyuce--Pinar notion).

The paper computes (r,s)-clique-core *numbers* and notes (Section 3,
footnote 2) that the original nucleus definition additionally requires the
r-cliques of a nucleus to be *connected through s-cliques*; partitioning
each level into connected nuclei is the hierarchy-construction problem of
Sariyuce and Pinar [54], which the paper scopes out of its algorithm.

This module provides that refinement as a post-processing step on top of
ARB-NUCLEUS-DECOMP's output: for each level c, the r-cliques with core
>= c are grouped by s-clique connectivity (two r-cliques are adjacent if
some surviving s-clique contains both, where an s-clique survives if all
its r-cliques have core >= c).  The connected groups are exactly the
c-(r,s) nuclei, and nesting across levels yields the hierarchy forest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..cliques.listing import collect_cliques
from ..cliques.orient import orient
from ..core.decomp import NucleusResult
from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker
from ..parallel.unionfind import UnionFind


@dataclass
class Nucleus:
    """One connected c-(r,s) nucleus."""

    level: int
    members: tuple  # r-cliques (sorted vertex tuples), sorted
    node_id: int = -1
    parent_id: int = -1  # enclosing nucleus at the next-lower level

    @property
    def vertices(self) -> set[int]:
        return {v for clique in self.members for v in clique}

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class NucleusHierarchy:
    """All connected nuclei across levels, with containment links."""

    r: int
    s: int
    nuclei: list[Nucleus] = field(default_factory=list)

    def at_level(self, level: int) -> list[Nucleus]:
        return [nucleus for nucleus in self.nuclei
                if nucleus.level == level]

    def children_of(self, node_id: int) -> list[Nucleus]:
        return [nucleus for nucleus in self.nuclei
                if nucleus.parent_id == node_id]

    def roots(self) -> list[Nucleus]:
        return [nucleus for nucleus in self.nuclei
                if nucleus.parent_id == -1]

    def leaves(self) -> list[Nucleus]:
        with_children = {nucleus.parent_id for nucleus in self.nuclei}
        return [nucleus for nucleus in self.nuclei
                if nucleus.node_id not in with_children]

    def __len__(self) -> int:
        return len(self.nuclei)


def build_hierarchy(graph: CSRGraph, result: NucleusResult,
                    method: str = "union_find",
                    tracker: CostTracker | None = None,
                    listing_engine: str | None = None,
                    s_cliques=None) -> NucleusHierarchy:
    """Refine a decomposition into the connected-nucleus hierarchy.

    Enumerates the graph's s-cliques once, then for each core level groups
    the surviving r-cliques that share a surviving s-clique, using either
    serial ``"union_find"`` or the parallel ``"shiloach_vishkin"``
    hook-and-compress connectivity.  Suitable for the graph sizes this
    reproduction targets (it materializes the s-clique list, the
    space/connectivity work the paper's footnote 2 refers to).

    The s-clique enumeration honors ``listing_engine`` (defaulting to the
    decomposition's configured one), so a batch-configured run re-lists
    with the frontier engine instead of always paying the scalar
    recursion; alternatively pass ``s_cliques`` (an iterable of vertex
    tuples) to skip the re-listing entirely.  This per-level rescan is
    the differential *oracle* for the level-batched engine in
    :mod:`repro.analysis.construct`, which is what production callers
    should use.
    """
    if method not in ("union_find", "shiloach_vishkin"):
        raise ValueError("method must be 'union_find' or "
                         "'shiloach_vishkin'")
    r, s = result.r, result.s
    cores = result.as_dict()
    cliques = sorted(cores)
    index = {clique: i for i, clique in enumerate(cliques)}
    if s_cliques is None:
        engine = listing_engine if listing_engine is not None \
            else result.config.listing_engine
        dg, _ = orient(graph, "degeneracy", tracker)
        s_cliques = [tuple(sorted(int(x) for x in row))
                     for row in collect_cliques(dg, s, tracker,
                                                engine=engine)]
    else:
        s_cliques = [tuple(sorted(int(x) for x in clique))
                     for clique in s_cliques]
    s_members = [[index[sub] for sub in combinations(big, r)]
                 for big in s_cliques]

    hierarchy = NucleusHierarchy(r, s)
    levels = sorted({core for core in cores.values()})
    #: r-clique index -> node id of its nucleus at the previous level.
    previous_node: dict[int, int] = {}
    next_id = 0
    for level in levels:
        survivor = [cores[clique] >= level for clique in cliques]
        surviving_groups = [members for members in s_members
                            if all(survivor[i] for i in members)]
        groups = _group_survivors(len(cliques), survivor, surviving_groups,
                                  method, tracker)
        current_node: dict[int, int] = {}
        for group in groups.values():
            members = tuple(cliques[i] for i in sorted(group))
            parent = previous_node.get(group[0], -1)
            nucleus = Nucleus(level=level, members=members,
                              node_id=next_id, parent_id=parent)
            hierarchy.nuclei.append(nucleus)
            for i in group:
                current_node[i] = next_id
            next_id += 1
        previous_node = current_node
    return hierarchy


def _group_survivors(n: int, survivor: list[bool], surviving_groups,
                     method: str,
                     tracker: CostTracker | None = None
                     ) -> dict[int, list[int]]:
    """Partition the surviving r-clique ids into connected groups."""
    groups: dict[int, list[int]] = {}
    if method == "shiloach_vishkin":
        from ..parallel.connectivity import components_of_sets
        labels = components_of_sets(n, surviving_groups, tracker)
        for i, alive in enumerate(survivor):
            if alive:
                groups.setdefault(int(labels[i]), []).append(i)
        return groups
    uf = UnionFind(n, tracker)
    for members in surviving_groups:
        first = members[0]
        for other in members[1:]:
            uf.union(first, other)
    for i, alive in enumerate(survivor):
        if alive:
            groups.setdefault(uf.find(i), []).append(i)
    return groups
