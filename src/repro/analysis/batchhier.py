"""The vectorized level-sweep engine for hierarchy construction.

:func:`repro.analysis.construct._levels_scalar` walks the descending
level sweep as per-element Python loops --- correct, and the cost-model
oracle, but interpreter-bound on the death-level mins, the star-edge
builds, and the label compositions.  This module is the NumPy
equivalent: death levels come from one fancy-indexed row min, the
descending activation order from one stable argsort (``-cores``, ties
resolved to ascending id exactly like the scalar bucket appends), level
segments from binary searches over the sorted key arrays, and each
level's star edges from ``np.repeat`` / reshape over the dying
s-cliques' label-mapped member rows.

The contract is the batch engines' usual one (docs/cost-model.md):
bit-for-bit identical simulated costs versus the scalar kernel --- every
charge here is an integer closed form over a segment whose elements the
scalar loop charges one at a time --- and identical outputs (the same
``(level, active, labels)`` triples, down to array order), because both
engines feed the identical per-level edge arrays to the shared
:func:`repro.parallel.connectivity.connected_components`.  Rule PAR007
pins the pairing below.
"""

from __future__ import annotations

import numpy as np

from ..parallel.connectivity import connected_components
from ..parallel.runtime import CostTracker, _log2

#: Batch<->scalar parity contract, verified statically by ``repro lint
#: --strict`` (rule PAR007); see :data:`repro.core.batchpeel.PARLINT_PARITY`
#: for the format.  Regenerate fingerprints with ``repro lint --strict
#: --emit-registry`` after re-running the differential parity tests
#: (tests/test_hierarchy_engine.py).
PARLINT_PARITY = {
    "batch_levels": {
        "oracle": "repro.analysis.construct._levels_scalar",
        "fingerprint": {
            "add_round": 1,
            "add_span": 1,
            "add_work_int": 6,
            "connected_components": 1,
        },
    },
}


def batch_levels(cores: np.ndarray, members: np.ndarray,
                 tracker: CostTracker | None = None) -> list:
    """Vectorized descending level sweep; see ``_levels_scalar``.

    Returns the identical ``(level, active_ids, labels)`` triples,
    ascending by level, with identical simulated charges.
    """
    n = int(cores.size)
    count = int(members.shape[0])
    width = int(members.shape[1])
    if count:
        death = cores[members].min(axis=1)
    else:
        death = np.empty(0, dtype=np.int64)
    if tracker is not None:
        # One min over width members per s-clique, then one bucketing
        # pass over the r-cliques and one over the s-cliques --- the
        # closed forms of the scalar kernel's per-element charges.
        tracker.add_work_int(count * width)
        tracker.add_work_int(n)
        tracker.add_work_int(count)
    # Descending activation order: core desc, ties ascending id (stable
    # sort of the negated keys) --- the scalar sweep's bucket-append
    # order.  The negated sorted keys double as binary-search indexes
    # for the per-level segment boundaries.
    order_r = np.argsort(-cores, kind="stable")
    order_s = np.argsort(-death, kind="stable")
    neg_cores = -cores[order_r]
    neg_death = -death[order_s]
    levels = np.unique(cores)[::-1]
    label = np.arange(n, dtype=np.int64)
    out: list[tuple[int, np.ndarray, np.ndarray]] = []
    for level in levels:
        if tracker is not None:
            tracker.add_round()
        a_end = int(np.searchsorted(neg_cores, -level, side="right"))
        active = order_r[:a_end]
        s_lo = int(np.searchsorted(neg_death, -level, side="left"))
        s_hi = int(np.searchsorted(neg_death, -level, side="right"))
        dying = order_s[s_lo:s_hi]
        n_edges = 0
        if dying.size:
            rows = members[dying]
            n_edges = int(dying.size) * (width - 1)
            edges = np.empty((n_edges, 2), dtype=np.int64)
            edges[:, 0] = np.repeat(label[rows[:, 0]], width - 1)
            edges[:, 1] = label[rows[:, 1:]].reshape(-1)
            if tracker is not None:
                tracker.add_work_int(3 * (width - 1) * int(dying.size))
            relabel = connected_components(n, edges, tracker)
            label[active] = relabel[label[active]]
            if tracker is not None:
                tracker.add_work_int(int(active.size))
        snapshot = label[active].copy()
        if tracker is not None:
            tracker.add_work_int(int(active.size))
            tracker.add_span(_log2(active.size + n_edges))
        out.append((int(level), active.copy(), snapshot))
    out.reverse()
    return out
