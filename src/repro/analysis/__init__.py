"""Post-decomposition analysis: navigating and measuring nuclei.

Tools a downstream user applies to a
:class:`~repro.core.decomp.NucleusResult`: extracting the subgraph of a
given core level, measuring nucleus density, comparing decompositions
across (r,s), building the connected-nucleus hierarchy on the simulated
machine, serving queries over it, and exporting results.
"""

from .construct import nucleus_hierarchy
from .hierarchy import Nucleus, NucleusHierarchy, build_hierarchy
from .nuclei import (core_level_subgraph, core_spectrum, density_profile,
                     nucleus_members, overlap_matrix)
from .query import HierarchyIndex
from .serialize import (hierarchy_to_payload, load_hierarchy_json,
                        load_result_json, payload_to_hierarchy,
                        result_to_records, save_hierarchy_json,
                        save_result_json)

__all__ = [
    "core_level_subgraph", "nucleus_members", "core_spectrum",
    "density_profile", "overlap_matrix",
    "save_result_json", "load_result_json", "result_to_records",
    "save_hierarchy_json", "load_hierarchy_json",
    "hierarchy_to_payload", "payload_to_hierarchy",
    "build_hierarchy", "nucleus_hierarchy", "HierarchyIndex",
    "Nucleus", "NucleusHierarchy",
]
