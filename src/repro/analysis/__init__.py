"""Post-decomposition analysis: navigating and measuring nuclei.

Tools a downstream user applies to a
:class:`~repro.core.decomp.NucleusResult`: extracting the subgraph of a
given core level, measuring nucleus density, comparing decompositions
across (r,s), and exporting results.
"""

from .hierarchy import Nucleus, NucleusHierarchy, build_hierarchy
from .nuclei import (core_level_subgraph, core_spectrum, density_profile,
                     nucleus_members, overlap_matrix)
from .serialize import (load_result_json, result_to_records, save_result_json)

__all__ = [
    "core_level_subgraph", "nucleus_members", "core_spectrum",
    "density_profile", "overlap_matrix",
    "save_result_json", "load_result_json", "result_to_records",
    "build_hierarchy", "Nucleus", "NucleusHierarchy",
]
