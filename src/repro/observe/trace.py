"""Accounting-neutral execution tracing for the simulated machine.

A :class:`TraceRecorder` attaches to a
:class:`~repro.parallel.runtime.CostTracker` exactly like the race
detector does (``tracker.trace = TraceRecorder()``): phases, parallel
regions, and tasks report their begin/end to it, and the recorder never
charges any counter --- it only *reads* them.  The result exports as
Chrome trace-event JSON (the ``traceEvents`` format) and loads directly
in ``chrome://tracing`` or https://ui.perfetto.dev.

There is no wall clock on the simulated machine, so the timeline's time
axis is the tracker's accumulated **work** (one "microsecond" per work
unit): a phase that spans 40% of the horizontal axis performed 40% of the
run's operations.  Each slice carries the deltas of every other counter
(span, rounds, contention, cache misses) in its ``args`` so hovering a
slice in Perfetto shows *why* it is wide.

Track layout:

* ``tid 0`` ("phases") -- one slice per ``tracker.phase(...)`` block,
  nested when phases nest;
* ``tid 1`` ("parallel regions") -- one slice per ``tracker.parallel(n)``
  region, with the task count and closing max task span;
* ``tid 2..`` ("lane k") -- individual tasks, round-robined over a small
  number of display lanes.  Task slices have zero width whenever a task
  charges no work, and peeling rounds can have millions of tasks, so task
  recording stops (per region) after :attr:`task_limit` tasks --- the
  region slice still records the true task count.

Sharded runs (:mod:`repro.distributed`) attach one recorder per shard
with ``TraceRecorder(shard=k)``: the same track layout repeats in a
dedicated tid block per shard (offset ``_SHARD_STRIDE * (k + 1)``) so the
per-shard ``local_peel`` / ``exchange`` phase slices line up as parallel
lanes and the exchange barriers between local peel rounds are visible at
a glance.  :func:`merged_chrome_trace` combines the coordinator's and the
shards' recorders into one Perfetto-loadable timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Counters snapshotted at begin/end of every slice; deltas go to ``args``.
_COUNTERS = ("work", "span", "rounds", "contention", "atomic_ops",
             "table_probes", "cache_misses")

_PID = 1
_PHASE_TID = 0
_REGION_TID = 1
_FIRST_LANE_TID = 2
#: tid block reserved per shard lane group (shard k uses
#: ``_SHARD_STRIDE * (k + 1) + {0, 1, 2..}``; the coordinator keeps 0..).
_SHARD_STRIDE = 64


def _snapshot(tracker) -> dict[str, float]:
    total = tracker.total
    return {name: getattr(total, name) for name in _COUNTERS}


@dataclass
class _Open:
    """One open (begun, not yet ended) slice."""

    name: str
    tid: int
    ts: float
    begin: dict[str, float] = field(default_factory=dict)


class TraceRecorder:
    """Records phase/region/task lifetimes as Chrome trace events.

    Parameters
    ----------
    task_limit:
        Maximum number of task slices recorded per parallel region (the
        region slice itself is always recorded).  ``0`` disables task
        slices entirely.
    lanes:
        Number of display lanes tasks are round-robined across, imitating
        worker threads of a real execution.
    shard:
        When set, all tids shift into the shard's dedicated block and the
        thread names are prefixed with ``shard <k>`` so multiple
        recorders merge into one distributed timeline
        (:func:`merged_chrome_trace`).
    """

    def __init__(self, task_limit: int = 256, lanes: int = 8,
                 shard: int | None = None):
        self.task_limit = max(0, task_limit)
        self.lanes = max(1, lanes)
        self.shard = shard
        self._tid_base = 0 if shard is None else _SHARD_STRIDE * (shard + 1)
        self.events: list[dict] = []
        self.dropped_tasks = 0
        self._phase_stack: list[_Open] = []
        self._region_stack: list[_Open] = []
        self._task_stack: list[_Open | None] = []
        self._region_task_counts: list[int] = []

    # -- hooks called by CostTracker (accounting-neutral) -------------------

    def begin_phase(self, tracker, name: str) -> None:
        self._phase_stack.append(
            _Open(name, self._tid_base + _PHASE_TID, tracker.total.work,
                  _snapshot(tracker)))

    def end_phase(self, tracker, name: str) -> None:
        self._close(self._phase_stack.pop(), tracker, category="phase")

    def begin_region(self, tracker, n_tasks: int) -> None:
        self._region_stack.append(
            _Open(f"parallel[{n_tasks}]", self._tid_base + _REGION_TID,
                  tracker.total.work, _snapshot(tracker)))
        self._region_task_counts.append(0)

    def end_region(self, tracker, max_task_span: float) -> None:
        self._region_task_counts.pop()
        self._close(self._region_stack.pop(), tracker, category="region",
                    extra={"max_task_span": max_task_span})

    def begin_task(self, tracker, task_index: int) -> None:
        if not self._region_task_counts:  # defensive: task outside a region
            self._task_stack.append(None)
            return
        self._region_task_counts[-1] += 1
        if self._region_task_counts[-1] > self.task_limit:
            self.dropped_tasks += 1
            self._task_stack.append(None)
            return
        tid = self._tid_base + _FIRST_LANE_TID + task_index % self.lanes
        self._task_stack.append(
            _Open(f"task {task_index}", tid, tracker.total.work,
                  _snapshot(tracker)))

    def end_task(self, tracker, task_index: int) -> None:
        opened = self._task_stack.pop()
        if opened is not None:
            self._close(opened, tracker, category="task")

    # -- event assembly -----------------------------------------------------

    def _close(self, opened: _Open, tracker, category: str,
               extra: dict | None = None) -> None:
        now = _snapshot(tracker)
        args = {name: now[name] - opened.begin.get(name, 0.0)
                for name in _COUNTERS}
        if extra:
            args.update(extra)
        self.events.append({
            "name": opened.name,
            "cat": category,
            "ph": "X",  # complete event: begin timestamp + duration
            "ts": opened.ts,
            "dur": max(0.0, tracker.total.work - opened.ts),
            "pid": _PID,
            "tid": opened.tid,
            "args": args,
        })

    def _metadata(self) -> list[dict]:
        def meta(name, tid, label):
            return {"name": name, "ph": "M", "pid": _PID, "tid": tid,
                    "args": {"name": label}}
        prefix = "" if self.shard is None else f"shard {self.shard} "
        base = self._tid_base
        lanes = [meta("thread_name", base + _FIRST_LANE_TID + k,
                      f"{prefix}lane {k}")
                 for k in range(self.lanes)]
        return [
            {"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
             "args": {"name": "simulated machine (time axis = work units)"}},
            meta("thread_name", base + _PHASE_TID, f"{prefix}phases"),
            meta("thread_name", base + _REGION_TID,
                 f"{prefix}parallel regions"),
            *lanes,
        ]

    def to_chrome_trace(self) -> dict:
        """The complete ``traceEvents`` JSON object (Perfetto-loadable)."""
        return {
            "traceEvents": self._metadata() + self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated work units (1 unit = 1 us displayed)",
                "dropped_task_slices": self.dropped_tasks,
            },
        }

    def write(self, path) -> None:
        """Serialize the trace to ``path`` as Chrome trace-event JSON."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)


def merged_chrome_trace(recorders) -> dict:
    """Combine several recorders into one Chrome trace object.

    Used by the sharded driver: pass the coordinator's recorder followed
    by the per-shard ones (``shard=k`` each) and every shard renders as
    its own lane group on a shared work-unit time axis.
    """
    events: list[dict] = []
    dropped = 0
    seen_process_name = False
    for recorder in recorders:
        for event in recorder._metadata():
            if event["name"] == "process_name":
                if seen_process_name:
                    continue
                seen_process_name = True
            events.append(event)
        events.extend(recorder.events)
        dropped += recorder.dropped_tasks
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated work units (1 unit = 1 us displayed)",
            "dropped_task_slices": dropped,
        },
    }


def write_merged_trace(recorders, path) -> None:
    """Serialize :func:`merged_chrome_trace` of ``recorders`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(merged_chrome_trace(recorders), handle, indent=1)
