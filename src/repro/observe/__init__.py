"""Observability for the simulated machine: tracing, breakdowns, trajectory.

Three layers, all accounting-neutral (attaching them changes no counter):

* :mod:`repro.observe.trace` -- a :class:`TraceRecorder` that hooks into
  ``CostTracker.phase()`` / ``parallel()`` and exports Chrome trace-event
  JSON viewable in ``chrome://tracing`` / Perfetto;
* :mod:`repro.observe.breakdown` -- renderers for
  :meth:`MachineModel.time_breakdown`, which decomposes every simulated
  time into its six terms (work/P, span, barriers, contention, cache,
  comm);
* :mod:`repro.observe.bench` -- the pinned perf-trajectory suite behind
  ``repro bench`` / ``tools/bench_trajectory.py`` and the committed
  ``BENCH_nucleus.json`` baseline.
"""

from .bench import (BENCH_THREADS, PINNED_SUITE, SHARDED_SUITE, compare,
                    load_payload, run_entry, run_sharded_entry,
                    run_sharded_suite, run_suite, write_payload)
from .breakdown import breakdown_rows, format_breakdown
from .trace import TraceRecorder, merged_chrome_trace, write_merged_trace

__all__ = [
    "TraceRecorder", "merged_chrome_trace", "write_merged_trace",
    "breakdown_rows", "format_breakdown",
    "PINNED_SUITE", "BENCH_THREADS", "SHARDED_SUITE",
    "run_entry", "run_suite", "compare",
    "run_sharded_entry", "run_sharded_suite",
    "load_payload", "write_payload",
]
