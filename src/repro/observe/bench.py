"""The perf-trajectory harness: a pinned suite of tracked decompositions.

Every future performance PR is judged against the numbers this module
produces, so the suite is deliberately **pinned**: fixed surrogate
graphs, fixed (r, s) pairs covering the paper's three headline workloads
(k-core, k-truss, and (3,4) nucleus), the default
:class:`~repro.parallel.runtime.MachineModel`, and an exact (unsampled)
cache simulator.  Everything measured is deterministic, so two runs of
the same tree produce byte-identical metrics and any drift in
``--compare`` mode is a real accounting change.

The canonical output (``BENCH_nucleus.json`` at the repo root) records,
per suite entry, the quantities the paper's evaluation is built from ---
work, span, rounds (rho), contention, cache misses, simulated T1/T60 and
self-relative speedup --- plus the per-phase counters and the five-term
:meth:`~repro.parallel.runtime.MachineModel.time_breakdown` so a
regression can be localized, not just detected.

:func:`compare` flags regressions beyond a relative tolerance; the CI
``bench-trajectory`` job runs it against the committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import replace

from ..analysis.construct import nucleus_hierarchy
from ..baselines.msp import msp_decomposition
from ..baselines.nd import nd_decomposition, pnd_decomposition
from ..baselines.pkt import pkt_decomposition, pkt_opt_cpu_decomposition
from ..core.config import NucleusConfig
from ..core.decomp import arb_nucleus_decomp
from ..core.densest import k_clique_densest
from ..core.kcore import k_core
from ..graph.datasets import load_dataset
from ..graph.stats import partition_statistics
from ..machine.cache import CacheSimulator
from ..parallel.runtime import CostTracker, MachineModel

#: Schema version of the payload; bump on incompatible layout changes.
SCHEMA_VERSION = 1

#: The pinned suite: (graph, r, s).  k-core (1,2), k-truss (2,3), and
#: (3,4) nucleus on three surrogate graphs of increasing size; youtube's
#: (3,4) run is included to keep one mid-size high-(r,s) point.
PINNED_SUITE: tuple[tuple[str, int, int], ...] = (
    ("amazon", 1, 2), ("amazon", 2, 3), ("amazon", 3, 4),
    ("dblp", 1, 2), ("dblp", 2, 3), ("dblp", 3, 4),
    ("youtube", 1, 2), ("youtube", 2, 3), ("youtube", 3, 4),
)

#: Parallel thread count of the trajectory's T_P column (the paper's 60).
BENCH_THREADS = 60

#: Scalar metrics compared by :func:`compare`; True means lower-is-better.
#: ``comm_time`` / ``comm_reduction`` only appear in sharded entries;
#: entries without a metric skip it.
COMPARED_METRICS: dict[str, bool] = {
    "work": True, "span": True, "rho": True, "T1": True,
    "T60": True, "contention": True, "cache_misses": True,
    "speedup": False, "comm_time": True, "comm_reduction": False,
}

_PHASE_FIELDS = ("work", "span", "rounds", "contention", "cache_misses")

#: The pinned baseline suite: (baseline, graph).  The ND-family
#: competitors run on the mid-size dblp surrogate, the truss family and
#: k-core on the largest (youtube), and the densest-subgraph scan on both
#: amazon and dblp (its suffix re-listings grow quickly with graph size).
BASELINE_SUITE: tuple[tuple[str, str], ...] = (
    ("nd", "dblp"),
    ("pnd", "dblp"),
    ("pkt", "youtube"),
    ("pkt-opt-cpu", "youtube"),
    ("msp", "youtube"),
    ("kcore", "youtube"),
    ("densest", "amazon"),
    ("densest", "dblp"),
)

#: Each baseline's hot phase: the one its batch engine vectorizes, whose
#: wall-clock the engine gate's --min-baseline-speedup floor is over.
BASELINE_HOT_PHASE: dict[str, str] = {
    "nd": "peel", "pnd": "peel", "pkt": "peel", "pkt-opt-cpu": "peel",
    "msp": "peel", "kcore": "peel", "densest": "scan",
}

#: The pinned hierarchy-construction suite: (graph, r, s).  The k-truss
#: hierarchy on the two smaller surrogates plus one higher-(r,s) point;
#: entries measure hierarchy construction only (the decomposition that
#: feeds it runs off the books on a throwaway tracker).
HIERARCHY_SUITE: tuple[tuple[str, int, int], ...] = (
    ("amazon", 2, 3), ("amazon", 3, 4), ("dblp", 2, 3),
)

#: The hierarchy engine's hot phase: the level-sweep kernel the batch
#: engine vectorizes, whose wall-clock the engine gate's
#: --min-hierarchy-speedup floor is over (``hier_list`` and
#: ``hier_emit`` are shared code between the engines).
HIERARCHY_HOT_PHASE = "hier_levels"

#: The pinned sharded suite: (graph, r, s, shards).  Covers two shard
#: counts (4 and 8) so the --min-comm-reduction floor --- how much the
#: mincut partitioner must cut simulated comm time versus the hash
#: baseline --- is enforced on both.
SHARDED_SUITE: tuple[tuple[str, int, int, int], ...] = (
    ("amazon", 2, 3, 4), ("amazon", 2, 3, 8),
    ("dblp", 1, 2, 4), ("dblp", 2, 3, 8),
)


def entry_key(entry: dict) -> str:
    return f"{entry['graph']}({entry['r']},{entry['s']})"


def baseline_entry_key(entry: dict) -> str:
    return f"{entry['baseline']}@{entry['graph']}"


def hierarchy_entry_key(entry: dict) -> str:
    return f"hier:{entry['graph']}({entry['r']},{entry['s']})"


def sharded_entry_key(entry: dict) -> str:
    return (f"shard:{entry['graph']}({entry['r']},{entry['s']})"
            f"x{entry['shards']}")


def run_entry(graph_name: str, r: int, s: int,
              machine: MachineModel | None = None,
              threads: int = BENCH_THREADS,
              engine: str = "scalar",
              listing_engine: str = "scalar") -> dict:
    """Run one pinned decomposition and extract its canonical metrics.

    ``engine`` selects the peeling implementation and ``listing_engine``
    the clique-listing one; by the batch engines' cost-parity invariant
    (docs/cost-model.md) every *simulated* metric in the payload is
    engine-independent --- only the ``wall_clock`` section (host seconds
    per phase, outside the machine model) and the ``engine`` /
    ``listing_engine`` tags may differ, and none is in
    :data:`COMPARED_METRICS`.
    """
    machine = machine or MachineModel()
    graph = load_dataset(graph_name)
    tracker = CostTracker()
    tracker.cache = CacheSimulator()  # exact: sample=1
    config = replace(NucleusConfig.optimal(r, s), engine=engine,
                     listing_engine=listing_engine)
    result = arb_nucleus_decomp(graph, r, s, config, tracker)
    t1 = machine.time(tracker, 1)
    tp = machine.time(tracker, threads)
    breakdown = machine.time_breakdown(tracker, threads)
    return {
        "graph": graph_name, "r": r, "s": s,
        "engine": engine,
        "listing_engine": listing_engine,
        "wall_clock": {
            "total": sum(tracker.phase_wall.values()),
            **{name: seconds
               for name, seconds in sorted(tracker.phase_wall.items())},
        },
        "n_r": result.n_r_cliques, "n_s": result.n_s_cliques,
        "rho": result.rho, "max_core": result.max_core,
        "work": tracker.total.work,
        "span": tracker.span,
        "rounds": tracker.total.rounds,
        "atomic_ops": tracker.total.atomic_ops,
        "contention": tracker.total.contention,
        "table_probes": tracker.total.table_probes,
        "cache_accesses": tracker.cache.accesses,
        "cache_misses": tracker.cache.misses,
        "memory_units": result.table_memory_units,
        "T1": t1, "T60": tp, "speedup": t1 / tp,
        "phases": {
            name: {field: getattr(stats, field) for field in _PHASE_FIELDS}
            for name, stats in tracker.phases.items()
        },
        "breakdown": breakdown["total"],
    }


def run_suite(machine: MachineModel | None = None,
              threads: int = BENCH_THREADS,
              suite: tuple[tuple[str, int, int], ...] | None = None,
              label: str = "", progress=None,
              engine: str = "scalar",
              listing_engine: str = "scalar") -> dict:
    """Run the pinned suite; returns the canonical JSON payload (a dict)."""
    if suite is None:
        suite = PINNED_SUITE  # resolved at call time (tests shrink it)
    machine = machine or MachineModel()
    entries = []
    for graph_name, r, s in suite:
        if progress is not None:
            progress(f"bench: {graph_name} ({r},{s}) "
                     f"[{engine}/{listing_engine}]")
        entries.append(run_entry(graph_name, r, s, machine, threads,
                                 engine=engine,
                                 listing_engine=listing_engine))
    from dataclasses import asdict
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "threads": threads,
        "engine": engine,
        "listing_engine": listing_engine,
        "machine": asdict(machine),
        "suite": entries,
    }


def run_baseline_entry(name: str, graph_name: str,
                       machine: MachineModel | None = None,
                       threads: int = BENCH_THREADS,
                       engine: str = "scalar") -> dict:
    """Run one pinned baseline and extract its canonical metrics.

    Mirrors :func:`run_entry`: by the batch engines' cost-parity
    invariant, every *simulated* metric is engine-independent --- only
    ``wall_clock`` and the ``engine`` tag may differ.
    """
    machine = machine or MachineModel()
    graph = load_dataset(graph_name)
    tracker = CostTracker()
    tracker.cache = CacheSimulator()  # exact: sample=1
    if name == "nd":
        nd_decomposition(graph, 2, 3, tracker, engine=engine)
    elif name == "pnd":
        pnd_decomposition(graph, 2, 3, tracker, engine=engine)
    elif name == "pkt":
        pkt_decomposition(graph, tracker, engine=engine)
    elif name == "pkt-opt-cpu":
        pkt_opt_cpu_decomposition(graph, tracker, engine=engine)
    elif name == "msp":
        msp_decomposition(graph, tracker, engine=engine)
    elif name == "kcore":
        k_core(graph, tracker, engine=engine)
    elif name == "densest":
        k_clique_densest(graph, 3, tracker, engine=engine)
    else:
        raise ValueError(f"unknown baseline {name!r}")
    t1 = machine.time(tracker, 1)
    tp = machine.time(tracker, threads)
    return {
        "baseline": name, "graph": graph_name,
        "engine": engine,
        "hot_phase": BASELINE_HOT_PHASE[name],
        "wall_clock": {
            "total": sum(tracker.phase_wall.values()),
            **{phase: seconds
               for phase, seconds in sorted(tracker.phase_wall.items())},
        },
        "work": tracker.total.work,
        "span": tracker.span,
        "rho": tracker.total.rounds,
        "rounds": tracker.total.rounds,
        "atomic_ops": tracker.total.atomic_ops,
        "contention": tracker.total.contention,
        "cliques": tracker.total.cliques_enumerated,
        "cache_accesses": tracker.cache.accesses,
        "cache_misses": tracker.cache.misses,
        "T1": t1, "T60": tp, "speedup": t1 / tp,
        "phases": {
            phase: {field: getattr(stats, field)
                    for field in _PHASE_FIELDS}
            for phase, stats in tracker.phases.items()
        },
    }


def run_baseline_suite(machine: MachineModel | None = None,
                       threads: int = BENCH_THREADS,
                       suite: tuple[tuple[str, str], ...] | None = None,
                       progress=None,
                       engine: str = "scalar") -> list[dict]:
    """Run the pinned baseline suite; returns the entry list (stored
    under the main payload's ``"baselines"`` key by the trajectory
    tool)."""
    if suite is None:
        suite = BASELINE_SUITE  # resolved at call time (tests shrink it)
    machine = machine or MachineModel()
    entries = []
    for name, graph_name in suite:
        if progress is not None:
            progress(f"bench baseline: {name} @ {graph_name} [{engine}]")
        entries.append(run_baseline_entry(name, graph_name, machine,
                                          threads, engine=engine))
    return entries


def run_hierarchy_entry(graph_name: str, r: int, s: int,
                        machine: MachineModel | None = None,
                        threads: int = BENCH_THREADS,
                        engine: str = "scalar",
                        listing_engine: str = "scalar") -> dict:
    """Run one pinned hierarchy construction; canonical metrics.

    The decomposition feeding the hierarchy runs on a throwaway tracker
    so the entry's simulated metrics cover hierarchy construction only.
    Mirrors :func:`run_entry`: by the hierarchy engines' cost-parity
    invariant every simulated metric is engine-independent --- only
    ``wall_clock`` and the engine tags may differ.
    """
    machine = machine or MachineModel()
    graph = load_dataset(graph_name)
    config = replace(NucleusConfig.optimal(r, s), engine=engine,
                     listing_engine=listing_engine)
    result = arb_nucleus_decomp(graph, r, s, config, CostTracker())
    tracker = CostTracker()
    tracker.cache = CacheSimulator()  # exact: sample=1
    hierarchy = nucleus_hierarchy(graph, result, tracker, engine=engine,
                                  listing_engine=listing_engine)
    t1 = machine.time(tracker, 1)
    tp = machine.time(tracker, threads)
    return {
        "graph": graph_name, "r": r, "s": s,
        "engine": engine,
        "listing_engine": listing_engine,
        "hot_phase": HIERARCHY_HOT_PHASE,
        "wall_clock": {
            "total": sum(tracker.phase_wall.values()),
            **{name: seconds
               for name, seconds in sorted(tracker.phase_wall.items())},
        },
        "n_nuclei": len(hierarchy),
        "n_levels": len({nucleus.level for nucleus in hierarchy.nuclei}),
        "work": tracker.total.work,
        "span": tracker.span,
        "rho": tracker.total.rounds,
        "rounds": tracker.total.rounds,
        "atomic_ops": tracker.total.atomic_ops,
        "contention": tracker.total.contention,
        "cache_accesses": tracker.cache.accesses,
        "cache_misses": tracker.cache.misses,
        "T1": t1, "T60": tp, "speedup": t1 / tp,
        "phases": {
            name: {field: getattr(stats, field) for field in _PHASE_FIELDS}
            for name, stats in tracker.phases.items()
        },
    }


def run_hierarchy_suite(machine: MachineModel | None = None,
                        threads: int = BENCH_THREADS,
                        suite: tuple[tuple[str, int, int], ...] | None = None,
                        progress=None,
                        engine: str = "scalar",
                        listing_engine: str = "scalar") -> list[dict]:
    """Run the pinned hierarchy suite; returns the entry list (stored
    under the main payload's ``"hierarchy"`` key by the trajectory
    tool)."""
    if suite is None:
        suite = HIERARCHY_SUITE  # resolved at call time (tests shrink it)
    machine = machine or MachineModel()
    entries = []
    for graph_name, r, s in suite:
        if progress is not None:
            progress(f"bench hierarchy: {graph_name} ({r},{s}) "
                     f"[{engine}/{listing_engine}]")
        entries.append(run_hierarchy_entry(graph_name, r, s, machine,
                                           threads, engine=engine,
                                           listing_engine=listing_engine))
    return entries


def run_sharded_entry(graph_name: str, r: int, s: int, shards: int,
                      machine: MachineModel | None = None,
                      threads: int = BENCH_THREADS,
                      exchange_engine: str = "batch") -> dict:
    """Run one pinned sharded decomposition under both partitioners.

    The entry records, per partitioner, the simulated communication
    volume/time and partition quality, plus the headline comparison
    metrics: ``comm_time`` (mincut's --- lower is better),
    ``comm_reduction`` (hash comm time over mincut comm time --- the
    quantity the engine gate's ``--min-comm-reduction`` floor pins), and
    ``speedup`` (single-node simulated time over the mincut distributed
    time).  By the exchange kernels' cost-parity invariant every
    simulated metric is engine-independent --- only ``wall_clock`` and
    the ``exchange_engine`` tag may differ.
    """
    # Imported here: repro.distributed pulls in repro.observe.trace, so a
    # module-level import would be circular through the package __init__.
    from ..distributed import DistributedMachineModel, sharded_nucleus_decomp
    machine = machine or MachineModel()
    distributed = DistributedMachineModel(machine)
    graph = load_dataset(graph_name)
    single_tracker = CostTracker()
    reference = arb_nucleus_decomp(graph, r, s, tracker=single_tracker)
    single_time = machine.time(single_tracker, threads)
    reference_cores = reference.as_dict()
    per_partitioner = {}
    wall = 0.0
    mincut_result = None
    for name in ("hash", "mincut"):
        result = sharded_nucleus_decomp(graph, r, s, shards,
                                        partitioner=name,
                                        exchange_engine=exchange_engine)
        quality = partition_statistics(graph, result.partition.shard_of,
                                       shards, s=s)
        per_partitioner[name] = {
            "comm_messages": result.comm_messages,
            "comm_bytes": result.comm_bytes,
            "comm_time": distributed.comm_time(result.comm_messages,
                                               result.comm_bytes),
            "T60": distributed.time(result, threads),
            "edge_cut": quality["edge_cut"],
            "cut_fraction": quality["cut_fraction"],
            "imbalance": quality["imbalance"],
            "triangle_spill_fraction": quality["triangle_spill_fraction"],
            "s_clique_spill_estimate": quality["s_clique_spill_estimate"],
            "matches_oracle": result.as_dict() == reference_cores,
        }
        wall += sum(result.tracker.phase_wall.values()) + sum(
            sum(st.phase_wall.values()) for st in result.shard_trackers)
        if name == "mincut":
            mincut_result = result
    hash_stats = per_partitioner["hash"]
    mincut_stats = per_partitioner["mincut"]
    if mincut_stats["comm_time"] > 0:
        comm_reduction = hash_stats["comm_time"] / mincut_stats["comm_time"]
    else:
        comm_reduction = 1.0 if hash_stats["comm_time"] == 0 else \
            float("inf")
    return {
        "graph": graph_name, "r": r, "s": s, "shards": shards,
        "exchange_engine": exchange_engine,
        "wall_clock": {"total": wall},
        "n_r": mincut_result.n_r_cliques, "n_s": mincut_result.n_s_cliques,
        "rho": mincut_result.rho, "max_core": mincut_result.max_core,
        "comm_messages": mincut_stats["comm_messages"],
        "comm_bytes": mincut_stats["comm_bytes"],
        "comm_time": mincut_stats["comm_time"],
        "comm_reduction": comm_reduction,
        "T60_single": single_time,
        "T60": mincut_stats["T60"],
        "speedup": single_time / mincut_stats["T60"],
        "matches_oracle": (hash_stats["matches_oracle"]
                           and mincut_stats["matches_oracle"]),
        "hash": hash_stats,
        "mincut": mincut_stats,
    }


def run_sharded_suite(machine: MachineModel | None = None,
                      threads: int = BENCH_THREADS,
                      suite: tuple[tuple[str, int, int, int], ...]
                      | None = None,
                      progress=None,
                      exchange_engine: str = "batch") -> list[dict]:
    """Run the pinned sharded suite; returns the entry list (stored under
    the main payload's ``"sharded"`` key by the trajectory tool)."""
    if suite is None:
        suite = SHARDED_SUITE  # resolved at call time (tests shrink it)
    machine = machine or MachineModel()
    entries = []
    for graph_name, r, s, shards in suite:
        if progress is not None:
            progress(f"bench sharded: {graph_name} ({r},{s}) x{shards} "
                     f"[{exchange_engine}]")
        entries.append(run_sharded_entry(graph_name, r, s, shards, machine,
                                         threads,
                                         exchange_engine=exchange_engine))
    return entries


def write_payload(payload: dict, path) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_payload(path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def compare(current: dict, baseline: dict,
            tolerance: float = 0.05) -> list[str]:
    """Regressions of ``current`` against ``baseline`` beyond ``tolerance``.

    Returns human-readable descriptions (empty when clean).  A metric
    regresses when it worsens by more than ``tolerance`` relative to the
    baseline --- grows for lower-is-better metrics (work, span, rho, times,
    contention, cache misses), shrinks for speedup.  Entries present in
    the baseline but missing from the current run are regressions;
    entries new in the current run are not.  The optional ``"baselines"``
    section (the competitor suite) is compared the same way, but only
    when both payloads record it (the engine gate's listing payload,
    for example, carries no baseline section).
    """
    regressions = []
    sections = (("suite", entry_key), ("baselines", baseline_entry_key),
                ("hierarchy", hierarchy_entry_key),
                ("sharded", sharded_entry_key))
    for section, key_of in sections:
        if section not in current or section not in baseline:
            continue
        base_by_key = {key_of(e): e for e in baseline.get(section, [])}
        cur_by_key = {key_of(e): e for e in current.get(section, [])}
        for key, base in base_by_key.items():
            cur = cur_by_key.get(key)
            if cur is None:
                regressions.append(f"{key}: entry missing from current run")
                continue
            for metric, lower_is_better in COMPARED_METRICS.items():
                if metric not in base or metric not in cur:
                    continue
                old, new = float(base[metric]), float(cur[metric])
                scale = abs(old) if old else 1.0
                if lower_is_better:
                    worsened = new - old > tolerance * scale
                else:
                    worsened = old - new > tolerance * scale
                if worsened:
                    direction = "rose" if lower_is_better else "fell"
                    regressions.append(
                        f"{key}: {metric} {direction} "
                        f"{old:.6g} -> {new:.6g} "
                        f"({100.0 * (new - old) / scale:+.1f}%, "
                        f"tolerance {100.0 * tolerance:.1f}%)")
    return regressions
