"""Rendering helpers for :meth:`MachineModel.time_breakdown`.

The breakdown itself lives on
:class:`~repro.parallel.runtime.MachineModel` (it *is* the time model,
restated term by term); this module turns it into the human-facing views
the experiment drivers and the CLI print:

* :func:`breakdown_rows` -- flat list-of-dicts (one row per phase plus a
  total row), ready for :func:`repro.experiments.harness.format_table`;
* :func:`format_breakdown` -- the rendered ASCII table, with each term
  also expressed as a share of the total simulated time.

Term semantics (see docs/cost-model.md for the parameter mapping):

============  ==============================================================
``work``      ``W / effective(P)`` --- Brent's work term
``span``      ``span_factor * S`` --- the critical path
``barrier``   ``rounds * (barrier_base + barrier_per_log_thread * log2 P)``
``contention``  ``contention_factor * serialized_atomic_span``
``cache``     ``miss_penalty * misses / effective(P)``
``comm``      ``comm_latency * messages + comm_byte_time * bytes``
============  ==============================================================

``comm`` is exactly zero for single-node runs --- only the distributed
exchange (:mod:`repro.distributed`) charges it, see docs/sharding.md.
"""

from __future__ import annotations

TERMS = ("work", "span", "barrier", "contention", "cache", "comm")


def breakdown_rows(breakdown: dict) -> list[dict]:
    """Flatten a ``time_breakdown`` dict into table rows (total row last)."""
    total_time = breakdown["total"]["time"] or 1.0
    rows = []
    for name, terms in breakdown["phases"].items():
        row = {"phase": name, **{t: terms[t] for t in TERMS},
               "time": terms["time"],
               "share": terms["time"] / total_time}
        rows.append(row)
    rows.sort(key=lambda row: -row["time"])
    rows.append({"phase": "TOTAL",
                 **{t: breakdown["total"][t] for t in TERMS},
                 "time": breakdown["total"]["time"], "share": 1.0})
    return rows


def format_breakdown(breakdown: dict, title: str = "") -> str:
    """Render a ``time_breakdown`` dict as a paper-style ASCII table."""
    from ..experiments.harness import format_table
    rows = breakdown_rows(breakdown)
    for row in rows:
        row["share"] = f"{100.0 * row['share']:.1f}%"
    header = title or (f"simulated time breakdown at "
                       f"{breakdown['threads']} thread(s)")
    return format_table(rows, ["phase", *TERMS, "time", "share"], header)
