"""Drivers reproducing every table and figure of the paper's Section 6.

Each ``figNN`` function runs the corresponding experiment on the surrogate
datasets and returns a :class:`~repro.experiments.harness.FigureResult`
whose rows mirror the series the paper plots.  The benchmark suite under
``benchmarks/`` is a thin wrapper that executes these drivers and prints
their tables; EXPERIMENTS.md records paper-versus-measured values.

Default graph lists follow the paper's own inclusions/omissions (e.g.
friendster is omitted from the (3,4) table-optimization sweeps because the
paper's runs OOM there).
"""

from __future__ import annotations

from ..baselines import (and_decomposition, and_nn_decomposition,
                         msp_decomposition, nd_decomposition,
                         pkt_decomposition, pkt_opt_cpu_decomposition,
                         pnd_decomposition)
from ..core.config import NucleusConfig
from ..graph.datasets import load_dataset
from ..graph.generators import rmat_graph
from ..machine.cache import CacheSimulator
from .harness import (DEFAULT_MACHINE, PAPER_OMISSIONS, FigureResult,
                      format_table, run_arb, run_baseline)

#: The T-layout combinations swept in Figures 8-10 (Section 6.2).  The
#: non-T knobs stay at their unoptimized values during this sweep, exactly
#: as in the paper's tuning methodology.
T_COMBOS: list[tuple[str, dict]] = [
    ("one-level", dict(levels=1, table_style="hash", contiguous=False,
                       inverse_map="binary_search")),
    ("2-level/scatter/binsearch", dict(levels=2, table_style="array",
                                       contiguous=False,
                                       inverse_map="binary_search")),
    ("2-level/contig/binsearch", dict(levels=2, table_style="array",
                                      contiguous=True,
                                      inverse_map="binary_search")),
    ("2-level/contig/stored", dict(levels=2, table_style="array",
                                   contiguous=True,
                                   inverse_map="stored_pointers")),
    ("2-multi/contig/stored", dict(levels=2, table_style="hash",
                                   contiguous=True,
                                   inverse_map="stored_pointers")),
    ("3-multi/contig/stored", dict(levels=3, table_style="hash",
                                   contiguous=True,
                                   inverse_map="stored_pointers")),
]

_UNOPT_OTHER = dict(relabel=False, aggregation="array", contraction=False)

#: (r,s) pairs listed per graph in Figure 7 / Figure 13, scaled to what each
#: surrogate's size affords (the paper likewise times out / OOMs on the
#: larger graphs for larger r and s).
RS_BY_GRAPH = {
    "amazon": [(r, s) for s in range(2, 8) for r in range(1, s)],
    "dblp": [(r, s) for s in range(2, 8) for r in range(1, s)],
    "youtube": [(r, s) for s in range(2, 8) for r in range(1, s)],
    "skitter": [(r, s) for s in range(2, 6) for r in range(1, s)],
    "livejournal": [(r, s) for s in range(2, 6) for r in range(1, s)],
    "orkut": [(1, 2), (1, 3), (2, 3), (2, 4), (3, 4)],
    "friendster": [(1, 2), (2, 3)],
}


def fig07(graphs: list[str] | None = None) -> FigureResult:
    """Figure 7: graph sizes, peeling complexity, and max core numbers."""
    graphs = graphs or list(RS_BY_GRAPH)
    rows = []
    for name in graphs:
        graph = load_dataset(name)
        row = {"graph": name, "n": graph.n, "m": graph.m}
        for r, s in RS_BY_GRAPH[name]:
            run = run_arb(graph, r, s, NucleusConfig.optimal(r, s), name)
            row[f"rho({r},{s})"] = run.result.rho
            row[f"max({r},{s})"] = run.result.max_core
        rows.append(row)
    columns = ["graph", "n", "m"]
    for s in range(2, 8):
        for r in range(1, s):
            key = f"rho({r},{s})"
            if any(key in row for row in rows):
                columns += [key, f"max({r},{s})"]
    text = format_table(rows, columns,
                        "Graph sizes, rho(r,s), and max (r,s)-core numbers")
    return FigureResult("fig07", "graph statistics", rows, text)


def _t_combo_sweep(r: int, s: int, graphs: list[str],
                   cache_sample: int = 1) -> list[dict]:
    rows = []
    for name in graphs:
        graph = load_dataset(name)
        runs = {}
        for label, combo in T_COMBOS:
            if combo["levels"] > r:
                continue
            config = NucleusConfig(**combo, **_UNOPT_OTHER)
            runs[label] = run_arb(graph, r, s, config, name,
                                  cache=CacheSimulator(sample=cache_sample))
        base = runs["one-level"]
        for label, run in runs.items():
            rows.append({
                "graph": name, "combo": label,
                "speedup": base.time_parallel / run.time_parallel,
                "space_saving": (base.result.table_memory_units
                                 / max(1, run.result.table_memory_units)),
                "memory_units": run.result.table_memory_units,
                "T60": run.time_parallel,
                "miss_rate": (run.cache_misses / run.cache_accesses
                              if run.cache_accesses else 0.0),
            })
    return rows


def fig08(graphs: list[str] | None = None,
          cache_sample: int = 4) -> FigureResult:
    """Figure 8: T-optimization speedups and space savings for (3,4).

    friendster is omitted (the paper's runs OOM there); orkut is included
    because the paper highlights its 3-multi-level result.
    """
    graphs = graphs or ["amazon", "dblp", "youtube", "skitter",
                        "livejournal", "orkut"]
    rows = _t_combo_sweep(3, 4, graphs, cache_sample=cache_sample)
    text = format_table(
        rows, ["graph", "combo", "speedup", "space_saving", "memory_units",
               "miss_rate"],
        "(3,4) nucleus decomposition: T-layout speedup / space vs one-level")
    return FigureResult("fig08", "(3,4) T optimizations", rows, text)


def fig09_fig10(graphs: list[str] | None = None,
                cache_sample: int = 2) -> FigureResult:
    """Figures 9-10: T-optimization speedups and space savings for (4,5).

    livejournal, orkut, and friendster are omitted, as in the paper (their
    (4,5) runs exceed memory).
    """
    graphs = graphs or ["amazon", "dblp", "youtube", "skitter"]
    rows = _t_combo_sweep(4, 5, graphs, cache_sample=cache_sample)
    text = format_table(
        rows, ["graph", "combo", "speedup", "space_saving", "memory_units",
               "miss_rate"],
        "(4,5) nucleus decomposition: T-layout speedup / space vs one-level")
    return FigureResult("fig09_10", "(4,5) T optimizations", rows, text)


def fig11(rs_list: list[tuple[int, int]] | None = None,
          graphs: list[str] | None = None) -> FigureResult:
    """Figure 11: relabeling / update-aggregation / contraction speedups.

    All variants are measured against the two-level contiguous
    stored-pointer setting with simple-array aggregation, as in the paper.
    A "combined" row compares the paper's optimal configuration against the
    fully unoptimized one (the up-to-5.10x statistic of Section 6.2).
    """
    rs_list = rs_list or [(2, 3), (2, 4), (3, 4)]
    graphs = graphs or ["amazon", "dblp", "youtube", "skitter"]
    base_kwargs = dict(levels=2, table_style="array", contiguous=True,
                       inverse_map="stored_pointers")
    variants = [
        ("relabel", dict(relabel=True, aggregation="array")),
        ("U=list-buffer", dict(relabel=False, aggregation="list_buffer")),
        ("U=hash", dict(relabel=False, aggregation="hash")),
    ]
    rows = []
    for r, s in rs_list:
        for name in graphs:
            graph = load_dataset(name)
            base = run_arb(graph, r, s,
                           NucleusConfig(**base_kwargs, relabel=False,
                                         aggregation="array"), name)
            for label, extra in variants:
                run = run_arb(graph, r, s,
                              NucleusConfig(**base_kwargs, **extra), name)
                rows.append({"rs": f"({r},{s})", "graph": name,
                             "variant": label,
                             "speedup": base.time_parallel / run.time_parallel})
            if (r, s) == (2, 3):
                run = run_arb(graph, r, s,
                              NucleusConfig(**base_kwargs, relabel=False,
                                            aggregation="array",
                                            contraction=True), name)
                rows.append({"rs": "(2,3)", "graph": name,
                             "variant": "contraction",
                             "speedup": base.time_parallel / run.time_parallel})
            # Combined: the paper's optimal config vs fully unoptimized.
            unopt = run_arb(graph, r, s, NucleusConfig.unoptimized(), name)
            best = run_arb(graph, r, s, NucleusConfig.optimal(r, s), name)
            rows.append({"rs": f"({r},{s})", "graph": name,
                         "variant": "combined(best/unopt)",
                         "speedup": unopt.time_parallel / best.time_parallel})
    text = format_table(rows, ["rs", "graph", "variant", "speedup"],
                        "Relabeling / aggregation / contraction speedups "
                        "over two-level + simple array")
    return FigureResult("fig11", "other optimizations", rows, text)


def fig12(graphs: list[str] | None = None,
          rs_list: list[tuple[int, int]] | None = None) -> FigureResult:
    """Figure 12: slowdowns of every competitor versus parallel ARB.

    Also reports the Section 6.3 counters: the ratio of s-clique
    discoveries (AND, AND-NN vs ARB) and of peeling rounds (PND vs ARB).
    """
    graphs = graphs or ["amazon", "dblp", "youtube", "skitter",
                        "livejournal", "orkut", "friendster"]
    rs_list = rs_list or [(2, 3), (3, 4)]
    rows = []
    for r, s in rs_list:
        for name in graphs:
            if ("fig12", "ARB", name, (r, s)) in PAPER_OMISSIONS:
                rows.append({"rs": f"({r},{s})", "graph": name,
                             "algorithm": "ARB",
                             "note": PAPER_OMISSIONS["fig12", "ARB", name,
                                                     (r, s)]})
                continue
            graph = load_dataset(name)
            arb = run_arb(graph, r, s, NucleusConfig.optimal(r, s), name)
            arb_visits = arb.result.tracker.total.cliques_enumerated
            rows.append({"rs": f"({r},{s})", "graph": name,
                         "algorithm": "ARB", "slowdown": 1.0,
                         "T60": arb.time_parallel,
                         "self_speedup": arb.self_relative_speedup,
                         "rounds": arb.result.rho, "visits": arb_visits})
            rows.append({"rs": f"({r},{s})", "graph": name,
                         "algorithm": "ARB (1 thread)",
                         "slowdown": arb.time_serial / arb.time_parallel})

            def consider(label, fn, *args, serial=False):
                key = ("fig12", label, name, (r, s))
                if key in PAPER_OMISSIONS:
                    rows.append({"rs": f"({r},{s})", "graph": name,
                                 "algorithm": label,
                                 "note": PAPER_OMISSIONS[key]})
                    return
                result, time = run_baseline(fn, graph, *args, serial=serial)
                rows.append({
                    "rs": f"({r},{s})", "graph": name, "algorithm": label,
                    "slowdown": time / arb.time_parallel,
                    "rounds": result.rounds,
                    "round_ratio": result.rounds / max(1, arb.result.rho),
                    "visits": result.s_clique_visits,
                    "visit_ratio": (result.s_clique_visits
                                    / max(1, arb_visits)),
                    "memory_words": result.memory_words})

            consider("ND", nd_decomposition, r, s, serial=True)
            consider("PND", pnd_decomposition, r, s)
            consider("AND", and_decomposition, r, s)
            consider("AND-NN", and_nn_decomposition, r, s)
            if (r, s) == (2, 3):
                consider("PKT", pkt_decomposition)
                consider("PKT-OPT-CPU", pkt_opt_cpu_decomposition)
                consider("MSP", msp_decomposition)
    text = format_table(
        rows, ["rs", "graph", "algorithm", "slowdown", "T60", "self_speedup",
               "rounds", "round_ratio", "visits", "visit_ratio", "note"],
        "Slowdowns over parallel ARB-NUCLEUS-DECOMP (Figure 12)")
    return FigureResult("fig12", "baseline comparison", rows, text)


def fig13(graphs: list[str] | None = None) -> FigureResult:
    """Figure 13: per-(r,s) slowdowns over each graph's fastest (r,s)."""
    graphs = graphs or ["amazon", "dblp", "youtube", "skitter"]
    rows = []
    for name in graphs:
        graph = load_dataset(name)
        times = {}
        for r, s in RS_BY_GRAPH[name]:
            run = run_arb(graph, r, s, NucleusConfig.optimal(r, s), name)
            times[(r, s)] = run.time_parallel
        fastest = min(times.values())
        for (r, s), time in sorted(times.items()):
            if (r, s) in ((2, 3), (3, 4)):
                continue  # shown in Figure 12, as in the paper
            rows.append({"graph": name, "rs": f"({r},{s})",
                         "slowdown_vs_fastest": time / fastest,
                         "T60": time})
    text = format_table(rows, ["graph", "rs", "slowdown_vs_fastest", "T60"],
                        "Slowdown of each (r,s) over the per-graph fastest")
    return FigureResult("fig13", "(r,s) sweep", rows, text)


def fig14(graphs: list[str] | None = None,
          rs_list: list[tuple[int, int]] | None = None,
          thread_counts: list[int] | None = None) -> FigureResult:
    """Figure 14: scalability over thread counts (simulated Brent times)."""
    graphs = graphs or ["dblp", "skitter", "livejournal"]
    rs_list = rs_list or [(2, 3), (2, 4), (3, 4)]
    thread_counts = thread_counts or [1, 2, 4, 8, 16, 30, 60]
    rows = []
    for name in graphs:
        graph = load_dataset(name)
        for r, s in rs_list:
            run = run_arb(graph, r, s, NucleusConfig.optimal(r, s), name)
            tracker = run.result.tracker
            row = {"graph": name, "rs": f"({r},{s})"}
            t1 = DEFAULT_MACHINE.time(tracker, 1)
            for p in thread_counts:
                row[f"T{p}"] = DEFAULT_MACHINE.time(tracker, p)
                row[f"S{p}"] = t1 / row[f"T{p}"]
            rows.append(row)
    columns = ["graph", "rs"] + [f"S{p}" for p in thread_counts]
    text = format_table(rows, columns,
                        "Self-relative speedup at each thread count")
    return FigureResult("fig14", "scalability", rows, text)


def fig15(scales: list[int] | None = None,
          edge_factors: list[int] | None = None,
          rs_list: list[tuple[int, int]] | None = None) -> FigureResult:
    """Figure 15: runtimes on rMAT graphs of varying size and density."""
    scales = scales or [8, 9, 10, 11]
    edge_factors = edge_factors or [4, 8, 16]
    rs_list = rs_list or [(2, 3), (3, 4), (4, 5)]
    rows = []
    for scale in scales:
        for ef in edge_factors:
            graph = rmat_graph(scale, ef, seed=scale * 100 + ef)
            row = {"scale": scale, "edge_factor": ef, "n": graph.n,
                   "m": graph.m}
            for r, s in rs_list:
                run = run_arb(graph, r, s, NucleusConfig.optimal(r, s),
                              f"rmat{scale}x{ef}")
                row[f"T({r},{s})"] = run.time_parallel
                row[f"n_s({r},{s})"] = run.result.n_s_cliques
            rows.append(row)
    columns = ["scale", "edge_factor", "n", "m"] + \
        [f"T({r},{s})" for r, s in rs_list] + \
        [f"n_s({r},{s})" for r, s in rs_list]
    text = format_table(rows, columns,
                        "Parallel runtimes on rMAT graphs (varying density)")
    return FigureResult("fig15", "rMAT scaling", rows, text)
