"""Experiment harness reproducing every table and figure of Section 6.

* :mod:`repro.experiments.figures` -- one driver per paper figure;
* :mod:`repro.experiments.harness` -- runners, formatting, the machine
  model defaults, and the paper-omission registry;
* :mod:`repro.experiments.report` -- Markdown rendering for
  EXPERIMENTS.md-style reports.
"""

from .harness import (DEFAULT_MACHINE, PAPER_OMISSIONS, PARALLEL_THREADS,
                      ArbRun, FigureResult, format_table, geometric_mean,
                      headline_statistics, run_arb, run_baseline)
from .sweeps import best_per_group, config_grid, sweep

__all__ = [
    "DEFAULT_MACHINE", "PAPER_OMISSIONS", "PARALLEL_THREADS",
    "ArbRun", "FigureResult", "format_table", "geometric_mean",
    "run_arb", "run_baseline", "headline_statistics",
    "sweep", "config_grid", "best_per_group",
]
