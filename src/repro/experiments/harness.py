"""Shared experiment-running machinery for the Section 6 reproduction.

The drivers in :mod:`repro.experiments.figures` call :func:`run_arb` /
:func:`run_baseline` to execute algorithms under cost tracking, and use the
formatting helpers here to print paper-style tables.

A note on "OOM" and "timeout" rows: the paper omits bars where a competitor
ran out of memory or exceeded 6 hours on *million/billion-edge* inputs.
Whether a given algorithm OOMs depends on constant factors of the authors'
machines that a scaled-down surrogate cannot reveal, so the figure drivers
mark those rows from the paper's reported outcomes (kept in
:data:`PAPER_OMISSIONS`) while still printing our measured statistics for
context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import NucleusConfig
from ..core.decomp import NucleusResult, arb_nucleus_decomp
from ..graph.csr import CSRGraph
from ..machine.cache import CacheSimulator
from ..parallel.runtime import CostTracker, MachineModel

#: Default simulated machine: the paper's 30-core / 60-hyper-thread box.
DEFAULT_MACHINE = MachineModel(cores=30)
PARALLEL_THREADS = 60

#: (figure, algorithm, graph, (r, s)) -> reason, straight from the paper's
#: figure captions and Section 6.3 text.
PAPER_OMISSIONS: dict[tuple, str] = {
    ("fig12", "PND", "friendster", (2, 3)): "OOM (paper)",
    ("fig12", "PND", "friendster", (3, 4)): "OOM (paper)",
    ("fig12", "AND", "orkut", (2, 3)): "OOM (paper)",
    ("fig12", "AND", "friendster", (2, 3)): "OOM (paper)",
    ("fig12", "AND", "orkut", (3, 4)): "OOM (paper)",
    ("fig12", "AND", "friendster", (3, 4)): "OOM (paper)",
    ("fig12", "AND-NN", "skitter", (2, 3)): "OOM (paper)",
    ("fig12", "AND-NN", "livejournal", (2, 3)): "OOM (paper)",
    ("fig12", "AND-NN", "orkut", (2, 3)): "OOM (paper)",
    ("fig12", "AND-NN", "friendster", (2, 3)): "OOM (paper)",
    ("fig12", "AND-NN", "skitter", (3, 4)): "OOM (paper)",
    ("fig12", "AND-NN", "livejournal", (3, 4)): "OOM (paper)",
    ("fig12", "AND-NN", "orkut", (3, 4)): "OOM (paper)",
    ("fig12", "AND-NN", "friendster", (3, 4)): "OOM (paper)",
    ("fig12", "ARB", "friendster", (3, 4)): "OOM (paper)",
}


@dataclass
class ArbRun:
    """One tracked ARB-NUCLEUS-DECOMP execution plus simulated timings."""

    graph_name: str
    r: int
    s: int
    config: NucleusConfig
    result: NucleusResult
    machine: MachineModel
    time_serial: float
    time_parallel: float
    cache_misses: int = 0
    cache_accesses: int = 0

    @property
    def self_relative_speedup(self) -> float:
        return self.time_serial / self.time_parallel

    def row(self) -> dict:
        summary = self.result.tracker.summary()
        return {
            "graph": self.graph_name, "r": self.r, "s": self.s,
            "n_r": self.result.n_r_cliques, "n_s": self.result.n_s_cliques,
            "rho": self.result.rho, "max_core": self.result.max_core,
            "T1": self.time_serial, "T60": self.time_parallel,
            "speedup": self.self_relative_speedup,
            "work": summary["work"], "span": summary["span"],
            "memory_units": self.result.table_memory_units,
            "cache_misses": self.cache_misses,
        }


def run_arb(graph: CSRGraph, r: int, s: int,
            config: NucleusConfig | None = None, graph_name: str = "?",
            machine: MachineModel = DEFAULT_MACHINE,
            threads: int = PARALLEL_THREADS,
            with_cache: bool = False,
            cache: CacheSimulator | None = None) -> ArbRun:
    """Run ARB-NUCLEUS-DECOMP and evaluate the machine model's timings."""
    tracker = CostTracker()
    if with_cache or cache is not None:
        tracker.cache = cache or CacheSimulator()
    result = arb_nucleus_decomp(graph, r, s, config, tracker)
    return ArbRun(
        graph_name=graph_name, r=r, s=s, config=result.config, result=result,
        machine=machine,
        time_serial=machine.time(tracker, 1),
        time_parallel=machine.time(tracker, threads),
        cache_misses=tracker.cache.misses if tracker.cache else 0,
        cache_accesses=tracker.cache.accesses if tracker.cache else 0)


def run_baseline(fn, graph: CSRGraph, *args,
                 machine: MachineModel = DEFAULT_MACHINE,
                 threads: int = PARALLEL_THREADS, serial: bool = False):
    """Run one baseline; returns (BaselineResult, simulated_time)."""
    result = fn(graph, *args)
    time = machine.time(result.tracker, 1 if serial else threads)
    return result, time


# -- formatting ----------------------------------------------------------------


def format_table(rows: list[dict], columns: list[str],
                 title: str = "", floatfmt: str = "{:.3g}") -> str:
    """Render rows as a fixed-width ASCII table (paper-style)."""
    if not rows:
        return f"{title}\n(no rows)\n"
    cells = [[_fmt(row.get(col, ""), floatfmt) for col in columns]
             for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(columns)]
    parts = []
    if title:
        parts.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    parts.append(header)
    parts.append("-" * len(header))
    for line in cells:
        parts.append("  ".join(val.ljust(w) for val, w in zip(line, widths)))
    return "\n".join(parts) + "\n"


def _fmt(value, floatfmt: str) -> str:
    if isinstance(value, float):
        return floatfmt.format(value)
    return str(value)


def geometric_mean(values) -> float:
    """Geometric mean of the positive entries (NaN when there are none)."""
    arr = np.asarray([v for v in values if v and v > 0], dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.exp(np.log(arr).mean()))


@dataclass
class FigureResult:
    """Output of one figure driver: rows plus the rendered table text."""

    figure: str
    title: str
    rows: list[dict] = field(default_factory=list)
    text: str = ""

    def show(self) -> str:
        return f"== {self.figure}: {self.title} ==\n{self.text}"

    def to_json(self, path=None) -> str:
        """Serialize the rows (for plotting pipelines); optionally write."""
        import json
        payload = json.dumps({"figure": self.figure, "title": self.title,
                              "rows": self.rows}, default=float, indent=1)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(payload)
        return payload


def headline_statistics(fig12_rows: list[dict]) -> dict[str, tuple]:
    """The paper-abstract numbers, computed from Figure 12's rows.

    Returns, per competitor, the (min, max) slowdown over parallel ARB,
    plus ARB's own self-relative speedup range --- the quantities the
    paper's abstract reports as "up to 55x speedup over the
    state-of-the-art" and "3.31-40.14x self-relative speedup".
    """
    by_algo: dict[str, list[float]] = {}
    speedups: list[float] = []
    for row in fig12_rows:
        # "ARB (1 thread)" is ARB's own serial run, not a competitor: its
        # slowdown is the self-relative speedup already reported below, so
        # it must be excluded from the competitor map exactly as it is from
        # the best-competitor range.
        if "slowdown" in row and row["algorithm"] not in (
                "ARB", "ARB (1 thread)"):
            by_algo.setdefault(row["algorithm"], []).append(row["slowdown"])
        if row.get("algorithm") == "ARB" and "self_speedup" in row:
            speedups.append(row["self_speedup"])
    out = {algo: (min(vals), max(vals)) for algo, vals in by_algo.items()}
    if speedups:
        out["ARB self-relative"] = (min(speedups), max(speedups))
    # Best-competitor range: per (graph, rs), the fastest non-ARB entrant.
    best: dict[tuple, float] = {}
    for row in fig12_rows:
        if "slowdown" in row and row["algorithm"] not in (
                "ARB", "ARB (1 thread)"):
            key = (row.get("graph"), row.get("rs"))
            best[key] = min(best.get(key, float("inf")), row["slowdown"])
    if best:
        values = list(best.values())
        out["best competitor"] = (min(values), max(values))
    return out
