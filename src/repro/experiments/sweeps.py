"""Generic parameter sweeps over configurations, graphs, and (r,s) pairs.

The figure drivers each hand-roll a loop; this module provides the general
tool for users running their own studies: a cartesian sweep over any
subset of {graphs, (r,s) pairs, config variations}, with results collected
as flat rows ready for :func:`repro.experiments.harness.format_table` or a
DataFrame.

Example::

    from repro.experiments.sweeps import sweep, config_grid

    rows = sweep(
        graphs={"dblp": load_dataset("dblp")},
        rs_pairs=[(2, 3), (3, 4)],
        configs=config_grid(aggregation=["array", "hash"],
                            relabel=[False, True]),
    )
"""

from __future__ import annotations

from dataclasses import replace
from itertools import product

from ..core.config import NucleusConfig
from ..graph.csr import CSRGraph
from .harness import DEFAULT_MACHINE, PARALLEL_THREADS, run_arb


def config_grid(base: NucleusConfig | None = None,
                **axes) -> list[tuple[str, NucleusConfig]]:
    """All combinations of the given config-field values.

    Each keyword names a :class:`NucleusConfig` field and supplies the
    values to sweep; returns ``(label, config)`` pairs where the label
    encodes the combination (e.g. ``"aggregation=hash,relabel=True"``).
    """
    base = base or NucleusConfig()
    for field in axes:
        if not hasattr(base, field):
            raise ValueError(f"NucleusConfig has no field {field!r}")
    names = list(axes)
    combos = []
    for values in product(*(axes[name] for name in names)):
        label = ",".join(f"{name}={value}"
                         for name, value in zip(names, values))
        combos.append((label, replace(base, **dict(zip(names, values)))))
    return combos


def sweep(graphs: dict[str, CSRGraph],
          rs_pairs: list[tuple[int, int]],
          configs: list[tuple[str, NucleusConfig]] | None = None,
          machine=DEFAULT_MACHINE,
          threads: int = PARALLEL_THREADS) -> list[dict]:
    """Run every (graph, (r,s), config) combination; one row per run.

    Rows carry the run's identity (graph / rs / config label) plus the
    standard measurement columns from
    :meth:`repro.experiments.harness.ArbRun.row`.
    """
    configs = configs or [("default", None)]
    rows = []
    for graph_name, graph in graphs.items():
        for r, s in rs_pairs:
            for label, config in configs:
                run = run_arb(graph, r, s, config, graph_name,
                              machine=machine, threads=threads)
                row = run.row()
                row["config"] = label
                rows.append(row)
    return rows


def best_per_group(rows: list[dict], group_by: tuple[str, ...] = ("graph", "r", "s"),
                   metric: str = "T60") -> list[dict]:
    """The minimum-``metric`` row of each group (e.g. fastest config)."""
    best: dict[tuple, dict] = {}
    for row in rows:
        key = tuple(row.get(field) for field in group_by)
        if key not in best or row[metric] < best[key][metric]:
            best[key] = row
    return list(best.values())
