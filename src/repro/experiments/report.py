"""Rendering figure results into Markdown reports.

Used to (re)generate the tables embedded in EXPERIMENTS.md: each
:class:`~repro.experiments.harness.FigureResult` becomes a Markdown
section with a pipe table, and :func:`render_report` stitches sections
together with front matter.
"""

from __future__ import annotations

from .harness import FigureResult


def markdown_table(rows: list[dict], columns: list[str],
                   floatfmt: str = "{:.3g}") -> str:
    """Render rows as a GitHub-flavored Markdown table."""
    if not rows:
        return "*(no rows)*\n"

    def fmt(value) -> str:
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value) if value is not None else ""

    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(col, "")) for col in
                                       columns) + " |")
    return "\n".join(lines) + "\n"


def figure_section(result: FigureResult, columns: list[str],
                   commentary: str = "") -> str:
    """One Markdown section for a figure's measured rows."""
    parts = [f"### {result.figure}: {result.title}\n"]
    if commentary:
        parts.append(commentary.strip() + "\n")
    parts.append(markdown_table(result.rows, columns))
    return "\n".join(parts)


def render_report(title: str, preamble: str,
                  sections: list[str]) -> str:
    """Assemble a full Markdown report."""
    body = "\n".join(sections)
    return f"# {title}\n\n{preamble.strip()}\n\n{body}"
