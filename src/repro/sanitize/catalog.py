"""The rule catalog: one entry per parlint/chargeflow rule.

This is the single source of truth for rule metadata.  ``repro lint
--explain PARxxx`` prints an entry, the SARIF reporter embeds each
entry's short/full description and ``helpUri``, and the per-rule
sections of ``docs/static-analysis.md`` carry headings whose GitHub
anchors match :attr:`RuleInfo.anchor` --- keep the three in sync by
editing only this file and the doc section it points at.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Where the per-rule documentation lives (anchors point into it).
DOC_PATH = "docs/static-analysis.md"

#: Base URL for SARIF ``helpUri`` links (code-scanning UIs want absolute
#: URIs; the anchor fragment matches the doc heading).
DOC_URL = ("https://github.com/paper-repro/nucleus-decomposition/"
           "blob/main/docs/static-analysis.md")


@dataclass(frozen=True)
class RuleInfo:
    """Metadata for one rule id."""

    id: str
    title: str          # one line; the SARIF shortDescription
    anchor: str         # heading anchor inside docs/static-analysis.md
    explain: str        # multi-paragraph text for ``lint --explain``

    @property
    def help_uri(self) -> str:
        return f"{DOC_URL}#{self.anchor}"

    def render(self) -> str:
        lines = [f"{self.id}: {self.title}",
                 "=" * (len(self.id) + 2 + len(self.title)), ""]
        lines.append(self.explain.strip())
        lines += ["", f"docs: {DOC_PATH}#{self.anchor}"]
        return "\n".join(lines)


CATALOG: dict[str, RuleInfo] = {rule.id: rule for rule in [
    RuleInfo(
        "PAR001", "parallel region never charges work/span",
        "par001-uncharged-parallel-region",
        """
A ``with tracker.parallel(...)`` region whose body never charges work or
span on any path.  The simulated machine would believe the region is
free, corrupting every reported T(1)/T(p) figure.  Charge inside the
task bodies (or via a helper the charge-flow analyzer can see), or
charge the region's aggregate cost beside it.
        """),
    RuleInfo(
        "PAR002", "graph-scale loop without a tracker charge",
        "par002-uncharged-graph-scale-loop",
        """
A Python-level ``for`` loop bounded by graph-scale data (``graph.n``,
``table.total_cells``, ``len(...)``) in cost-accounted code, with no
tracker charge in the body and no aggregate charge beside the loop.
Interpreted loops over the graph are exactly the work the cost model
exists to measure.
        """),
    RuleInfo(
        "PAR003", "unmediated shared-array write inside a task",
        "par003-lexical-task-write",
        """
A direct subscript mutation of a shared array lexically inside a
``with region.task():`` block.  Shared writes from tasks must go through
AtomicArray, a ShadowArray with ``atomic=True``, or the parallel
primitives; arrays created inside the task are private and exempt.
PAR009 is the interprocedural generalization of this rule.
        """),
    RuleInfo(
        "PAR004", "ContentionMeter constructed but never settled",
        "par004-unsettled-contentionmeter",
        """
A ContentionMeter that is constructed but never ``settle()``-d in (and
never escapes) its scope.  Its recorded atomic collisions would never
reach the tracker, silently under-reporting contention span.
        """),
    RuleInfo(
        "PAR005", "uncharged vectorized bulk operation in engine code",
        "par005-uncharged-bulk-op",
        """
An engine-module kernel that participates in cost accounting runs a
vectorized NumPy bulk operation (O(n) work in one call) but its
transitive charge set is empty: the simulated machine sees the work as
free.  Batch engines must charge the closed-form equivalent of the
scalar loop they replace.
        """),
    RuleInfo(
        "PAR006", "nondeterminism hazard in cost-accounted code",
        "par006-nondeterminism-hazard",
        """
Iteration over a set, ``id()``-keyed structures, unseeded RNG, or
``argsort`` without ``kind='stable'`` inside cost-accounted code.  These
silently break the bit-for-bit batch/scalar parity contract that the
benchmark gate and PAR007 enforce.
        """),
    RuleInfo(
        "PAR007", "batch/scalar parity registry violation",
        "par007-parity-registry",
        """
Every cost-accounted kernel in an engine module must have a
``PARLINT_PARITY`` entry naming its scalar oracle, the committed charge
fingerprint must match the code, and kernel and oracle must move the
same set of tracker counters.  Regenerate templates with
``repro lint --strict --emit-registry``.
        """),
    RuleInfo(
        "PAR008", "charge outside any phase/parallel attribution scope",
        "par008-unattributed-charge",
        """
A tracker charge issued outside any ``tracker.phase(...)`` /
``tracker.parallel(...)`` scope, in a function that opens phases.  Such
charges land in no phase and corrupt ``MachineModel.time_breakdown``.
        """),
    RuleInfo(
        "PAR009", "potential static race in a parallel region",
        "par009-potential-static-race",
        """
The static parallel-effect analyzer (repro.sanitize.effects) found two
concurrent accesses to the same shared object from the tasks of one
``tracker.parallel(...)`` region --- at least one a write --- with no
atomic/ownership proof.  A write is proven safe when (a) the storage is
atomic (AtomicArray, or a ShadowArray created with ``atomic=True``), (b)
the access goes through a race-detector-instrumented method (the
dynamic layer owns those addresses), or (c) the subscript index is a
pure function of the task-loop variables, making per-task writes
disjoint.  Anything else is a potential race: mediate it, privatize it,
or route it through a per-task buffer.  Note the disjointness proof is
name-based: a non-injective function of the task variable (``t % 2``)
is accepted statically and left to the dynamic detector.
        """),
    RuleInfo(
        "PAR010", "non-commutative atomic accumulation",
        "par010-noncommutative-accumulation",
        """
An atomic accumulation (fetch-and-add / ``np.add.at`` scatter guarded by
``add_atomic`` charges) inside a parallel region whose operand is
order-dependent: it contains a division or a non-integral float.
Floating-point addition is not associative, so the accumulated total
depends on task interleaving and the reported numbers lose determinism
even though the update is race-free.  Use integral deltas, a
deterministic reduction tree, or re-round at the consumer and waive the
finding with a justification comment.
        """),
    RuleInfo(
        "PAR011", "parallel region not covered by a race test",
        "par011-race-coverage-gap",
        """
A ``tracker.parallel(...)`` region with shared writes that no
ShadowArray-instrumented race test exercises.  Coverage is declared by
``RACECHECK_COVERS`` stamps (module-level lists of function qualnames)
in ``tests/test_*.py``; a region counts as covered when its enclosing
function is reachable from a stamped entry point --- without traversing
from non-engine into engine modules, since engine kernels fall back to
the scalar oracle whenever a race detector is attached and must
therefore be stamped directly by a test that drives them.  Stamps that
name unknown functions are reported at the test file.
        """),
]}


def get_rule(rule_id: str) -> RuleInfo | None:
    return CATALOG.get(rule_id.upper())


def explain(rule_id: str) -> str | None:
    """The ``lint --explain`` text for a rule id (None when unknown)."""
    info = get_rule(rule_id)
    return info.render() if info else None
