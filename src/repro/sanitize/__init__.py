"""Static and dynamic analysis for the simulated parallel machine.

Two layers guard the accounting discipline everything in EXPERIMENTS.md
depends on:

* :mod:`repro.sanitize.parlint` -- an AST lint pass over the source tree
  with project-specific rules (PAR001--PAR004): parallel regions must
  charge work/span, graph-scale loops must be cost-accounted, shared writes
  inside tasks must be mediated, contention meters must be settled.
* :mod:`repro.sanitize.racecheck` -- a dynamic race detector (the
  ThreadSanitizer analog for the work-span simulator): instrumented
  structures shadow-log accesses per simulated task, and unmediated
  write-write / read-write pairs across tasks are flagged.

CLI entry points: ``repro lint`` and ``repro sanitize``.
"""

from .racecheck import (Race, RaceDetector, RaceError, RaceStats,
                        ShadowArray, maybe_shadow)

__all__ = [
    "RaceDetector", "RaceError", "Race", "RaceStats",
    "ShadowArray", "maybe_shadow",
    "Finding", "lint_file", "lint_paths",
]

_PARLINT_EXPORTS = {"Finding", "lint_file", "lint_paths"}


def __getattr__(name):
    # Lazy so ``python -m repro.sanitize.parlint`` doesn't import the
    # module twice (runpy would warn about the stale sys.modules entry).
    if name in _PARLINT_EXPORTS:
        from . import parlint
        return getattr(parlint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
