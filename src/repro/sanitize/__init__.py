"""Static and dynamic analysis for the simulated parallel machine.

Three layers guard the accounting discipline everything in EXPERIMENTS.md
depends on:

* :mod:`repro.sanitize.parlint` -- a lexical AST lint pass over the
  source tree with project-specific rules (PAR001--PAR004): parallel
  regions must charge work/span, graph-scale loops must be
  cost-accounted, shared writes inside tasks must be mediated,
  contention meters must be settled.
* :mod:`repro.sanitize.chargeflow` -- the interprocedural charge-flow
  analyzer (``repro lint --strict``): a project-wide call graph
  (:mod:`~repro.sanitize.callgraph`) and per-function charge summaries
  (:mod:`~repro.sanitize.summaries`) let PAR001/PAR002 accept
  charging-via-helper without suppressions, and power the rules
  PAR005--PAR008 (:mod:`~repro.sanitize.rules`) including the
  batch/scalar parity registry (:mod:`~repro.sanitize.registry`).
  SARIF/JSON reporters and the suppression baseline live in
  :mod:`~repro.sanitize.reporters`.
* :mod:`repro.sanitize.racecheck` -- a dynamic race detector (the
  ThreadSanitizer analog for the work-span simulator): instrumented
  structures shadow-log accesses per simulated task, and unmediated
  write-write / read-write pairs across tasks are flagged.

CLI entry points: ``repro lint`` (``--strict`` for the analyzer) and
``repro sanitize``.
"""

from .racecheck import (Race, RaceDetector, RaceError, RaceStats,
                        ShadowArray, maybe_shadow)

__all__ = [
    "RaceDetector", "RaceError", "Race", "RaceStats",
    "ShadowArray", "maybe_shadow",
    "Finding", "lint_file", "lint_paths",
    "analyze", "build_project", "compute_summaries",
]

_PARLINT_EXPORTS = {"Finding", "lint_file", "lint_paths"}
_LAZY_EXPORTS = {
    "analyze": "chargeflow",
    "build_project": "callgraph",
    "compute_summaries": "summaries",
}


def __getattr__(name):
    # Lazy so ``python -m repro.sanitize.parlint`` doesn't import the
    # module twice (runpy would warn about the stale sys.modules entry).
    if name in _PARLINT_EXPORTS:
        from . import parlint
        return getattr(parlint, name)
    if name in _LAZY_EXPORTS:
        import importlib
        module = importlib.import_module(
            f".{_LAZY_EXPORTS[name]}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
