"""Dynamic race detection for the simulated parallel machine.

The work-span simulator executes "parallel" regions sequentially, so a data
race --- two simulated tasks touching the same address, at least one of them
writing, with no atomic mediation --- silently yields *some* deterministic
answer instead of crashing.  That answer is exactly the one a real parallel
execution is not guaranteed to reproduce, which breaks the fidelity contract
every number in EXPERIMENTS.md rests on (the paper's Theorems assume
race-free, linearizable parallel steps).

This module is the ThreadSanitizer analog for the simulated machine:

* :class:`RaceDetector` shadow-logs ``(address, owner, read/write, atomic)``
  tuples during parallel regions and, at each outermost region's close,
  flags write--write and read--write pairs issued by *different* simulated
  tasks to the same address that were not both mediated by an atomic.
* :class:`ShadowArray` wraps a numpy array so plain ``arr[i]`` reads and
  ``arr[i] = x`` writes are logged; it is how algorithm state (peel status,
  round stamps) becomes visible to the detector without changing the
  algorithm's accounting.

Ownership model.  Each access is attributed to the *task path* active when
it happens: a tuple of ``(region_id, task_index)`` frames maintained by
:meth:`repro.parallel.runtime.CostTracker.parallel`.  Two accesses may run
concurrently on a real machine exactly when neither owner path is a prefix
of the other (fork-join semantics: a prefix is an ancestor, and ancestors
are ordered with their descendants; the empty path is serial code, ordered
with everything).  Structures owned by a simulated *worker thread* rather
than a task (the list buffer's per-thread cursors) pass an explicit
``owner`` so tasks multiplexed onto one worker do not self-report.

The detector is opt-in and accounting-neutral: attaching one to a tracker
changes no work/span/contention counter, only observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Cap on distinct owners remembered per (address, access kind); two are
#: enough to prove a race, a few more give better reports.
_OWNER_CAP = 4


class RaceError(RuntimeError):
    """Raised by :meth:`RaceDetector.settle` in strict mode when races exist."""

    def __init__(self, races: list["Race"]):
        self.races = races
        lines = [f"{len(races)} simulated data race(s) detected:"]
        lines += [f"  {race.describe()}" for race in races[:10]]
        if len(races) > 10:
            lines.append(f"  ... and {len(races) - 10} more")
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class Race:
    """One detected race: two concurrent unmediated accesses to one address."""

    address: int
    kind: str  # "write-write" or "read-write"
    owners: tuple  # the two conflicting owner paths
    label: str = ""  # optional human label of the address region

    def describe(self) -> str:
        where = self.label or f"address {self.address}"
        return (f"{self.kind} race at {where} between tasks "
                f"{self.owners[0]!r} and {self.owners[1]!r}")


class _AddrState:
    """Per-address access record within one outermost parallel region."""

    __slots__ = ("plain_writers", "plain_readers", "atomic_writers")

    def __init__(self) -> None:
        self.plain_writers: list[tuple] = []
        self.plain_readers: list[tuple] = []
        self.atomic_writers: list[tuple] = []


def _concurrent(a: tuple, b: tuple) -> bool:
    """True when owner paths ``a`` and ``b`` may execute concurrently.

    In fork-join execution an access is ordered with its ancestors (a
    prefix path) and with everything outside its region's lifetime; two
    paths race only when neither is a prefix of the other.
    """
    shorter = min(len(a), len(b))
    return a[:shorter] != b[:shorter]


@dataclass
class RaceStats:
    """Counters summarizing one detector run (for reports and tests)."""

    logged: int = 0
    addresses_seen: int = 0
    regions: int = 0
    tasks: int = 0
    races: int = 0


class RaceDetector:
    """Shadow-logs simulated memory accesses and flags data races.

    Usage::

        detector = RaceDetector()
        tracker = CostTracker()
        tracker.race_detector = detector     # runtime notifies task entry
        ... run the algorithm ...
        detector.settle(strict=True)         # raises RaceError on races

    Accesses are logged by instrumented structures:
    :class:`~repro.parallel.atomics.AtomicArray` (mediated),
    :class:`ShadowArray` (unmediated), the clique table's count updates and
    the update aggregators (mediated, matching the fetch-and-add/CAS the
    paper's real implementation uses at those sites).

    Address-space collisions between independently instrumented structures
    are avoided by allocating shadow bases from :meth:`allocate`, which
    starts far above the :class:`~repro.machine.cache.AddressSpace` range.
    """

    def __init__(self) -> None:
        self.races: list[Race] = []
        self.stats = RaceStats()
        self._addr: dict[int, _AddrState] = {}
        self._labels: list[tuple[int, int, str]] = []  # (base, end, label)
        self._stack: list[tuple[int, int]] = []  # active task frames
        self._open_regions = 0
        self._region_counter = 0
        self._next_base = 1 << 40

    # -- address allocation --------------------------------------------------

    def allocate(self, length: int, label: str = "") -> int:
        """Reserve ``length`` shadow addresses; returns the base address."""
        base = self._next_base
        self._next_base += max(1, int(length))
        if label:
            self._labels.append((base, self._next_base, label))
        return base

    def _label_of(self, address: int) -> str:
        for base, end, label in self._labels:
            if base <= address < end:
                return f"{label}[{address - base}]"
        return ""

    # -- region/task bookkeeping (called by the runtime) ----------------------

    def begin_region(self) -> int:
        """A ``tracker.parallel`` region opened; returns its id."""
        self._region_counter += 1
        self._open_regions += 1
        self.stats.regions += 1
        return self._region_counter

    def end_region(self) -> None:
        """A region closed; at the outermost close, analyze and reset.

        The close is a barrier: accesses before it cannot race with
        accesses after it, so per-address state is flushed here.
        """
        self._open_regions -= 1
        if self._open_regions <= 0:
            self._open_regions = 0
            self._flush()

    def begin_task(self, region_id: int, task_index: int) -> None:
        self._stack.append((region_id, task_index))
        self.stats.tasks += 1

    def end_task(self) -> None:
        self._stack.pop()

    @property
    def current_owner(self) -> tuple:
        """The active task path (empty tuple = serial context)."""
        return tuple(self._stack)

    # -- logging ---------------------------------------------------------------

    def log(self, address: int, write: bool, atomic: bool = False,
            owner: tuple | None = None) -> None:
        """Record one simulated access.

        ``atomic=True`` marks the access as mediated (fetch-and-add, CAS,
        atomic load); mediated accesses never race with each other.
        ``owner`` overrides task attribution for thread-owned state.
        """
        self.stats.logged += 1
        if owner is None:
            owner = tuple(self._stack)
        state = self._addr.get(address)
        if state is None:
            state = self._addr[address] = _AddrState()
            self.stats.addresses_seen += 1
        if atomic:
            bucket = state.atomic_writers if write else None
        else:
            bucket = state.plain_writers if write else state.plain_readers
        if bucket is not None and len(bucket) < _OWNER_CAP \
                and owner not in bucket:
            bucket.append(owner)

    def log_read(self, address: int, owner: tuple | None = None) -> None:
        self.log(address, write=False, owner=owner)

    def log_write(self, address: int, owner: tuple | None = None) -> None:
        self.log(address, write=True, owner=owner)

    def log_atomic(self, address: int, write: bool = True,
                   owner: tuple | None = None) -> None:
        self.log(address, write=write, atomic=True, owner=owner)

    # -- analysis --------------------------------------------------------------

    def _flush(self) -> None:
        """Analyze the region's access records, then clear them."""
        for address, state in self._addr.items():
            race = self._analyze(address, state)
            if race is not None:
                self.races.append(race)
                self.stats.races += 1
        self._addr.clear()

    def _analyze(self, address: int, state: _AddrState) -> Race | None:
        label = self._label_of(address)
        # write-write: two concurrent plain writers.
        for i, a in enumerate(state.plain_writers):
            for b in state.plain_writers[i + 1:]:
                if _concurrent(a, b):
                    return Race(address, "write-write", (a, b), label)
        # A plain write concurrent with an atomic write: the plain side is
        # unmediated, so the pair still races.
        for a in state.plain_writers:
            for b in state.atomic_writers:
                if _concurrent(a, b):
                    return Race(address, "write-write", (a, b), label)
        # read-write: a plain read concurrent with any write.
        for a in state.plain_readers:
            for b in state.plain_writers:
                if _concurrent(a, b):
                    return Race(address, "read-write", (a, b), label)
            for b in state.atomic_writers:
                if _concurrent(a, b):
                    return Race(address, "read-write", (a, b), label)
        return None

    def settle(self, strict: bool = False) -> list[Race]:
        """Analyze any remaining records and report all races found.

        Mirrors :meth:`ContentionMeter.settle`: call once at the end of a
        checked run.  With ``strict=True`` raises :class:`RaceError` when
        races were detected.  Returns the accumulated race list (which is
        *not* cleared, so callers can settle then inspect).
        """
        self._flush()
        if strict and self.races:
            raise RaceError(self.races)
        return self.races


class ShadowArray:
    """A numpy-backed array whose element accesses are race-checked.

    Supports the subscript protocol only (``arr[i]``, ``arr[i] = x``, with
    integer, slice, boolean-mask, or fancy indices); arithmetic should be
    done on the underlying :attr:`values`.  With ``atomic=True`` every
    access is logged as mediated --- use this for state whose real-machine
    counterpart is updated by CAS/fetch-and-add (e.g. first-touch round
    stamps), so the simulated plain mutation is not a false positive.
    """

    __slots__ = ("values", "detector", "base_address", "atomic")

    def __init__(self, values, detector: RaceDetector | None,
                 base_address: int | None = None, atomic: bool = False,
                 label: str = ""):
        self.values = np.asarray(values)
        self.detector = detector
        if base_address is None and detector is not None:
            base_address = detector.allocate(self.values.size, label)
        self.base_address = base_address or 0
        self.atomic = atomic

    def _log(self, index, write: bool) -> None:
        detector = self.detector
        if detector is None:
            return
        if isinstance(index, (int, np.integer)):
            addresses = (self.base_address + int(index),)
        else:
            if isinstance(index, slice):
                idx = np.arange(*index.indices(self.values.size))
            else:
                idx = np.atleast_1d(np.asarray(index))
                if idx.dtype == bool:
                    idx = np.flatnonzero(idx)
            addresses = (self.base_address + int(i) for i in idx)
        for address in addresses:
            detector.log(address, write=write, atomic=self.atomic)

    def __getitem__(self, index):
        self._log(index, write=False)
        return self.values[index]

    def __setitem__(self, index, value) -> None:
        self._log(index, write=True)
        self.values[index] = value

    def __len__(self) -> int:
        return len(self.values)

    @property
    def size(self) -> int:
        return self.values.size

    def __repr__(self) -> str:
        return (f"ShadowArray(size={self.values.size}, "
                f"base={self.base_address}, atomic={self.atomic})")


def maybe_shadow(values, tracker, atomic: bool = False, label: str = ""):
    """Wrap ``values`` in a :class:`ShadowArray` when ``tracker`` carries a
    race detector; otherwise return ``values`` unchanged.

    This is the one-line opt-in used by algorithm code: with no detector
    attached the original ndarray is used and the run is unchanged.
    """
    detector = getattr(tracker, "race_detector", None) if tracker else None
    if detector is None:
        return values
    return ShadowArray(values, detector, atomic=atomic, label=label)
