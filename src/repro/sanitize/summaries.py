"""Per-function charge summaries over the project call graph.

For every :class:`~repro.sanitize.callgraph.FunctionInfo` this computes
the transitive set of :class:`~repro.parallel.runtime.CostTracker`
methods the function may invoke, split by how the tracker reaches it:

``uncond``
    Charges that happen whenever the function runs --- through
    ``self.tracker`` (or any receiver that is not the caller-passed
    ``tracker`` parameter), or via a callee that itself charges
    unconditionally.

``cond``
    Charges that happen only when the *caller* supplies a tracker: the
    receiver is the function's own ``tracker`` parameter, or the charge
    flows through a callee to which the function forwards that parameter.

Method names are normalized (``add_work_int`` counts as ``add_work``,
``task_span`` as ``add_span``, ``access_sequence`` as ``access``) so the
batch/scalar parity comparison is about *which counters move*, not which
convenience wrapper moved them.  A tracker handed to a call the graph
cannot resolve inside the project contributes the marker effect
``@external`` --- treated as "charges something" by PAR001/PAR002/PAR005/
PAR008, and excluded from PAR007's parity sets.

The propagation is a standard monotone fixpoint over the (may-call) graph
and terminates because effect sets only grow and are drawn from a finite
alphabet.  After the fixpoint, every call site is annotated with whether
it provably charges (``CallSite.charges`` / ``charges_workspan``), which
is exactly the *charge oracle* the lexical PAR001/PAR002 visitors accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .callgraph import EXTERNAL_EFFECT, Project

#: Normalized methods that satisfy PAR001 (the region costs work or span).
WORKSPAN_EFFECTS = frozenset({"add_work", "add_span", EXTERNAL_EFFECT})


@dataclass
class Summary:
    """Transitive charge effects of one function (normalized names)."""

    cond: set[str] = field(default_factory=set)
    uncond: set[str] = field(default_factory=set)

    @property
    def effects(self) -> set[str]:
        """All effects when the function is run *with* a tracker."""
        return self.cond | self.uncond

    @property
    def charges(self) -> bool:
        return bool(self.cond or self.uncond)


def compute_summaries(project: Project) -> dict[str, Summary]:
    """The fixpoint.  Also annotates every ``CallSite`` in the project
    with its post-fixpoint charging verdict."""
    summaries: dict[str, Summary] = {}
    for qual, fn in project.functions.items():
        summary = Summary()
        for charge in fn.charge_calls:
            (summary.cond if charge.conditional
             else summary.uncond).add(charge.norm)
        for site in fn.call_sites:
            if site.passes_tracker and not site.targets:
                (summary.cond if site.pass_conditional
                 else summary.uncond).add(EXTERNAL_EFFECT)
        summaries[qual] = summary

    changed = True
    while changed:
        changed = False
        for qual, fn in project.functions.items():
            summary = summaries[qual]
            for site in fn.call_sites:
                for target in site.targets:
                    callee = summaries.get(target)
                    if callee is None:
                        continue
                    before = (len(summary.cond), len(summary.uncond))
                    summary.uncond |= callee.uncond
                    if site.passes_tracker:
                        gained = callee.cond
                        if site.pass_conditional:
                            summary.cond |= gained
                        else:
                            summary.uncond |= gained
                    if (len(summary.cond), len(summary.uncond)) != before:
                        changed = True

    for fn in project.functions.values():
        for site in fn.call_sites:
            effects: set[str] = set()
            for target in site.targets:
                callee = summaries.get(target)
                if callee is None:
                    continue
                effects |= callee.uncond
                if site.passes_tracker:
                    effects |= callee.cond
            if site.passes_tracker and not site.targets:
                effects.add(EXTERNAL_EFFECT)
            site.charges = bool(effects)
            site.charges_workspan = bool(effects & WORKSPAN_EFFECTS)
    return summaries


def charge_oracles(project: Project, summaries: dict[str, Summary],
                   module: str) -> tuple[frozenset, frozenset]:
    """``(any-charge, work/span-charge)`` call-site location oracles for
    one module, in the ``(lineno, col_offset)`` form the lexical linter
    accepts.  Direct charge-method calls are already recognized lexically;
    the oracle adds the *charging helper* call sites."""
    any_locs: set[tuple[int, int]] = set()
    workspan_locs: set[tuple[int, int]] = set()
    for fn in project.functions_of_module(module):
        for site in fn.call_sites:
            if site.charges:
                any_locs.add((site.lineno, site.col))
            if site.charges_workspan:
                workspan_locs.add((site.lineno, site.col))
    return frozenset(any_locs), frozenset(workspan_locs)
