"""The interprocedural rules PAR005--PAR011.

These run on top of the call graph (:mod:`~repro.sanitize.callgraph`)
and the charge summaries (:mod:`~repro.sanitize.summaries`); the lexical
rules PAR001--PAR004 stay in :mod:`~repro.sanitize.parlint` and are fed
the summary-derived charge oracle by :mod:`~repro.sanitize.chargeflow`.

``PAR005``
    A vectorized NumPy bulk operation in an engine-module kernel that
    participates in cost accounting but whose transitive charge set is
    empty: the kernel does O(n) work in one call and the simulated
    machine would believe it free.
``PAR006``
    Nondeterminism hazards in cost-accounted code --- iteration over a
    ``set``, ``id()``-keyed structures, unseeded RNG, ``np.argsort``
    without ``kind="stable"`` --- the things that silently break the
    bit-for-bit batch/scalar parity contract.
``PAR007``
    The declared batch<->scalar pairing registry (``PARLINT_PARITY``):
    every cost-accounted kernel in an engine module must name its scalar
    oracle, the committed lexical charge fingerprint must match the
    code, and both sides must move the same set of tracker counters.
``PAR008``
    A charge issued outside any ``tracker.phase(...)`` /
    ``tracker.parallel(...)`` attribution scope in a function that opens
    phases: such charges corrupt ``MachineModel.time_breakdown``.
``PAR009`` / ``PAR010`` / ``PAR011``
    The static parallel-effect rules.  The heavy lifting happens in
    :mod:`~repro.sanitize.effects` (one pass over the whole project);
    the check functions here slice that report per module so findings
    flow through the same suppression/baseline machinery as every other
    rule.  PAR009 flags a potential static race in a parallel region,
    PAR010 an atomic accumulation with an order-dependent operand, and
    PAR011 a region with shared writes that no ``RACECHECK_COVERS``
    stamp in the test suite reaches.
"""

from __future__ import annotations

import ast

from .callgraph import EXTERNAL_EFFECT, FunctionInfo, ModuleInfo, Project
from .parlint import Finding
from .registry import (collect_registry, is_engine_module,
                       kernel_fingerprint, tracked_kernels)

STRICT_RULES = {
    "PAR005": "uncharged vectorized bulk operation in engine code",
    "PAR006": "nondeterminism hazard in cost-accounted code",
    "PAR007": "batch/scalar parity registry violation",
    "PAR008": "charge outside any phase/parallel attribution scope",
    "PAR009": "potential static race in a parallel region",
    "PAR010": "non-commutative atomic accumulation",
    "PAR011": "parallel region without dynamic race coverage",
}


# ---------------------------------------------------------------------------
# PAR005


def check_par005(project: Project, summaries: dict,
                 module: ModuleInfo) -> list[Finding]:
    if not is_engine_module(module):
        return []
    findings = []
    for fn in project.functions_of_module(module.name):
        if not fn.mentions_tracker or not fn.bulk_ops:
            continue
        summary = summaries.get(fn.qualname)
        if summary is not None and summary.charges:
            continue
        name, lineno, col = fn.bulk_ops[0]
        findings.append(Finding(
            "PAR005", module.path, lineno, col,
            f"engine kernel {fn.name!r} runs vectorized bulk ops "
            f"({name}, {len(fn.bulk_ops)} site(s)) but never charges the "
            f"tracker on any path; the simulated machine sees this work "
            f"as free"))
    return findings


# ---------------------------------------------------------------------------
# PAR006


_RNG_UNSEEDED_HINT = frozenset({
    "rand", "randn", "randint", "random", "choice", "shuffle",
    "permutation", "uniform", "normal", "random_sample",
})


def _par006_hazards(fn: FunctionInfo, module: ModuleInfo):
    """Yield ``(node, message)`` nondeterminism hazards inside *fn*."""
    for sub in ast.walk(fn.node):
        iters = []
        if isinstance(sub, ast.For):
            iters = [sub.iter]
        elif isinstance(sub, ast.comprehension):
            iters = [sub.iter]
        for it in iters:
            if isinstance(it, ast.Set):
                yield sub, "iteration over a set literal has no defined " \
                           "order; sort it first"
            elif isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                    and it.func.id in ("set", "frozenset"):
                yield sub, "iteration over set(...) has no defined order; " \
                           "sort it first"
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Name) and func.id == "id" and sub.args:
                yield sub, "id() keys vary across runs; key on a stable " \
                           "identifier instead"
            if isinstance(func, ast.Attribute) and func.attr == "argsort":
                kinds = [kw.value for kw in sub.keywords if kw.arg == "kind"]
                stable = any(isinstance(k, ast.Constant)
                             and k.value in ("stable", "mergesort")
                             for k in kinds)
                if not stable:
                    yield sub, "argsort without kind='stable' breaks ties " \
                               "platform-dependently; peel/bucket orders " \
                               "must be reproducible"
            if isinstance(func, ast.Name) and func.id == "default_rng" \
                    and not sub.args and not sub.keywords:
                yield sub, "default_rng() without a seed is " \
                           "nondeterministic; pass an explicit seed"
            chain = _chain_of(func)
            if chain and chain[0] in module.numpy_aliases \
                    and len(chain) >= 3 and chain[1] == "random":
                if chain[2] == "default_rng" and not sub.args \
                        and not sub.keywords:
                    yield sub, "default_rng() without a seed is " \
                               "nondeterministic; pass an explicit seed"
                elif chain[2] in _RNG_UNSEEDED_HINT:
                    yield sub, f"np.random.{chain[2]} uses the unseeded " \
                               f"global RNG; use a seeded Generator"


def _chain_of(expr: ast.expr) -> list[str] | None:
    chain: list[str] = []
    while isinstance(expr, ast.Attribute):
        chain.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        chain.append(expr.id)
        return list(reversed(chain))
    return None


def check_par006(project: Project, summaries: dict,
                 module: ModuleInfo) -> list[Finding]:
    findings = []
    for fn in project.functions_of_module(module.name):
        if not fn.mentions_tracker:
            continue  # determinism only contracts cost-accounted code
        for node, message in _par006_hazards(fn, module):
            findings.append(Finding(
                "PAR006", module.path, node.lineno, node.col_offset,
                f"in {fn.name!r}: {message}"))
    return findings


# ---------------------------------------------------------------------------
# PAR007


def _parity_effects(summaries: dict, qual: str) -> set[str] | None:
    summary = summaries.get(qual)
    if summary is None:
        return None
    return summary.effects - {EXTERNAL_EFFECT}


def check_par007(project: Project, summaries: dict,
                 module: ModuleInfo,
                 registry: dict, registry_errors: list) -> list[Finding]:
    findings = []
    for error in registry_errors:
        if error.module == module.name:
            findings.append(Finding(
                "PAR007", error.path, error.lineno, 0, error.message))
    if not is_engine_module(module):
        return findings
    kernels = tracked_kernels(project, summaries, module)
    for fn in kernels:
        entry = registry.get(fn.qualname)
        if entry is None:
            findings.append(Finding(
                "PAR007", module.path, fn.lineno, 0,
                f"batch kernel {fn.name!r} has no PARLINT_PARITY entry "
                f"naming its scalar oracle (run --emit-registry for a "
                f"template)"))
            continue
        oracle_effects = _parity_effects(summaries, entry.oracle)
        if oracle_effects is None:
            findings.append(Finding(
                "PAR007", module.path, entry.lineno, 0,
                f"registry entry {fn.name!r}: scalar oracle "
                f"{entry.oracle!r} is not a known project function"))
            continue
        actual = kernel_fingerprint(fn)
        if actual != entry.fingerprint:
            missing = {k: v for k, v in entry.fingerprint.items()
                       if actual.get(k) != v}
            extra = {k: v for k, v in actual.items()
                     if entry.fingerprint.get(k) != v}
            findings.append(Finding(
                "PAR007", module.path, fn.lineno, 0,
                f"batch kernel {fn.name!r}: charge fingerprint drifted "
                f"from the declared contract (declared-but-absent: "
                f"{missing or '{}'}; present-but-undeclared: "
                f"{extra or '{}'}); re-verify parity against "
                f"{entry.oracle} and re-bless the registry"))
        kernel_effects = _parity_effects(summaries, fn.qualname) or set()
        if kernel_effects != oracle_effects:
            batch_only = sorted(kernel_effects - oracle_effects)
            scalar_only = sorted(oracle_effects - kernel_effects)
            findings.append(Finding(
                "PAR007", module.path, fn.lineno, 0,
                f"batch kernel {fn.name!r} and scalar oracle "
                f"{entry.oracle} move different tracker counters "
                f"(batch-only: {batch_only}; scalar-only: {scalar_only})"))
    known = {fn.qualname for fn in kernels}
    for qual, entry in sorted(registry.items()):
        if entry.module == module.name and qual not in known:
            findings.append(Finding(
                "PAR007", module.path, entry.lineno, 0,
                f"registry names {qual.rsplit('.', 1)[1]!r} but no such "
                f"cost-accounted kernel exists in the module; remove the "
                f"stale entry"))
    return findings


# ---------------------------------------------------------------------------
# PAR008


def _in_spans(line: int, spans: list[tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in spans)


def check_par008(project: Project, summaries: dict,
                 module: ModuleInfo) -> list[Finding]:
    findings = []
    for fn in project.functions_of_module(module.name):
        if not fn.opens_phase:
            continue
        for charge in fn.charge_calls:
            if _in_spans(charge.lineno, fn.phase_spans):
                continue
            if _in_spans(charge.lineno, fn.nested_spans):
                continue  # a closure body: executes where it is called
            findings.append(Finding(
                "PAR008", module.path, charge.lineno, charge.col,
                f"in {fn.name!r}: {charge.attr}() outside any "
                f"phase/parallel scope; the charge lands in no phase and "
                f"corrupts time_breakdown"))
        for site in fn.call_sites:
            if not site.charges:
                continue
            if _in_spans(site.lineno, fn.phase_spans) \
                    or _in_spans(site.lineno, fn.nested_spans):
                continue
            targets = [project.functions.get(t) for t in site.targets]
            if targets and all(t is not None and t.opens_phase
                               for t in targets):
                continue  # sub-orchestrator opens its own phases
            findings.append(Finding(
                "PAR008", module.path, site.lineno, site.col,
                f"in {fn.name!r}: call to {site.callee_display}() charges "
                f"the tracker outside any phase/parallel scope"))
    return findings


# ---------------------------------------------------------------------------
# PAR009 / PAR010 / PAR011 (sliced from the project-wide effects report)


def _effects_slice(effects, module: ModuleInfo, rule: str) -> list[Finding]:
    if effects is None:
        return []
    return [f for f in effects.findings
            if f.rule == rule and f.path == module.path]


def check_par009(project: Project, effects,
                 module: ModuleInfo) -> list[Finding]:
    return _effects_slice(effects, module, "PAR009")


def check_par010(project: Project, effects,
                 module: ModuleInfo) -> list[Finding]:
    return _effects_slice(effects, module, "PAR010")


def check_par011(project: Project, effects,
                 module: ModuleInfo) -> list[Finding]:
    return _effects_slice(effects, module, "PAR011")


def run_strict_rules(project: Project, summaries: dict,
                     module: ModuleInfo, registry: dict,
                     registry_errors: list, effects=None) -> list[Finding]:
    findings = []
    findings += check_par005(project, summaries, module)
    findings += check_par006(project, summaries, module)
    findings += check_par007(project, summaries, module, registry,
                             registry_errors)
    findings += check_par008(project, summaries, module)
    findings += check_par009(project, effects, module)
    findings += check_par010(project, effects, module)
    findings += check_par011(project, effects, module)
    return findings
