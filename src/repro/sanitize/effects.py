"""Static parallel-effect analyzer (rules PAR009--PAR011).

Locates every ``with tracker.parallel(...)`` region and ``with
region.task():`` body in the analyzed package and computes, per region,
the set of *shared-state accesses* its tasks can perform --- subscript
reads/writes of shadow/numpy arrays, attribute writes, and mutating
method calls on tables/aggregators --- walking interprocedurally through
the same call graph the charge-flow analyzer uses
(:mod:`~repro.sanitize.callgraph`), including closures passed as
callbacks (the ``UPDATE-FUNC`` pattern of Algorithm 2).

Ownership / mediation proofs
----------------------------

A task-side access is considered *safe* when any of these holds:

* **atomic storage** --- the root object is an ``AtomicArray`` or a
  ``ShadowArray`` created with ``atomic=True`` (tracked by a small
  classification lattice flowing through assignments and call bindings);
* **detector instrumentation** --- the access goes through a method whose
  body logs to a race detector (``...detector.log(...)``); those
  addresses are owned by the dynamic layer (:mod:`repro.sanitize
  .racecheck`), so the static analyzer records the call as a *mediated*
  write on the receiver and does not second-guess the body;
* **task-disjointness** --- the subscript index is a pure function of the
  task-loop variables (the *basis*: targets of ``for`` loops that
  enclose the ``region.task()`` block, plus names derived only from
  them), so per-task writes land in disjoint cells.

Anything else is a potential race (**PAR009**).  Atomic accumulations
(fetch-and-add, ``np.add.at`` scatters charged via ``add_atomic``) whose
operand is order-dependent --- contains a division or a non-integral
float --- are deterministic-by-luck only and get **PAR010**.  Regions
with shared writes that no ``RACECHECK_COVERS`` stamp in the test suite
reaches get **PAR011**.

Known, deliberate approximations (documented for rule PAR009):

* the disjointness proof is name-based: a non-injective function of the
  task variable (``t % 2``) is accepted statically and left to the
  dynamic detector;
* values returned from calls are treated as task-private (return-value
  aliasing of shared views is not tracked);
* a parameter bound to an unanalyzable argument expression is treated as
  task-private.

All are *optimistic* only for patterns the dynamic detector covers; the
PAR011 coverage rule is what keeps that bargain honest.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path

from .callgraph import (TRACKER_CHARGE_METHODS, FunctionInfo, ModuleInfo,
                        Project, _attr_chain, _FunctionWalker, _receiver_root)
from .parlint import Finding
from .registry import is_engine_module

# --------------------------------------------------------------------------
# classification lattice for array-like values

CLS_TOP = "unknown"     # no information (treated as non-atomic at checks)
CLS_ATOMIC = "atomic"   # AtomicArray / ShadowArray(atomic=True)
CLS_PLAIN = "plain"     # plain ndarray / ShadowArray(atomic=False)


def _meet(a: str, b: str) -> str:
    """Conservative combine: disagreement (or partial knowledge meeting
    ``atomic``) degrades to ``plain`` --- a value is only *proven* atomic
    when every path says so."""
    return a if a == b else CLS_PLAIN


#: Constructors returning shadow-wrapped arrays; ``atomic`` keyword (or the
#: third positional argument of ``maybe_shadow``) decides the class.
_SHADOW_CTORS = frozenset({"maybe_shadow", "ShadowArray"})
_ATOMIC_CTORS = frozenset({"AtomicArray"})

#: numpy entry points that allocate a fresh (hence classifiable) array.
_ALLOC_ATTRS = frozenset({
    "zeros", "empty", "full", "ones", "array", "asarray", "arange",
    "zeros_like", "ones_like", "empty_like", "full_like", "fromiter",
    "repeat", "concatenate", "where", "sort", "unique", "flatnonzero",
})

#: Unresolved ``obj.<method>()`` names that mutate the receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse", "fill",
    "put", "itemset", "push",
})

#: Receiver names whose methods are runtime bookkeeping, not shared-state
#: effects (charges, region spans, detector logging).
_EXEMPT_RECEIVERS = frozenset({"tracker", "region"})

#: Callables allowed inside a disjointness/basis-purity proof.
_PURE_WRAPPERS = frozenset({"int", "float", "len", "abs", "min", "max"})

_BUILTIN_NAMES = frozenset(dir(builtins))

_MAX_DEPTH = 12


# --------------------------------------------------------------------------
# data model


@dataclass(frozen=True)
class Root:
    """A shared object reachable from task code, named by where it was
    bound: ``(enclosing qualname-or-module, name, *attribute path)``."""

    identity: tuple
    cls: str = CLS_TOP

    @property
    def label(self) -> str:
        name = self.identity[1] if len(self.identity) > 1 else self.identity[0]
        return ".".join((name,) + tuple(self.identity[2:]))


@dataclass(frozen=True)
class Access:
    """One read or write of shared state attributed to a source line."""

    identity: tuple
    write: bool
    mediated: bool     # atomic storage or detector-instrumented method
    disjoint: bool     # index proven a pure function of the task basis
    path: str
    lineno: int
    col: int
    label: str


@dataclass
class _Frame:
    """One interprocedural walk frame: name bindings for a function body."""

    fn: FunctionInfo
    module: ModuleInfo
    env: dict = field(default_factory=dict)        # name -> Root (shared)
    basis: set = field(default_factory=set)        # task-loop-derived names
    local: set = field(default_factory=set)        # task/call-private names
    fndefs: dict = field(default_factory=dict)     # name -> nested def node
    callables: dict = field(default_factory=dict)  # name -> callable binding
    reaching: dict = field(default_factory=dict)   # name -> [rhs exprs]


@dataclass
class Region:
    fn: FunctionInfo
    module: ModuleInfo
    node: ast.With
    alias: str | None
    lineno: int


@dataclass
class RegionReport:
    """Registry entry for one parallel region (PAR011 cross-references
    this against the test suite's ``RACECHECK_COVERS`` stamps)."""

    qualname: str
    path: str
    lineno: int
    name: str
    has_shared_writes: bool
    covered: bool = False


@dataclass
class EffectsReport:
    findings: list          # PAR009/PAR010/PAR011 at source-module paths
    regions: list
    stamp_findings: list    # PAR011 diagnostics at test-file paths


# --------------------------------------------------------------------------
# value classification


def _classify_rhs(expr: ast.expr | None, module: ModuleInfo) -> str:
    if not isinstance(expr, ast.Call):
        return CLS_TOP
    func = expr.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in _SHADOW_CTORS:
        for kw in expr.keywords:
            if kw.arg == "atomic":
                if isinstance(kw.value, ast.Constant):
                    return CLS_ATOMIC if kw.value.value else CLS_PLAIN
                return CLS_TOP
        if len(expr.args) >= 3 and isinstance(expr.args[2], ast.Constant):
            return CLS_ATOMIC if expr.args[2].value else CLS_PLAIN
        return CLS_PLAIN
    if name in _ATOMIC_CTORS:
        return CLS_ATOMIC
    chain = _attr_chain(func)
    if chain and chain[0] in module.numpy_aliases \
            and chain[-1] in _ALLOC_ATTRS:
        return CLS_PLAIN
    if isinstance(func, ast.Attribute) and func.attr in ("copy", "astype"):
        return CLS_PLAIN
    return CLS_TOP


def _target_names(target: ast.expr) -> set[str]:
    names = set()
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            names |= _target_names(elt)
    elif isinstance(target, ast.Starred):
        names |= _target_names(target.value)
    return names


def _param_classes(project: Project) -> dict[tuple[str, str], str]:
    """Per-(function, parameter) storage class, propagated from every
    resolvable call site (one level of param-to-param flow, run to a
    small fixpoint).  Arguments that cannot be classified are treated as
    ``plain`` --- proofs must be positive."""
    local_cls: dict[str, dict[str, str]] = {}
    for qual in sorted(project.functions):
        fn = project.functions[qual]
        module = project.modules.get(fn.module)
        env: dict[str, str] = {}
        if module is not None:
            for sub in ast.walk(fn.node):
                if isinstance(sub, (ast.Assign, ast.AnnAssign)) \
                        and getattr(sub, "value", None) is not None:
                    cls = _classify_rhs(sub.value, module)
                    targets = sub.targets if isinstance(sub, ast.Assign) \
                        else [sub.target]
                    for t in targets:
                        for name in _target_names(t):
                            env[name] = _meet(env[name], cls) \
                                if name in env else cls
        local_cls[qual] = env

    edges: list[tuple[str, str, str, object]] = []
    for qual in sorted(project.functions):
        fn = project.functions[qual]
        module = project.modules.get(fn.module)
        if module is None:
            continue
        walker = _FunctionWalker(project, module, fn)
        for call in ast.walk(fn.node):
            if not isinstance(call, ast.Call):
                continue
            _, targets = walker._resolve(call.func)
            for tq in sorted(targets):
                callee = project.functions.get(tq)
                if callee is None:
                    continue
                params = list(callee.params)
                if callee.class_name and params \
                        and params[0] in ("self", "cls"):
                    params = params[1:]
                pairs = list(zip(params, call.args))
                pairs += [(kw.arg, kw.value) for kw in call.keywords
                          if kw.arg and kw.arg in callee.params]
                for pname, arg in pairs:
                    if isinstance(arg, ast.Name):
                        cls = local_cls[qual].get(arg.id)
                        if cls is not None and cls != CLS_TOP:
                            edges.append((tq, pname, "cls", cls))
                        elif arg.id in fn.params:
                            edges.append((tq, pname, "param", (qual, arg.id)))
                        else:
                            edges.append((tq, pname, "cls", CLS_PLAIN))
                    else:
                        cls = _classify_rhs(arg, module)
                        edges.append((tq, pname, "cls",
                                      cls if cls != CLS_TOP else CLS_PLAIN))

    classes: dict[tuple[str, str], str] = {}
    for _ in range(8):
        changed = False
        for tq, pname, kind, payload in edges:
            cls = payload if kind == "cls" \
                else classes.get(payload, CLS_PLAIN)
            key = (tq, pname)
            prev = classes.get(key)
            new = cls if prev is None else _meet(prev, cls)
            if new != prev:
                classes[key] = new
                changed = True
        if not changed:
            break
    return classes


# --------------------------------------------------------------------------
# the analyzer


class _EffectAnalyzer:
    def __init__(self, project: Project) -> None:
        self.project = project
        self.param_classes = _param_classes(project)
        self.findings: list[Finding] = []
        self.regions: list[RegionReport] = []
        self._stack: list[str] = []
        self._instrumented: dict[str, bool] = {}
        self._accumulator: dict[str, bool] = {}
        self._walkers: dict[str, _FunctionWalker] = {}
        self._seen_010: set[tuple] = set()
        self._seen_009: set[tuple] = set()

    # -- entry ------------------------------------------------------------

    def run(self) -> None:
        for qual in sorted(self.project.functions):
            fn = self.project.functions[qual]
            module = self.project.modules.get(fn.module)
            if module is None:
                continue
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.With):
                    continue
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call) \
                            and isinstance(expr.func, ast.Attribute) \
                            and expr.func.attr == "parallel":
                        alias = None
                        if isinstance(item.optional_vars, ast.Name):
                            alias = item.optional_vars.id
                        self._analyze_region(Region(
                            fn=fn, module=module, node=node, alias=alias,
                            lineno=node.lineno))
                        break
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    def _analyze_region(self, region: Region) -> None:
        frame = self._region_frame(region)
        task_acc: list[Access] = []
        serial_acc: list[Access] = []
        self._stack = []
        self._region = region
        self._task_sink = task_acc
        self._serial_sink = serial_acc
        for stmt in region.node.body:
            self._stmt(stmt, frame, in_task=False)
        self._par009(region, task_acc)
        has_writes = any(a.write for a in task_acc + serial_acc)
        self.regions.append(RegionReport(
            qualname=region.fn.qualname, path=region.module.path,
            lineno=region.lineno, name=region.fn.name,
            has_shared_writes=has_writes))

    def _region_frame(self, region: Region) -> _Frame:
        fn, module = region.fn, region.module
        frame = _Frame(fn=fn, module=module)
        for p in fn.params:
            frame.env[p] = Root(
                (fn.qualname, p),
                self.param_classes.get((fn.qualname, p), CLS_TOP))
        for sub in ast.walk(fn.node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)) \
                    and getattr(sub, "value", None) is not None:
                cls = _classify_rhs(sub.value, module)
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                for t in targets:
                    for name in _target_names(t):
                        prev = frame.env.get(name)
                        if prev is None:
                            frame.env[name] = Root((fn.qualname, name), cls)
                        else:
                            frame.env[name] = Root(
                                prev.identity, _meet(prev.cls, cls))
                        frame.reaching.setdefault(name, []).append(sub.value)
            elif isinstance(sub, ast.AugAssign) \
                    and isinstance(sub.target, ast.Name):
                frame.reaching.setdefault(
                    sub.target.id, []).append(sub.value)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and sub is not fn.node:
                frame.fndefs[sub.name] = sub
        return frame

    def _callee_frame(self, callee: FunctionInfo,
                      module: ModuleInfo) -> _Frame:
        frame = _Frame(fn=callee, module=module)
        for sub in ast.walk(callee.node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)) \
                    and getattr(sub, "value", None) is not None:
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                for t in targets:
                    for name in _target_names(t):
                        frame.reaching.setdefault(
                            name, []).append(sub.value)
            elif isinstance(sub, ast.AugAssign) \
                    and isinstance(sub.target, ast.Name):
                frame.reaching.setdefault(
                    sub.target.id, []).append(sub.value)
        return frame

    # -- statements -------------------------------------------------------

    def _stmt(self, stmt: ast.stmt, frame: _Frame, in_task: bool) -> None:
        if isinstance(stmt, ast.With):
            if not in_task and self._is_task_with(stmt):
                for item in stmt.items:
                    if item.optional_vars is not None:
                        frame.local |= _target_names(item.optional_vars)
                for sub in stmt.body:
                    self._stmt(sub, frame, in_task=True)
                return
            for item in stmt.items:
                self._expr(item.context_expr, frame, in_task)
                if item.optional_vars is not None:
                    frame.local |= _target_names(item.optional_vars)
            for sub in stmt.body:
                self._stmt(sub, frame, in_task)
        elif isinstance(stmt, ast.For):
            self._expr(stmt.iter, frame, in_task)
            names = _target_names(stmt.target)
            if not in_task and self._contains_task(stmt):
                added = names - frame.basis
                frame.basis |= names
                for sub in stmt.body + stmt.orelse:
                    self._stmt(sub, frame, in_task)
                frame.basis -= added
                frame.local |= names
            else:
                frame.local |= names
                for sub in stmt.body + stmt.orelse:
                    self._stmt(sub, frame, in_task)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assign(stmt, frame, in_task)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, frame, in_task)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, frame, in_task)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub, frame, in_task)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, frame, in_task)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub, frame, in_task)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(sub, frame, in_task)
            for handler in stmt.handlers:
                if handler.name:
                    frame.local.add(handler.name)
                for sub in handler.body:
                    self._stmt(sub, frame, in_task)
        elif isinstance(stmt, ast.Return):
            self._expr(stmt.value, frame, in_task)
        elif isinstance(stmt, ast.Raise):
            self._expr(stmt.exc, frame, in_task)
            self._expr(stmt.cause, frame, in_task)
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.test, frame, in_task)
            self._expr(stmt.msg, frame, in_task)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            frame.fndefs[stmt.name] = stmt
            frame.local.add(stmt.name)
        # Pass/Break/Continue/Global/Nonlocal/Import/Delete: no effects

    def _assign(self, stmt: ast.stmt, frame: _Frame, in_task: bool) -> None:
        value = getattr(stmt, "value", None)
        if value is not None:
            self._expr(value, frame, in_task)
        aug = isinstance(stmt, ast.AugAssign)
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            self._assign_target(target, value, aug, frame, in_task)

    def _assign_target(self, target: ast.expr, value: ast.expr | None,
                       aug: bool, frame: _Frame, in_task: bool) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if aug:
                root = self._name_root(name, frame)
                if root is not None:
                    self._record(root, frame, target, write=True,
                                 disjoint=False, in_task=in_task)
                return
            self._bind_name(name, value, frame)
        elif isinstance(target, ast.Subscript):
            self._expr(target.slice, frame, in_task)
            self._expr(target.value, frame, in_task)
            root = self._expr_root(target.value, frame)
            if root is not None:
                disjoint = in_task and \
                    self._index_disjoint(target.slice, frame)
                self._record(root, frame, target, write=True,
                             disjoint=disjoint, in_task=in_task)
                if aug:
                    self._record(root, frame, target, write=False,
                                 disjoint=disjoint, in_task=in_task)
        elif isinstance(target, ast.Attribute):
            root = self._expr_root(target.value, frame)
            if root is not None:
                derived = Root(root.identity + (target.attr,), CLS_TOP)
                self._record(derived, frame, target, write=True,
                             disjoint=False, in_task=in_task)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None, aug, frame, in_task)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, None, aug, frame, in_task)

    def _bind_name(self, name: str, value: ast.expr | None,
                   frame: _Frame) -> None:
        frame.env.pop(name, None)
        frame.basis.discard(name)
        frame.local.discard(name)
        frame.callables.pop(name, None)
        if isinstance(value, ast.Name):
            src = value.id
            if src in frame.callables:
                frame.callables[name] = frame.callables[src]
            elif src in frame.fndefs:
                frame.callables[name] = ("closure", frame.fndefs[src], frame)
            elif src in frame.basis:
                frame.basis.add(name)
            elif src in frame.env and src not in frame.local:
                frame.env[name] = frame.env[src]
            else:
                frame.local.add(name)
            return
        if isinstance(value, ast.Lambda):
            frame.fndefs[name] = value
            frame.local.add(name)
            return
        if value is not None and self._is_basis_pure(value, frame):
            frame.basis.add(name)
            return
        frame.local.add(name)

    # -- expressions ------------------------------------------------------

    def _expr(self, expr: ast.expr | None, frame: _Frame,
              in_task: bool) -> None:
        if expr is None or isinstance(expr, (ast.Constant, ast.Name)):
            return
        if isinstance(expr, ast.Call):
            self._call(expr, frame, in_task)
            return
        if isinstance(expr, ast.Subscript):
            self._expr(expr.value, frame, in_task)
            self._expr(expr.slice, frame, in_task)
            root = self._expr_root(expr.value, frame)
            if root is not None:
                disjoint = in_task and \
                    self._index_disjoint(expr.slice, frame)
                self._record(root, frame, expr, write=False,
                             disjoint=disjoint, in_task=in_task)
            return
        if isinstance(expr, (ast.Lambda,)):
            return  # walked when invoked through a callable binding
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in expr.generators:
                self._expr(gen.iter, frame, in_task)
                frame.local |= _target_names(gen.target)
                for cond in gen.ifs:
                    self._expr(cond, frame, in_task)
            if isinstance(expr, ast.DictComp):
                self._expr(expr.key, frame, in_task)
                self._expr(expr.value, frame, in_task)
            else:
                self._expr(expr.elt, frame, in_task)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child, frame, in_task)

    def _call(self, call: ast.Call, frame: _Frame, in_task: bool) -> None:
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                self._expr(arg.value, frame, in_task)
            elif not isinstance(arg, ast.Lambda):
                self._expr(arg, frame, in_task)
        for kw in call.keywords:
            if not isinstance(kw.value, ast.Lambda):
                self._expr(kw.value, frame, in_task)

        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in TRACKER_CHARGE_METHODS:
                return
            chain = _attr_chain(func)
            if chain:
                if any(part in _EXEMPT_RECEIVERS or "detector" in part
                       for part in chain[:-1]):
                    return
                if chain[0] in frame.module.numpy_aliases:
                    if chain[-2:] == ["add", "at"] and len(call.args) >= 2:
                        root = self._expr_root(call.args[0], frame)
                        if root is not None:
                            disjoint = in_task and self._index_disjoint(
                                call.args[1], frame)
                            self._record(root, frame, call, write=True,
                                         disjoint=disjoint, in_task=in_task)
                    return
            recv = _receiver_root(func.value)
            if recv is not None and self._region.alias is not None \
                    and recv == self._region.alias:
                return

        if isinstance(func, ast.Name):
            binding = frame.callables.get(func.id)
            if binding is None and func.id in frame.fndefs:
                binding = ("closure", frame.fndefs[func.id], frame)
            if binding is not None:
                self._invoke_binding(binding, call, frame, in_task)
                return

        walker = self._walker_for(frame)
        display, targets = walker._resolve(func)
        if targets:
            for tq in sorted(targets):
                callee = self.project.functions.get(tq)
                if callee is None:
                    continue
                self._enter(callee, call, func, display, frame, in_task)
            return
        if isinstance(func, ast.Attribute) \
                and func.attr in _MUTATOR_METHODS:
            root = self._expr_root(func.value, frame)
            if root is not None:
                self._record(root, frame, call, write=True,
                             disjoint=False, in_task=in_task)

    def _enter(self, callee: FunctionInfo, call: ast.Call,
               func: ast.expr, display: str, frame: _Frame,
               in_task: bool) -> None:
        """Resolve one candidate callee: mediation short-circuits first,
        then a full interprocedural descent."""
        if callee.module.endswith(".racecheck"):
            return  # the dynamic layer itself: mediation, not an effect
        recv_root = None
        if isinstance(func, ast.Attribute):
            recv_root = self._expr_root(func.value, frame)
        if self._is_accumulator(callee):
            # Atomic accumulation: race-free by construction, but PAR010
            # still polices operand determinism at every call site.
            self._check_par010(call, display, frame)
            if recv_root is not None:
                self._record(recv_root, frame, call, write=True,
                             disjoint=False, in_task=in_task,
                             mediated=True)
            return
        if self._is_instrumented(callee):
            # The method logs to the race detector: the dynamic layer
            # owns these addresses (static/dynamic division of labor).
            if recv_root is not None:
                self._record(recv_root, frame, call, write=True,
                             disjoint=False, in_task=in_task,
                             mediated=True)
            return
        self._dispatch(callee, call, func, frame, in_task)

    def _dispatch(self, callee: FunctionInfo, call: ast.Call,
                  func: ast.expr, frame: _Frame, in_task: bool) -> None:
        if callee.qualname in self._stack \
                or len(self._stack) >= _MAX_DEPTH:
            return
        cmodule = self.project.modules.get(callee.module)
        if cmodule is None:
            return
        cframe = self._callee_frame(callee, cmodule)
        params = list(callee.params)
        if isinstance(func, ast.Attribute) and callee.class_name \
                and params and params[0] in ("self", "cls"):
            recv_root = self._expr_root(func.value, frame)
            if recv_root is not None:
                cframe.env[params[0]] = recv_root
            else:
                cframe.local.add(params[0])
            params = params[1:]
        pairs = list(zip(params, call.args))
        pairs += [(kw.arg, kw.value) for kw in call.keywords
                  if kw.arg and kw.arg in callee.params]
        for pname, arg in pairs:
            self._bind_param(cframe, pname, arg, frame)
        for p in callee.params:
            if p not in cframe.env and p not in cframe.basis \
                    and p not in cframe.local and p not in cframe.callables:
                cframe.local.add(p)
        self._stack.append(callee.qualname)
        for stmt in callee.node.body:
            self._stmt(stmt, cframe, in_task)
        self._stack.pop()

    def _bind_param(self, cframe: _Frame, pname: str, arg: ast.expr,
                    frame: _Frame) -> None:
        cframe.env.pop(pname, None)
        cframe.basis.discard(pname)
        cframe.local.discard(pname)
        if isinstance(arg, ast.Starred):
            cframe.local.add(pname)
            return
        if isinstance(arg, ast.Name):
            name = arg.id
            if name in frame.callables:
                cframe.callables[pname] = frame.callables[name]
            elif name in frame.fndefs:
                cframe.callables[pname] = ("closure", frame.fndefs[name],
                                           frame)
            elif name in frame.basis:
                cframe.basis.add(pname)
            elif name in frame.local:
                cframe.local.add(pname)
            elif name in frame.env:
                cframe.env[pname] = frame.env[name]
            else:
                target = self._module_callable(name, frame)
                if target is not None:
                    cframe.callables[pname] = ("fn", target)
                else:
                    cframe.local.add(pname)
            return
        if isinstance(arg, ast.Lambda):
            cframe.callables[pname] = ("closure", arg, frame)
            return
        if isinstance(arg, ast.Attribute):
            root = self._expr_root(arg, frame)
            if root is not None:
                cframe.env[pname] = root
            else:
                cframe.local.add(pname)
            return
        if self._is_basis_pure(arg, frame):
            cframe.basis.add(pname)
            return
        cframe.local.add(pname)

    def _invoke_binding(self, binding: tuple, call: ast.Call,
                        frame: _Frame, in_task: bool) -> None:
        if binding[0] == "fn":
            callee = binding[1]
            self._enter(callee, call, call.func, callee.name, frame,
                        in_task)
            return
        _, node, def_frame = binding
        key = f"{def_frame.fn.qualname}:<def@{node.lineno}>"
        if key in self._stack or len(self._stack) >= _MAX_DEPTH:
            return
        cframe = _Frame(
            fn=def_frame.fn, module=def_frame.module,
            env=dict(def_frame.env), basis=set(def_frame.basis),
            local=set(def_frame.local), fndefs=dict(def_frame.fndefs),
            callables=dict(def_frame.callables),
            reaching=def_frame.reaching)
        args = node.args
        params = [a.arg for a in
                  args.posonlyargs + args.args + args.kwonlyargs]
        pairs = list(zip(params, call.args))
        pairs += [(kw.arg, kw.value) for kw in call.keywords
                  if kw.arg and kw.arg in params]
        bound = set()
        for pname, arg in pairs:
            bound.add(pname)
            self._bind_param(cframe, pname, arg, frame)
        for p in params:
            if p not in bound:
                cframe.env.pop(p, None)
                cframe.basis.discard(p)
                cframe.local.add(p)
        self._stack.append(key)
        if isinstance(node, ast.Lambda):
            self._expr(node.body, cframe, in_task)
        else:
            for stmt in node.body:
                self._stmt(stmt, cframe, in_task)
        self._stack.pop()

    # -- roots, bases, proofs ---------------------------------------------

    def _name_root(self, name: str, frame: _Frame) -> Root | None:
        if name in frame.local or name in frame.basis \
                or name in frame.callables or name in frame.fndefs:
            return None
        root = frame.env.get(name)
        if root is not None:
            return root
        if name in _EXEMPT_RECEIVERS or name in _BUILTIN_NAMES:
            return None
        if name in frame.module.scope or name in frame.module.imports:
            return None  # classes / functions / imported modules
        return Root((frame.module.name, name), CLS_TOP)

    def _expr_root(self, expr: ast.expr, frame: _Frame) -> Root | None:
        attrs: list[str] = []
        while isinstance(expr, ast.Attribute):
            attrs.append(expr.attr)
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return None
        root = self._name_root(expr.id, frame)
        if root is None:
            return None
        if attrs:
            attrs.reverse()
            if any("detector" in a or a == "tracker" for a in attrs):
                return None
            return Root(root.identity + tuple(attrs), CLS_TOP)
        return root

    def _scan_index(self, expr: ast.expr) -> tuple[bool, set[str]]:
        """(provable, names): the expression mentions only names, constants,
        arithmetic, and pure wrappers --- no attributes, subscripts, or
        arbitrary calls."""
        names: set[str] = set()
        wrapper_funcs: set[int] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) \
                        and node.func.id in _PURE_WRAPPERS:
                    wrapper_funcs.add(id(node.func))
                else:
                    return False, names
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                return False, names
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and id(node) not in wrapper_funcs:
                names.add(node.id)
        return True, names

    def _index_disjoint(self, index: ast.expr, frame: _Frame) -> bool:
        parts = index.elts if isinstance(index, ast.Tuple) else [index]
        names: set[str] = set()
        for part in parts:
            if isinstance(part, ast.Slice):
                if part.lower is None and part.upper is None:
                    return False  # full slice: every task touches all cells
                for bound in (part.lower, part.upper, part.step):
                    if bound is None:
                        continue
                    ok, sub = self._scan_index(bound)
                    if not ok:
                        return False
                    names |= sub
            else:
                ok, sub = self._scan_index(part)
                if not ok:
                    return False
                names |= sub
        if not names:
            return False  # constant index: all tasks hit the same cell
        return names <= frame.basis

    def _is_basis_pure(self, expr: ast.expr, frame: _Frame) -> bool:
        ok, names = self._scan_index(expr)
        return ok and bool(names) and names <= frame.basis

    # -- recording and rules ----------------------------------------------

    def _record(self, root: Root, frame: _Frame, node: ast.AST,
                write: bool, disjoint: bool, in_task: bool,
                mediated: bool = False) -> None:
        access = Access(
            identity=root.identity, write=write,
            mediated=mediated or root.cls == CLS_ATOMIC,
            disjoint=disjoint, path=frame.module.path,
            lineno=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), label=root.label)
        (self._task_sink if in_task else self._serial_sink).append(access)

    def _par009(self, region: Region, accesses: list[Access]) -> None:
        by_identity: dict[tuple, list[Access]] = {}
        for access in accesses:
            by_identity.setdefault(access.identity, []).append(access)
        for identity in sorted(by_identity, key=repr):
            accs = by_identity[identity]
            plain_writes = [a for a in accs if a.write and not a.mediated]
            if not plain_writes:
                continue
            bad = [a for a in plain_writes if not a.disjoint]
            if bad:
                a = min(bad, key=lambda x: (x.path, x.lineno, x.col))
                self._emit_009(region, a,
                               f"task-side write to shared {a.label!r} is "
                               f"not atomic, not detector-instrumented, and "
                               f"not provably task-disjoint; mediate it with "
                               f"an atomic, privatize it, or route it "
                               f"through a per-task buffer")
                continue
            reads = [a for a in accs
                     if not a.write and not a.mediated and not a.disjoint]
            if reads:
                a = min(reads, key=lambda x: (x.path, x.lineno, x.col))
                self._emit_009(region, a,
                               f"task-side read of shared {a.label!r} uses "
                               f"an index that is not a pure function of "
                               f"the task variables while tasks also write "
                               f"it; the read can observe another task's "
                               f"write")

    def _emit_009(self, region: Region, access: Access,
                  message: str) -> None:
        key = (access.path, access.lineno, access.col, access.identity)
        if key in self._seen_009:
            return
        self._seen_009.add(key)
        self.findings.append(Finding(
            "PAR009", access.path, access.lineno, access.col,
            f"potential race in parallel region of "
            f"{region.fn.name!r}: {message}"))

    def _check_par010(self, call: ast.Call, display: str,
                      frame: _Frame) -> None:
        operands = list(call.args) + [kw.value for kw in call.keywords]
        for operand in operands:
            why = self._order_dependent(operand, frame)
            if why is None:
                continue
            key = (frame.module.path, call.lineno, call.col_offset)
            if key in self._seen_010:
                return
            self._seen_010.add(key)
            self.findings.append(Finding(
                "PAR010", frame.module.path, call.lineno,
                call.col_offset,
                f"atomic accumulation {display}() in a parallel region "
                f"takes an order-dependent operand ({why}); float "
                f"addition is not associative, so the accumulated total "
                f"depends on task interleaving --- use integral deltas, "
                f"a deterministic reduction, or re-round downstream and "
                f"waive with a justification"))
            return

    @staticmethod
    def _expr_order_dependent(expr: ast.expr) -> str | None:
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                return "contains a true division"
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, float) \
                    and node.value != int(node.value):
                return "contains a non-integral float constant"
        return None

    def _order_dependent(self, expr: ast.expr,
                         frame: _Frame) -> str | None:
        why = self._expr_order_dependent(expr)
        if why is not None:
            return why
        for node in ast.walk(expr):
            if not isinstance(node, ast.Name):
                continue
            for definition in frame.reaching.get(node.id, ()):
                why = self._expr_order_dependent(definition)
                if why is not None:
                    computed = why.replace("contains", "is computed with", 1)
                    return f"operand {node.id!r} {computed}"
        return None

    # -- helpers ----------------------------------------------------------

    def _walker_for(self, frame: _Frame) -> _FunctionWalker:
        walker = self._walkers.get(frame.fn.qualname)
        if walker is None:
            walker = _FunctionWalker(self.project, frame.module, frame.fn)
            self._walkers[frame.fn.qualname] = walker
        return walker

    def _is_task_with(self, stmt: ast.With) -> bool:
        for item in stmt.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call) \
                    and isinstance(expr.func, ast.Attribute) \
                    and expr.func.attr == "task":
                recv = _receiver_root(expr.func.value)
                if self._region.alias is None \
                        or recv in (None, self._region.alias):
                    return True
        return False

    def _contains_task(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.With) and self._is_task_with(sub):
                return True
        return False

    def _is_instrumented(self, fn: FunctionInfo) -> bool:
        cached = self._instrumented.get(fn.qualname)
        if cached is None:
            cached = False
            for sub in ast.walk(fn.node):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr == "log":
                    chain = _attr_chain(sub.func)
                    if chain and any("detector" in part
                                     for part in chain[:-1]):
                        cached = True
                        break
            self._instrumented[fn.qualname] = cached
        return cached

    def _is_accumulator(self, fn: FunctionInfo) -> bool:
        cached = self._accumulator.get(fn.qualname)
        if cached is None:
            cached = self._compute_accumulator(fn)
            self._accumulator[fn.qualname] = cached
        return cached

    @staticmethod
    def _compute_accumulator(fn: FunctionInfo) -> bool:
        if "compare_and_swap" in fn.name:
            return False
        if fn.name == "fetch_add":
            return True
        if not any(c.attr == "add_atomic" for c in fn.charge_calls):
            return False
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.AugAssign) \
                    and isinstance(sub.target, ast.Subscript) \
                    and isinstance(sub.op, (ast.Add, ast.Sub)):
                return True
            if isinstance(sub, ast.Call):
                chain = _attr_chain(sub.func)
                if chain and len(chain) >= 3 and chain[-2:] == ["add", "at"]:
                    return True
        return False


# --------------------------------------------------------------------------
# PAR011: coverage stamps


def _collect_stamps(tests_dir: Path,
                    project: Project) -> tuple[list[str], list[Finding]]:
    stamps: list[str] = []
    findings: list[Finding] = []
    for path in sorted(tests_dir.glob("test_*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except (OSError, SyntaxError):
            continue
        for stmt in tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "RACECHECK_COVERS"):
                continue
            value = stmt.value
            if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
                elements = value.elts
            elif isinstance(value, ast.Dict):
                elements = [k for k in value.keys if k is not None]
            else:
                elements = []
            for element in elements:
                if not (isinstance(element, ast.Constant)
                        and isinstance(element.value, str)):
                    continue
                qual = element.value
                if qual in project.functions:
                    stamps.append(qual)
                else:
                    findings.append(Finding(
                        "PAR011", str(path), element.lineno,
                        element.col_offset,
                        f"RACECHECK_COVERS names {qual!r}, which is not a "
                        f"known function under the analyzed root; fix the "
                        f"stamp or remove it"))
    return stamps, findings


def _coverage(project: Project, stamps: list[str]) -> set[str]:
    """Functions reachable from the stamped entry points --- without
    crossing from a non-engine module into an engine module, because the
    engines fall back to the scalar oracle whenever a race detector is
    attached and must therefore be stamped directly."""
    covered = set(stamps)
    work = sorted(covered)
    while work:
        qual = work.pop()
        fn = project.functions.get(qual)
        if fn is None:
            continue
        src_module = project.modules.get(fn.module)
        src_engine = src_module is not None and is_engine_module(src_module)
        for site in fn.call_sites:
            for target in site.targets:
                if target in covered:
                    continue
                callee = project.functions.get(target)
                if callee is None:
                    continue
                callee_module = project.modules.get(callee.module)
                if callee_module is None:
                    continue
                if not src_engine and is_engine_module(callee_module):
                    continue
                covered.add(target)
                work.append(target)
    return covered


# --------------------------------------------------------------------------
# entry point


def analyze_effects(project: Project,
                    tests_dir: str | Path | None = None) -> EffectsReport:
    """Run the parallel-effect analysis over a built project.

    With *tests_dir* (a directory of ``test_*.py`` files), PAR011
    cross-references the region registry against ``RACECHECK_COVERS``
    stamps; without it, only PAR009/PAR010 run.
    """
    analyzer = _EffectAnalyzer(project)
    analyzer.run()
    findings = list(analyzer.findings)
    stamp_findings: list[Finding] = []
    if tests_dir is not None:
        tests_dir = Path(tests_dir)
        stamps, stamp_findings = _collect_stamps(tests_dir, project)
        covered = _coverage(project, stamps)
        for region in analyzer.regions:
            region.covered = region.qualname in covered
            if region.has_shared_writes and not region.covered:
                findings.append(Finding(
                    "PAR011", region.path, region.lineno, 0,
                    f"parallel region in {region.name!r} performs shared "
                    f"writes but no RACECHECK_COVERS stamp in "
                    f"{tests_dir.name}/test_*.py reaches it; stamp a race "
                    f"test with {region.qualname!r} (engine kernels must "
                    f"be stamped directly --- they fall back to the "
                    f"scalar oracle under a race detector)"))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return EffectsReport(findings=findings, regions=analyzer.regions,
                         stamp_findings=stamp_findings)
