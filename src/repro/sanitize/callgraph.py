"""Project-wide call graph over the ``repro`` package.

This is the substrate of the interprocedural charge-flow analyzer
(:mod:`repro.sanitize.chargeflow`).  It parses every module under a
package root, records one :class:`FunctionInfo` per *top-level* function
or method --- nested ``def``\\ s and ``lambda``\\ s are folded into their
enclosing top-level function, because a closure's charges execute (and
must be accounted) as part of the enclosing kernel --- and resolves call
sites to candidate callees:

* bare names through the module scope (local functions, classes,
  ``from x import y`` aliases),
* ``self.method(...)`` through the defining class (falling back to a
  union over all project classes),
* ``obj.method(...)`` where ``obj``'s type is unknown: a *may-call* union
  over every project class that defines ``method`` (sound for the
  may-charge analysis built on top),
* ``module.attr(...)`` through import aliases,
* ``ClassName(...)`` to the class's ``__init__``.

Everything is static and deterministic: files are visited in sorted
order and no hashing of object identities is involved.  An ``overlay``
mapping lets tests analyze mutated sources without touching disk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: The real charge methods of :class:`repro.parallel.runtime.CostTracker`.
TRACKER_CHARGE_METHODS = frozenset({
    "add_work", "add_work_int", "add_work_frac_repeated",
    "add_work_sequence", "add_span", "add_span_sequence",
    "task_span", "add_round", "add_atomic", "add_contention", "add_cliques",
    "add_probes", "add_comm", "access", "access_sequence",
})

#: Aliases that charge the same counter; summaries compare normalized names.
NORMALIZED_METHOD = {
    "add_work_int": "add_work",
    "add_work_frac_repeated": "add_work",
    "add_work_sequence": "add_work",
    "add_span_sequence": "add_span",
    "task_span": "add_span",
    "access_sequence": "access",
}

#: Marker effect for a tracker handed to code outside the project (assumed
#: to charge *something*; excluded from parity-set comparisons).
EXTERNAL_EFFECT = "@external"

#: NumPy entry points that do O(n) bulk work in one call (PAR005: such a
#: call in an engine kernel with no charge anywhere in the kernel means
#: the simulated machine believes the work is free).
NUMPY_BULK_OPS = frozenset({
    "add", "subtract", "maximum", "minimum", "logical_and", "logical_or",
    "logical_not", "where", "nonzero", "flatnonzero", "argsort", "sort",
    "lexsort", "searchsorted", "unique", "bincount", "cumsum", "cumprod",
    "repeat", "take", "concatenate", "split", "diff", "isin", "in1d",
    "clip", "count_nonzero", "full", "zeros", "ones", "empty", "arange",
    "zeros_like", "ones_like", "empty_like", "full_like", "copyto",
    "putmask", "choose", "compress", "extract", "packbits", "unpackbits",
})


#: Method names shared with the builtin containers/str/bytes (``append``,
#: ``update``, ``get``, all dunders, ...).  The unknown-receiver may-call
#: union is NOT applied to these: ``self._labels.append(...)`` almost
#: always means a list, and unioning it with a project class's ``append``
#: would smear that class's charges over the whole graph.
_CONTAINER_METHODS = frozenset(
    dir(list) + dir(dict) + dir(set) + dir(tuple) + dir(str) + dir(bytes))

#: Builtins that never charge a tracker handed to them (``getattr(tracker,
#: "race_detector", None)`` is introspection, not an escape to unknown
#: charging code).
_NEUTRAL_BUILTINS = frozenset({
    "getattr", "hasattr", "setattr", "delattr", "isinstance", "issubclass",
    "len", "repr", "str", "int", "float", "bool", "print", "id", "type",
    "max", "min", "sum", "abs", "sorted", "reversed", "enumerate", "zip",
    "map", "filter", "iter", "next", "vars", "format", "list", "dict",
    "set", "tuple", "frozenset",
})


def normalize_method(attr: str) -> str:
    return NORMALIZED_METHOD.get(attr, attr)


@dataclass(frozen=True)
class ChargeCall:
    """A lexical ``<recv>.<charge-method>(...)`` call inside a function."""

    attr: str           # the raw method name (e.g. ``add_work_int``)
    norm: str           # normalized counter name (e.g. ``add_work``)
    lineno: int
    col: int
    conditional: bool   # receiver rooted at the function's ``tracker`` param


@dataclass
class CallSite:
    """One call expression, resolved to zero or more project callees."""

    lineno: int
    col: int
    callee_display: str          # bare name for messages / fingerprints
    targets: tuple[str, ...]     # candidate callee qualnames (may-call)
    passes_tracker: bool         # a tracker is among the arguments
    pass_conditional: bool       # the passed tracker is the caller's param
    #: set post-fixpoint by the summary layer: this site provably charges
    charges: bool = False
    charges_workspan: bool = False


@dataclass
class FunctionInfo:
    """One top-level function or method, nested defs folded in."""

    qualname: str
    module: str
    name: str
    node: ast.AST
    path: str
    lineno: int
    end_lineno: int
    class_name: str | None = None
    params: tuple[str, ...] = ()
    mentions_tracker: bool = False
    charge_calls: list[ChargeCall] = field(default_factory=list)
    call_sites: list[CallSite] = field(default_factory=list)
    bulk_ops: list[tuple[str, int, int]] = field(default_factory=list)
    #: (start, end) line spans of ``with *.phase(...)`` / ``*.parallel(...)``
    phase_spans: list[tuple[int, int]] = field(default_factory=list)
    #: the function opens a literal ``.phase(...)`` (not just a parallel
    #: region) --- only such orchestrators are subject to PAR008
    has_phase: bool = False
    #: line spans of nested ``def`` / ``lambda`` bodies (definition points,
    #: not execution points --- excluded from PAR008's lexical scan)
    nested_spans: list[tuple[int, int]] = field(default_factory=list)

    @property
    def has_tracker_param(self) -> bool:
        return "tracker" in self.params

    @property
    def opens_phase(self) -> bool:
        return self.has_phase


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    source: str
    #: local name -> dotted import target (``np`` -> ``numpy``)
    imports: dict[str, str] = field(default_factory=dict)
    #: local name -> project qualname (functions and classes of this module)
    scope: dict[str, str] = field(default_factory=dict)
    numpy_aliases: set[str] = field(default_factory=set)
    #: module-level dict literals of names: ``AGGREGATORS = {"dense":
    #: DenseAggregator, ...}`` --- used to resolve ``TABLE[key](...)``
    dispatch: dict[str, list[str]] = field(default_factory=dict)


@dataclass
class Project:
    package: str
    root: str
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class qualname -> {method name -> function qualname}
    classes: dict[str, dict[str, str]] = field(default_factory=dict)
    #: bare method name -> sorted tuple of function qualnames (all classes)
    methods_by_name: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def functions_of_module(self, module: str) -> list[FunctionInfo]:
        return [fn for fn in self.functions.values() if fn.module == module]


def _module_name(file: Path, root: Path, package: str) -> str:
    rel = file.relative_to(root)
    parts = (package,) + rel.with_suffix("").parts
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _receiver_root(expr: ast.expr) -> str | None:
    while isinstance(expr, ast.Attribute):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _attr_chain(expr: ast.expr) -> list[str] | None:
    """``np.add.at`` -> ``["np", "add", "at"]`` (None if not a pure chain)."""
    chain: list[str] = []
    while isinstance(expr, ast.Attribute):
        chain.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        chain.append(expr.id)
        return list(reversed(chain))
    return None


def _passes_tracker(call: ast.Call) -> tuple[bool, bool]:
    """(passes a tracker, the passed tracker is the bare name ``tracker``)."""
    passes = conditional = False
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == "tracker":
            passes = True
            conditional = True
        elif isinstance(arg, ast.Attribute) and arg.attr == "tracker":
            passes = True
    for kw in call.keywords:
        if kw.arg == "tracker" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None):
            passes = True
            if isinstance(kw.value, ast.Name) and kw.value.id == "tracker":
                conditional = True
    return passes, conditional


def _mentions_tracker(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "tracker":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "tracker":
            return True
        if isinstance(sub, ast.arg) and sub.arg == "tracker":
            return True
    return False


class _FunctionWalker:
    """Extracts a :class:`FunctionInfo` from one top-level def (with all
    nested defs / lambdas folded in)."""

    def __init__(self, project: Project, module: ModuleInfo,
                 fn: FunctionInfo) -> None:
        self.project = project
        self.module = module
        self.fn = fn

    def walk(self) -> None:
        node = self.fn.node
        args = node.args
        self.fn.params = tuple(
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs))
        self.fn.mentions_tracker = _mentions_tracker(node)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)) and sub is not node:
                self.fn.nested_spans.append(
                    (sub.lineno, sub.end_lineno or sub.lineno))
            elif isinstance(sub, ast.With):
                for item in sub.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call) \
                            and isinstance(expr.func, ast.Attribute) \
                            and expr.func.attr in ("phase", "parallel"):
                        self.fn.phase_spans.append(
                            (sub.lineno, sub.end_lineno or sub.lineno))
                        if expr.func.attr == "phase":
                            self.fn.has_phase = True
                        break
            elif isinstance(sub, ast.Call):
                self._visit_call(sub)

    def _visit_call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) \
                and func.attr in TRACKER_CHARGE_METHODS:
            root = _receiver_root(func.value)
            conditional = (root == "tracker"
                           and self.fn.has_tracker_param
                           and not isinstance(func.value, ast.Attribute))
            self.fn.charge_calls.append(ChargeCall(
                attr=func.attr, norm=normalize_method(func.attr),
                lineno=call.lineno, col=call.col_offset,
                conditional=conditional))
            return
        passes, pass_conditional = _passes_tracker(call)
        display, targets = self._resolve(func)
        if passes and not targets and isinstance(func, ast.Name) \
                and func.id in _NEUTRAL_BUILTINS \
                and func.id not in self.module.scope:
            passes = False
        if targets or passes:
            self.fn.call_sites.append(CallSite(
                lineno=call.lineno, col=call.col_offset,
                callee_display=display, targets=tuple(sorted(targets)),
                passes_tracker=passes, pass_conditional=pass_conditional))
        self._maybe_bulk_op(call)

    def _maybe_bulk_op(self, call: ast.Call) -> None:
        chain = _attr_chain(call.func)
        if not chain or chain[0] not in self.module.numpy_aliases:
            return
        if len(chain) >= 2 and chain[1] in NUMPY_BULK_OPS:
            self.fn.bulk_ops.append(
                (".".join(chain), call.lineno, call.col_offset))

    # -- callee resolution --------------------------------------------------

    def _resolve(self, func: ast.expr) -> tuple[str, list[str]]:
        if isinstance(func, ast.Name):
            return func.id, self._resolve_scoped(self.module, func.id)
        if isinstance(func, ast.Attribute):
            attr = func.attr
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self" and self.fn.class_name is not None:
                    cls = f"{self.fn.module}.{self.fn.class_name}"
                    method = self.project.classes.get(cls, {}).get(attr)
                    if method is not None:
                        return attr, [method]
                    if attr in _CONTAINER_METHODS:
                        return attr, []
                    return attr, list(
                        self.project.methods_by_name.get(attr, ()))
                scoped = self.module.scope.get(value.id)
                if scoped is not None and scoped in self.project.classes:
                    method = self.project.classes[scoped].get(attr)
                    return attr, [method] if method else []
                target_module = self._imported_module(value.id)
                if target_module is not None:
                    return attr, self._resolve_scoped(target_module, attr)
                if value.id in self.module.numpy_aliases:
                    return attr, []
            # unknown receiver type: may-call union over project classes
            # (except names the builtin containers also have --- those are
            # overwhelmingly list/dict/set operations)
            if attr in _CONTAINER_METHODS:
                return attr, []
            return attr, list(self.project.methods_by_name.get(attr, ()))
        if isinstance(func, ast.Subscript) \
                and isinstance(func.value, ast.Name):
            # dispatch table: TABLE[key](...) where TABLE is a module-level
            # dict literal of class/function names
            values = self.module.dispatch.get(func.value.id)
            if values is not None:
                targets: list[str] = []
                for name in values:
                    targets.extend(self._resolve_scoped(self.module, name))
                return func.value.id, targets
        return "<expr>", []

    def _imported_module(self, name: str) -> ModuleInfo | None:
        dotted = self.module.imports.get(name)
        if dotted is None:
            return None
        return self.project.modules.get(dotted)

    def _resolve_scoped(self, module: ModuleInfo, name: str) -> list[str]:
        qual = module.scope.get(name)
        if qual is None:
            dotted = module.imports.get(name)
            if dotted is not None:
                # ``from x import y`` where y is itself a module
                if dotted in self.project.modules:
                    return []
                head, _, tail = dotted.rpartition(".")
                source = self.project.modules.get(head)
                if source is not None:
                    qual = source.scope.get(tail)
        if qual is None:
            return []
        if qual in self.project.classes:
            # A class without an explicit __init__ (dataclass, plain
            # record) is a resolved, charge-free constructor --- the
            # synthetic target keeps the site from being treated as a
            # tracker handed to unknown external code.
            init = self.project.classes[qual].get("__init__")
            return [init if init else f"{qual}.__init__"]
        if qual in self.project.functions:
            return [qual]
        return []


def _collect_imports(module: ModuleInfo, package: str) -> None:
    pkg_parts = module.name.split(".")
    # the package a relative import is resolved against
    if module.path.endswith("__init__.py"):
        base_parts = pkg_parts
    else:
        base_parts = pkg_parts[:-1]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.partition(".")[0]
                module.imports[bound] = target
                if target == "numpy" or alias.name == "numpy":
                    module.numpy_aliases.add(bound)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                stem = base_parts[:len(base_parts) - (node.level - 1)]
            else:
                stem = []
            prefix = ".".join(stem + ([node.module] if node.module else []))
            if not node.level:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports[bound] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name)
                if module.imports[bound] == "numpy":
                    module.numpy_aliases.add(bound)


def _collect_definitions(project: Project, module: ModuleInfo) -> None:
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Dict):
            names = [v.id for v in stmt.value.values
                     if isinstance(v, ast.Name)]
            if names and len(names) == len(stmt.value.values):
                module.dispatch[stmt.targets[0].id] = names
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module.name}.{stmt.name}"
            module.scope[stmt.name] = qual
            project.functions[qual] = FunctionInfo(
                qualname=qual, module=module.name, name=stmt.name,
                node=stmt, path=module.path, lineno=stmt.lineno,
                end_lineno=stmt.end_lineno or stmt.lineno)
        elif isinstance(stmt, ast.ClassDef):
            cls_qual = f"{module.name}.{stmt.name}"
            module.scope[stmt.name] = cls_qual
            methods: dict[str, str] = {}
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{cls_qual}.{sub.name}"
                    methods[sub.name] = qual
                    project.functions[qual] = FunctionInfo(
                        qualname=qual, module=module.name, name=sub.name,
                        node=sub, path=module.path, lineno=sub.lineno,
                        end_lineno=sub.end_lineno or sub.lineno,
                        class_name=stmt.name)
            project.classes[cls_qual] = methods


def _link_scopes(project: Project) -> None:
    """Resolve ``from x import y`` names in each module's scope to project
    qualnames, once all modules are parsed.  Runs to a fixpoint because
    re-export chains (``from .racecheck import x`` in an ``__init__``,
    then ``from ..sanitize import x`` elsewhere) resolve in dependency
    order regardless of file-name order."""
    changed = True
    while changed:
        changed = False
        for module in project.modules.values():
            for bound, dotted in module.imports.items():
                if bound in module.scope:
                    continue
                if dotted in project.modules:
                    continue  # module import; resolved per-attribute
                head, _, tail = dotted.rpartition(".")
                source = project.modules.get(head)
                if source is not None and tail in source.scope:
                    module.scope[bound] = source.scope[tail]
                    changed = True


def build_project(root: str | Path,
                  overlay: dict[str, str] | None = None) -> Project:
    """Parse every ``*.py`` under *root* (a package directory) into a
    :class:`Project`.  *overlay* maps absolute path strings to replacement
    source text, letting tests analyze mutated files without touching
    disk."""
    root = Path(root).resolve()
    package = root.name
    project = Project(package=package, root=str(root))
    overlay = overlay or {}
    for file in sorted(root.rglob("*.py")):
        path = str(file)
        source = overlay.get(path)
        if source is None:
            source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # reported separately by the lexical linter
        name = _module_name(file, root, package)
        project.modules[name] = ModuleInfo(
            name=name, path=path, tree=tree, source=source)
    for module in project.modules.values():
        _collect_imports(module, package)
        _collect_definitions(project, module)
    methods: dict[str, set[str]] = {}
    for cls_methods in project.classes.values():
        for name, qual in cls_methods.items():
            methods.setdefault(name, set()).add(qual)
    project.methods_by_name = {
        name: tuple(sorted(quals)) for name, quals in methods.items()}
    _link_scopes(project)
    for module in project.modules.values():
        for fn in project.functions_of_module(module.name):
            _FunctionWalker(project, module, fn).walk()
    return project
