"""The batch/scalar parity registry (rule PAR007's data source).

The batch engines (:mod:`repro.core.batchpeel`,
:mod:`repro.cliques.batchlist`, and any future ``batch*`` module) carry
a bit-for-bit simulated-cost parity contract against their scalar
oracles.  Each engine module *declares* that contract in a module-level
literal::

    PARLINT_PARITY = {
        "peel_batch": {
            "oracle": "repro.core.decomp._peel_scalar",
            "fingerprint": {"add_round": 1, "task_span": 1, ...},
        },
    }

``oracle`` names the scalar twin whose tracker charges the batch kernel
must reproduce.  ``fingerprint`` is the kernel's *lexical charge
fingerprint*: for every direct charge-method call, the raw method name
with its call-site count, and for every call that forwards the tracker
to a helper, the helper's bare name with its count.  The analyzer
recomputes the fingerprint on every run and demands exact equality, so
deleting (or adding) a single charge call anywhere in a registered
kernel fails the strict lint until a human re-blesses the contract by
editing the declaration.

The declaration must be a pure literal (``ast.literal_eval``): the
analyzer reads it statically, without importing engine code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from .callgraph import (FunctionInfo, ModuleInfo, Project,
                        TRACKER_CHARGE_METHODS)

REGISTRY_NAME = "PARLINT_PARITY"

#: A module whose final component starts with ``batch`` is engine code.
ENGINE_MODULE_RE = re.compile(r"(^|\.)batch\w*$")


@dataclass(frozen=True)
class RegistryEntry:
    kernel: str              # kernel qualname (module + bare name)
    oracle: str              # scalar-oracle qualname
    fingerprint: dict        # raw charge-method / helper name -> count
    module: str
    lineno: int              # of the PARLINT_PARITY declaration


@dataclass(frozen=True)
class RegistryError:
    module: str
    path: str
    lineno: int
    message: str


def is_engine_module(module: ModuleInfo) -> bool:
    if ENGINE_MODULE_RE.search(module.name):
        return True
    return _registry_assign(module) is not None


def _registry_assign(module: ModuleInfo) -> ast.Assign | None:
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == REGISTRY_NAME
                for t in stmt.targets):
            return stmt
    return None


def kernel_fingerprint(fn: FunctionInfo) -> dict[str, int]:
    """The lexical charge fingerprint of one kernel (nested defs folded).

    Keys are raw charge-method names for direct charges and bare helper
    names for tracker-forwarding call sites; values are call-site counts.
    """
    counts: dict[str, int] = {}
    for charge in fn.charge_calls:
        counts[charge.attr] = counts.get(charge.attr, 0) + 1
    for site in fn.call_sites:
        if site.passes_tracker:
            key = site.callee_display
            counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def tracked_kernels(project: Project, summaries: dict,
                    module: ModuleInfo) -> list[FunctionInfo]:
    """The functions of an engine module that participate in cost
    accounting (and therefore must be registered): top-level functions
    that mention a tracker and have a nonempty transitive charge set."""
    kernels = []
    for fn in project.functions_of_module(module.name):
        if fn.class_name is not None:
            continue
        if not fn.mentions_tracker:
            continue
        summary = summaries.get(fn.qualname)
        if summary is None or not summary.charges:
            continue
        kernels.append(fn)
    return sorted(kernels, key=lambda f: f.lineno)


def collect_registry(
        project: Project,
) -> tuple[dict[str, RegistryEntry], list[RegistryError]]:
    """Parse every engine module's ``PARLINT_PARITY`` declaration.

    Returns ``(entries by kernel qualname, declaration errors)``."""
    entries: dict[str, RegistryEntry] = {}
    errors: list[RegistryError] = []
    for module in project.modules.values():
        assign = _registry_assign(module)
        if assign is None:
            continue
        try:
            declared = ast.literal_eval(assign.value)
        except (ValueError, SyntaxError):
            errors.append(RegistryError(
                module.name, module.path, assign.lineno,
                f"{REGISTRY_NAME} must be a pure literal dict "
                f"(ast.literal_eval failed)"))
            continue
        if not isinstance(declared, dict):
            errors.append(RegistryError(
                module.name, module.path, assign.lineno,
                f"{REGISTRY_NAME} must be a dict, got "
                f"{type(declared).__name__}"))
            continue
        for name, entry in sorted(declared.items()):
            if not (isinstance(entry, dict)
                    and isinstance(entry.get("oracle"), str)
                    and isinstance(entry.get("fingerprint"), dict)):
                errors.append(RegistryError(
                    module.name, module.path, assign.lineno,
                    f"registry entry {name!r} needs string 'oracle' and "
                    f"dict 'fingerprint' keys"))
                continue
            entries[f"{module.name}.{name}"] = RegistryEntry(
                kernel=f"{module.name}.{name}", oracle=entry["oracle"],
                fingerprint=dict(entry["fingerprint"]),
                module=module.name, lineno=assign.lineno)
    return entries, errors


def render_registry(project: Project, summaries: dict,
                    module: ModuleInfo) -> str:
    """Pretty-print the declaration the analyzer expects for *module* ---
    the ``--emit-registry`` authoring aid.  The oracle lines are left for
    the human to fill in (or keep, when re-blessing a fingerprint)."""
    existing, _ = collect_registry(project)
    lines = [f"{REGISTRY_NAME} = {{"]
    for fn in tracked_kernels(project, summaries, module):
        entry = existing.get(fn.qualname)
        oracle = entry.oracle if entry else "<scalar-oracle-qualname>"
        lines.append(f'    "{fn.name}": {{')
        lines.append(f'        "oracle": "{oracle}",')
        lines.append('        "fingerprint": {')
        for key, count in kernel_fingerprint(fn).items():
            lines.append(f'            "{key}": {count},')
        lines.append("        },")
        lines.append("    },")
    lines.append("}")
    return "\n".join(lines)


# re-exported for the rules module
__all__ = [
    "REGISTRY_NAME", "ENGINE_MODULE_RE", "RegistryEntry", "RegistryError",
    "is_engine_module", "kernel_fingerprint", "tracked_kernels",
    "collect_registry", "render_registry", "TRACKER_CHARGE_METHODS",
]
