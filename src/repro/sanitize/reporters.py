"""Reporters and the suppression baseline for the charge-flow analyzer.

Two machine-readable formats:

* JSON --- the same shape :func:`repro.sanitize.parlint.report_json`
  emits, with the strict rule catalog merged in; consumed by CI logs.
* SARIF 2.1.0 --- for code-scanning UIs; uploaded as a CI artifact.

The *baseline* is a committed JSON file of findings that are known and
temporarily accepted.  Entries are matched by ``(rule, relative path,
enclosing scope)`` --- deliberately not by line number, so unrelated
edits don't churn the file.  Baseline entries that no longer match any
finding are reported (pseudo-rule ``STALE-BASELINE``) so the file can
only shrink as findings are fixed.
"""

from __future__ import annotations

import json
from pathlib import Path

from .catalog import CATALOG
from .parlint import RULES as LEXICAL_RULES
from .parlint import Finding
from .rules import STRICT_RULES

ALL_RULES = {**LEXICAL_RULES, **STRICT_RULES}

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def report_json(findings: list[Finding], n_files: int) -> str:
    return json.dumps({
        "tool": "parlint-chargeflow",
        "version": 1,
        "checked_files": n_files,
        "rules": ALL_RULES,
        "findings": [{
            "rule": f.rule, "path": f.path, "line": f.line,
            "col": f.col, "message": f.message,
        } for f in findings],
    }, indent=2)


def report_sarif(findings: list[Finding], base: str | Path = ".") -> str:
    """A SARIF 2.1.0 log.  Paths are made relative to *base* when
    possible (SARIF URIs should not leak absolute build paths)."""
    base = Path(base).resolve()
    rule_ids = sorted({f.rule for f in findings} | set(ALL_RULES))
    rules = []
    for rule_id in rule_ids:
        info = CATALOG.get(rule_id)
        entry = {
            "id": rule_id,
            "shortDescription": {
                "text": info.title if info
                else ALL_RULES.get(rule_id, "analyzer diagnostic")},
        }
        if info is not None:
            entry["fullDescription"] = {
                "text": " ".join(info.explain.split())}
            entry["helpUri"] = info.help_uri
        rules.append(entry)
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for f in findings:
        try:
            uri = Path(f.path).resolve().relative_to(base).as_posix()
        except ValueError:
            uri = Path(f.path).as_posix()
        results.append({
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "warning" if f.rule in ("UNUSED-SUPPRESSION",
                                             "STALE-BASELINE") else "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": max(f.line, 1),
                               "startColumn": f.col + 1},
                },
            }],
        })
    return json.dumps({
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "parlint-chargeflow",
                "informationUri":
                    "https://github.com/paper-repro/nucleus-decomposition",
                "rules": rules,
            }},
            "results": results,
        }],
    }, indent=2)


# ---------------------------------------------------------------------------
# baseline


def _fingerprint(finding: Finding, scope: str, base: Path) -> tuple:
    try:
        rel = Path(finding.path).resolve().relative_to(base).as_posix()
    except ValueError:
        rel = Path(finding.path).as_posix()
    return (finding.rule, rel, scope)


def load_baseline(path: str | Path) -> list[dict]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = data.get("findings", data if isinstance(data, list) else [])
    return [e for e in entries
            if isinstance(e, dict) and "rule" in e and "path" in e]


def apply_baseline(findings: list[Finding], entries: list[dict],
                   scope_of, base: str | Path = ".") -> list[Finding]:
    """Filter findings matched by the baseline; report stale entries.

    *scope_of* maps a finding to the qualname of its enclosing function
    (or ``"<module>"``), supplied by the analyzer which knows the spans.
    """
    base = Path(base).resolve()
    wanted: dict[tuple, dict] = {}
    for entry in entries:
        key = (entry["rule"], Path(entry["path"]).as_posix(),
               entry.get("scope", "<module>"))
        wanted[key] = entry
    used: set[tuple] = set()
    kept = []
    for finding in findings:
        key = _fingerprint(finding, scope_of(finding), base)
        if key in wanted:
            used.add(key)
            continue
        kept.append(finding)
    for key in sorted(wanted.keys() - used):
        rule, rel, scope = key
        kept.append(Finding(
            "STALE-BASELINE", rel, 0, 0,
            f"baseline entry ({rule} in {scope}) matches no finding; "
            f"remove it from the baseline file"))
    return kept
