"""parlint: AST lint rules for the cost-accounting discipline.

Every simulated-time figure this reproduction reports is a function of the
counters charged to :class:`~repro.parallel.runtime.CostTracker`.  The
discipline that keeps those counters honest (charge work inside parallel
regions, account graph-scale loops, mediate shared writes, settle
contention meters) is enforced here rather than by convention.

Rules (stable ids):

``PAR001``
    A ``tracker.parallel(...)`` region whose body never charges work or
    span: the simulated machine would believe the region is free.
``PAR002``
    A Python-level ``for`` loop over graph-scale data (``range`` of an
    ``n`` / ``m`` / clique-table size attribute) inside cost-accounted code
    with no tracker charge on any path: neither in the loop body nor as an
    aggregate charge in the loop's enclosing statement block.
``PAR003``
    A direct subscript mutation of a shared array lexically inside a
    ``region.task()`` block; shared writes from tasks must go through
    :class:`~repro.parallel.atomics.AtomicArray` or the parallel
    primitives.  (Arrays *created inside* the task are task-private and
    exempt.)
``PAR004``
    A :class:`~repro.parallel.atomics.ContentionMeter` constructed but
    never ``settle()``-d in (and never escaping) its scope: its recorded
    collisions would never reach the tracker.

False positives are silenced in place with a trailing comment on the
flagged line (``# parlint: disable=PAR002``), or for a whole file with a
file-level comment anywhere in it (``# parlint: disable-file=PAR006``).
Suppressions that no longer match a finding are themselves reported (rule
``UNUSED-SUPPRESSION``) so the committed set cannot rot.

Run as a module (``python -m repro.sanitize.parlint src/repro``) or via
``repro lint``; ``--json`` emits a machine-readable report.  Exit status is
1 when findings remain, 0 otherwise.

The interprocedural analyzer (:mod:`repro.sanitize.chargeflow`, ``repro
lint --strict``) reuses this module's visitors with a project-wide *charge
oracle*, so charging that lives in a helper function satisfies PAR001 and
PAR002 without a suppression.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path

RULES = {
    "PAR001": "parallel region never charges work/span",
    "PAR002": "graph-scale loop without a tracker charge",
    "PAR003": "unmediated shared-array write inside a task",
    "PAR004": "ContentionMeter constructed but never settled",
}

#: Methods whose call constitutes a cost charge.
_CHARGE_METHODS = frozenset({
    "add_work", "add_work_int", "add_work_frac_repeated",
    "add_work_sequence", "add_span", "add_span_sequence",
    "add_round", "add_atomic", "add_contention", "add_cliques", "add_probes",
    "access", "access_sequence", "task_span", "_charge", "charge",
})
#: The subset that satisfies PAR001 (the region must cost work or span).
_REGION_CHARGE_METHODS = frozenset({
    "add_work", "add_work_int", "add_work_frac_repeated",
    "add_work_sequence", "add_span", "add_span_sequence",
    "task_span", "_charge", "charge",
})
#: Attributes that mark an iteration bound as graph-scale (PAR002).
#: ``num_edges``-style names are matched by :data:`_SCALE_ATTR_RE` below.
_SCALE_ATTRS = frozenset({
    "n", "m", "n_r", "n_s", "n_cliques", "total_cells",
})
#: ``num_edges`` / ``num_vertices`` / ... attribute spellings (same intent
#: as the fixed names above, used by related codebases).
_SCALE_ATTR_RE = re.compile(r"^num_\w+$")

_DISABLE_RE = re.compile(r"#\s*parlint:\s*disable=([A-Z0-9,\s-]+)")
_DISABLE_FILE_RE = re.compile(r"#\s*parlint:\s*disable-file=([A-Z0-9,\s-]+)")


@dataclass(frozen=True)
class Finding:
    """One lint finding, stable across runs (used for the JSON report)."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _calls_in(node: ast.AST):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _is_charge_call(call: ast.Call, methods: frozenset,
                    oracle: frozenset | None = None) -> bool:
    """A charge is a known charging method, any call handed a tracker, or
    (with an interprocedural *oracle*) any call site the charge-flow
    analyzer proved to charge transitively.  Oracles are sets of
    ``(lineno, col_offset)`` call locations."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in methods:
        return True
    if oracle is not None and (call.lineno, call.col_offset) in oracle:
        return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == "tracker":
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == "tracker":
            return True
    for kw in call.keywords:
        if kw.arg == "tracker" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None):
            return True
    return False


def _body_charges(nodes: list[ast.stmt], methods: frozenset,
                  oracle: frozenset | None = None) -> bool:
    for stmt in nodes:
        for call in _calls_in(stmt):
            if _is_charge_call(call, methods, oracle):
                return True
    return False


def _with_call_attr(item: ast.withitem) -> str | None:
    """The attribute name when a with-item is ``<expr>.<attr>(...)``."""
    expr = item.context_expr
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        return expr.func.attr
    return None


def _mentions_tracker(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "tracker":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "tracker":
            return True
        if isinstance(sub, ast.arg) and sub.arg == "tracker":
            return True
    return False


class _Scope:
    """One function (or the module) for PAR004 escape analysis."""

    def __init__(self, node: ast.AST) -> None:
        self.node = node
        self.meters: list[tuple[str, int, int]] = []  # (name, line, col)


class _Linter(ast.NodeVisitor):
    """The per-file visitor.

    ``charge_oracle`` / ``region_oracle`` are optional frozensets of
    ``(lineno, col_offset)`` call locations the interprocedural analyzer
    proved to charge the tracker (any method / work-span methods
    respectively); with them, charging-via-helper satisfies PAR001 and
    PAR002 without suppressions.
    """

    def __init__(self, path: str,
                 charge_oracle: frozenset | None = None,
                 region_oracle: frozenset | None = None) -> None:
        self.path = path
        self.charge_oracle = charge_oracle
        self.region_oracle = region_oracle
        self.findings: list[Finding] = []
        self._scopes: list[_Scope] = []
        self._blocks: list[list[ast.stmt]] = []  # statement-list stack

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(rule, self.path, node.lineno,
                                     node.col_offset, message))

    # -- scope handling (PAR004) ----------------------------------------------

    def _enter_scope(self, node: ast.AST) -> None:
        self._scopes.append(_Scope(node))
        self.generic_visit(node)
        self._check_meters(self._scopes.pop())

    def visit_Module(self, node: ast.Module) -> None:
        self._enter_scope(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        ctor = value.func if isinstance(value, ast.Call) else None
        name = (ctor.id if isinstance(ctor, ast.Name)
                else ctor.attr if isinstance(ctor, ast.Attribute) else None)
        if name == "ContentionMeter" and self._scopes:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].meters.append(
                        (target.id, node.lineno, node.col_offset))
        self.generic_visit(node)

    def _check_meters(self, scope: _Scope) -> None:
        for name, line, col in scope.meters:
            if self._meter_is_used(scope.node, name):
                continue
            self.findings.append(Finding(
                "PAR004", self.path, line, col,
                f"ContentionMeter {name!r} is never settle()d and never "
                f"escapes its scope; its collisions are lost"))

    @staticmethod
    def _meter_is_used(scope_node: ast.AST, name: str) -> bool:
        """settle() called on it, or it escapes (argument / return /
        attribute store / container literal)."""
        for sub in ast.walk(scope_node):
            if isinstance(sub, ast.Attribute) and sub.attr == "settle" \
                    and isinstance(sub.value, ast.Name) \
                    and sub.value.id == name:
                return True
            if isinstance(sub, ast.Call):
                operands = list(sub.args) + [kw.value for kw in sub.keywords]
                if any(isinstance(a, ast.Name) and a.id == name
                       for a in operands):
                    return True
            if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Name) \
                    and sub.value.id == name:
                return True
            if isinstance(sub, ast.Assign):
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in sub.targets) \
                        and isinstance(sub.value, ast.Name) \
                        and sub.value.id == name:
                    return True
            if isinstance(sub, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                values = getattr(sub, "elts", None)
                if values is None:
                    values = list(sub.values)
                if any(isinstance(v, ast.Name) and v.id == name
                       for v in values):
                    return True
        return False

    # -- PAR001 / PAR003 -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            attr = _with_call_attr(item)
            if attr == "parallel":
                if not _body_charges(node.body, _REGION_CHARGE_METHODS,
                                     self.region_oracle):
                    self._emit("PAR001", node,
                               "parallel region whose body never charges "
                               "work or span to the tracker")
            elif attr == "task":
                self._check_task_body(node)
        self.generic_visit(node)

    def _check_task_body(self, node: ast.With) -> None:
        local = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
            elif isinstance(sub, (ast.For, ast.comprehension)):
                target = sub.target
                if isinstance(target, ast.Name):
                    local.add(target.id)
                elif isinstance(target, ast.Tuple):
                    local.update(e.id for e in target.elts
                                 if isinstance(e, ast.Name))
        for sub in ast.walk(node):
            targets = []
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                base = target.value
                shared = (isinstance(base, ast.Attribute)
                          or (isinstance(base, ast.Name)
                              and base.id not in local))
                if shared:
                    label = (base.id if isinstance(base, ast.Name)
                             else base.attr)
                    self._emit(
                        "PAR003", sub,
                        f"direct write to shared array {label!r} inside a "
                        f"task; mediate it through AtomicArray or the "
                        f"parallel primitives")

    # -- PAR002 ----------------------------------------------------------------

    def generic_visit(self, node: ast.AST) -> None:
        """Track the stack of statement blocks (for PAR002's aggregate-
        charge escape hatch) while walking."""
        for name, value in ast.iter_fields(node):
            if isinstance(value, list) and value \
                    and all(isinstance(v, ast.stmt) for v in value):
                self._blocks.append(value)
                for stmt in value:
                    self.visit(stmt)
                self._blocks.pop()
            elif isinstance(value, ast.AST):
                self.visit(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        self.visit(item)

    def visit_For(self, node: ast.For) -> None:
        if self._is_graph_scale(node.iter) and self._in_tracked_scope() \
                and not _body_charges(node.body, _CHARGE_METHODS,
                                      self.charge_oracle) \
                and not self._block_charges_around(node):
            self._emit("PAR002", node,
                       "loop over graph-scale data with no tracker charge "
                       "on any path (neither in the body nor as an "
                       "aggregate charge beside the loop)")
        self.generic_visit(node)

    def _block_charges_around(self, node: ast.For) -> bool:
        """An aggregate charge beside the loop accounts for it --- the
        listing/contraction pattern of charging ``O(n)`` once instead of
        ``O(1)`` per iteration.  Any enclosing statement block within the
        function counts: the charge may sit in a sibling branch (e.g. an
        ``if self.tracker is not None:`` guard next to the guarded loop)."""
        scope_body = None
        for scope in reversed(self._scopes):
            if not isinstance(scope.node, ast.Module):
                scope_body = scope.node.body
                break
        for block in reversed(self._blocks):
            siblings = [stmt for stmt in block if stmt is not node]
            if _body_charges(siblings, _CHARGE_METHODS, self.charge_oracle):
                return True
            if block is scope_body:
                break  # don't escape the enclosing function scope
        return False

    @staticmethod
    def _is_graph_scale(iter_expr: ast.expr) -> bool:
        """``range(...)`` bounded by a graph-scale attribute (``graph.n``,
        ``table.num_cells``, ...) or by ``len(...)`` of anything --- the
        iteration count is data-dependent either way."""
        if not (isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Name)
                and iter_expr.func.id == "range"):
            return False
        for arg in iter_expr.args:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute) \
                        and (sub.attr in _SCALE_ATTRS
                             or _SCALE_ATTR_RE.match(sub.attr)):
                    return True
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Name) \
                        and sub.func.id == "len":
                    return True
        return False

    def _in_tracked_scope(self) -> bool:
        """Only flag PAR002 in code that participates in cost accounting
        at all (a scope mentioning a tracker); pure utilities are exempt."""
        for scope in reversed(self._scopes):
            if isinstance(scope.node, ast.Module):
                continue
            return _mentions_tracker(scope.node)
        return False


def _comment_tokens(source: str) -> list[tuple[int, str]]:
    """Genuine ``(line, text)`` comment tokens.  tokenize (not a per-line
    regex) so suppression examples quoted inside docstrings are ignored."""
    comments = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # ast.parse succeeded, so this is unreachable in practice
    return comments


def _parse_rules(spec: str) -> set[str]:
    return {rule.strip() for rule in spec.split(",") if rule.strip()}


class _Suppressions:
    """The file's suppression comments, tracking which ones fired."""

    def __init__(self, source: str) -> None:
        #: line -> (rules, fired-rules) for ``# parlint: disable=...``
        self.by_line: dict[int, tuple[set[str], set[str]]] = {}
        #: ``# parlint: disable-file=...``: rule -> (decl line, fired?)
        self.file_level: dict[str, tuple[int, bool]] = {}
        for line, text in _comment_tokens(source):
            match = _DISABLE_RE.search(text)
            if match:
                rules, fired = self.by_line.setdefault(line, (set(), set()))
                rules.update(_parse_rules(match.group(1)))
            match = _DISABLE_FILE_RE.search(text)
            if match:
                for rule in _parse_rules(match.group(1)):
                    self.file_level.setdefault(rule, (line, False))

    def suppresses(self, finding: Finding) -> bool:
        entry = self.by_line.get(finding.line)
        if entry is not None and finding.rule in entry[0]:
            entry[1].add(finding.rule)
            return True
        if finding.rule in self.file_level:
            line, _ = self.file_level[finding.rule]
            self.file_level[finding.rule] = (line, True)
            return True
        return False

    def unused(self, path: str,
               checked_rules: frozenset | None = None) -> list[Finding]:
        """Suppression comments that silenced nothing (so the committed
        set cannot rot as the code underneath is fixed).  A run that only
        checks a subset of rules (*checked_rules*) cannot judge
        suppressions of the others --- the lexical-only pass must not
        call a strict-rule waiver stale."""
        stale = []
        for line, (rules, fired) in sorted(self.by_line.items()):
            for rule in sorted(rules - fired):
                if checked_rules is not None and rule not in checked_rules:
                    continue
                stale.append(Finding(
                    "UNUSED-SUPPRESSION", path, line, 0,
                    f"suppression of {rule} matches no finding; remove it"))
        for rule, (line, was_used) in sorted(self.file_level.items()):
            if not was_used:
                if checked_rules is not None and rule not in checked_rules:
                    continue
                stale.append(Finding(
                    "UNUSED-SUPPRESSION", path, line, 0,
                    f"file-level suppression of {rule} matches no finding; "
                    f"remove it"))
        return stale


def _apply_suppressions(findings: list[Finding], source: str, path: str,
                        report_unused: bool = True,
                        checked_rules: frozenset | None = None
                        ) -> list[Finding]:
    suppressions = _Suppressions(source)
    kept = [f for f in findings if not suppressions.suppresses(f)]
    if report_unused:
        kept.extend(suppressions.unused(path, checked_rules))
    return kept


def lint_source(source: str, path: str = "<string>",
                charge_oracle: frozenset | None = None,
                region_oracle: frozenset | None = None,
                report_unused: bool = True) -> list[Finding]:
    """Lint one source string; returns surviving findings.

    This lexical-only entry point checks PAR001--PAR004, so it only
    reports unused suppressions for those rules; strict-rule waivers are
    policed by the chargeflow run that can actually match them."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path, charge_oracle=charge_oracle,
                     region_oracle=region_oracle)
    linter.visit(tree)
    return _apply_suppressions(linter.findings, source, path,
                               report_unused=report_unused,
                               checked_rules=frozenset(RULES))


def lint_file(path: str | Path) -> list[Finding]:
    """Lint one Python file.

    Unreadable or unparsable files are reported as findings (pseudo-rules
    ``IOERR`` / ``SYNTAX``) rather than crashing the run, so one bad file
    cannot hide findings in the rest of a tree.
    """
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding("IOERR", str(path), 0, 0,
                        f"cannot read file: {exc.strerror or exc}")]
    try:
        return lint_source(source, str(path))
    except SyntaxError as exc:
        return [Finding("SYNTAX", str(path), exc.lineno or 0,
                        exc.offset or 0, f"syntax error: {exc.msg}")]


def lint_paths(paths: list[str | Path]) -> tuple[list[Finding], int]:
    """Lint files and/or directory trees; returns (findings, files seen)."""
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    findings: list[Finding] = []
    for source in files:
        findings.extend(lint_file(source))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def report_json(findings: list[Finding], n_files: int) -> str:
    """The machine-readable report consumed by CI and editor tooling."""
    return json.dumps({
        "tool": "parlint",
        "version": 1,
        "checked_files": n_files,
        "rules": RULES,
        "findings": [asdict(finding) for finding in findings],
    }, indent=2)


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.sanitize.parlint [--json] PATH [PATH ...]``."""
    parser = argparse.ArgumentParser(
        prog="parlint",
        description="lint the cost-accounting discipline of the simulated "
                    "parallel machine (rules PAR001-PAR004)")
    parser.add_argument("paths", nargs="+", help="files or directories")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    args = parser.parse_args(argv)
    findings, n_files = lint_paths(args.paths)
    if args.json:
        print(report_json(findings, n_files))
    else:
        for finding in findings:
            print(finding.render())
        print(f"parlint: {len(findings)} finding(s) in {n_files} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
