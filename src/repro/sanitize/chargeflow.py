"""The interprocedural charge-flow analyzer (``repro lint --strict``).

Pipeline, per run:

1. :func:`~repro.sanitize.callgraph.build_project` parses every module
   under the package root into a call graph (nested defs folded into
   their top-level kernels, call sites resolved to may-call target sets).
2. :func:`~repro.sanitize.summaries.compute_summaries` runs the monotone
   fixpoint that gives every function its transitive tracker-charge set
   and stamps every call site with a charging verdict.
3. :func:`~repro.sanitize.effects.analyze_effects` runs the static
   parallel-effect analysis once for the whole project (region/task
   read-write sets, atomic/ownership proofs, race-coverage stamps).
4. Per module, the lexical linter (PAR001--PAR004) runs with the
   summary-derived *charge oracle*, so charging-via-helper needs no
   suppression; then the interprocedural rules PAR005--PAR011 run
   (:mod:`~repro.sanitize.rules`), including the ``PARLINT_PARITY``
   batch/scalar registry checks and the per-module slice of the
   effects report.
5. Inline/file-level suppressions are applied (unused ones reported),
   then the optional committed baseline (stale entries reported).
   Coverage-stamp diagnostics (PAR011 entries pointing at test files)
   are appended last --- they live outside the analyzed package, so
   inline suppressions do not apply to them.

Exit status is 1 when any finding survives, 0 otherwise --- CI's
``lint-strict`` job runs this over ``src/repro`` with the committed
baseline and uploads the SARIF report.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from . import parlint
from .callgraph import Project, build_project
from .catalog import explain as explain_rule
from .effects import EffectsReport, analyze_effects
from .registry import collect_registry, is_engine_module, render_registry
from .reporters import apply_baseline, load_baseline, report_json, report_sarif
from .rules import run_strict_rules
from .summaries import Summary, charge_oracles, compute_summaries


@dataclass
class AnalysisResult:
    findings: list[parlint.Finding]
    n_files: int
    project: Project
    summaries: dict[str, Summary] = field(default_factory=dict)
    effects: EffectsReport | None = None

    def scope_of(self, finding: parlint.Finding) -> str:
        """Qualname of the function enclosing a finding (baseline key)."""
        for fn in self.project.functions.values():
            if fn.path == finding.path \
                    and fn.lineno <= finding.line <= fn.end_lineno:
                return fn.qualname
        return "<module>"


def _default_tests_dir(root: Path) -> Path | None:
    """Race-coverage stamps are only auto-discovered for the canonical
    ``<repo>/src/<package>`` layout --- fixture packages analyzed from
    arbitrary directories keep PAR011 off unless a *tests_dir* is passed
    explicitly, so their expected finding sets stay exact."""
    if root.parent.name == "src":
        candidate = root.parent.parent / "tests"
        if candidate.is_dir():
            return candidate
    return None


def analyze(root: str | Path,
            overlay: dict[str, str] | None = None,
            tests_dir: str | Path | None = None) -> AnalysisResult:
    """Run the full analyzer over a package directory."""
    root = Path(root).resolve()
    project = build_project(root, overlay=overlay)
    summaries = compute_summaries(project)
    registry, registry_errors = collect_registry(project)
    if tests_dir is None:
        tests_dir = _default_tests_dir(root)
    effects = analyze_effects(project, tests_dir=tests_dir)
    findings: list[parlint.Finding] = []
    for name in sorted(project.modules):
        module = project.modules[name]
        any_oracle, workspan_oracle = charge_oracles(
            project, summaries, name)
        linter = parlint._Linter(module.path, charge_oracle=any_oracle,
                                 region_oracle=workspan_oracle)
        linter.visit(module.tree)
        raw = linter.findings
        raw += run_strict_rules(project, summaries, module, registry,
                                registry_errors, effects=effects)
        findings += parlint._apply_suppressions(
            raw, module.source, module.path, report_unused=True)
    findings += effects.stamp_findings
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return AnalysisResult(findings, len(project.modules), project, summaries,
                          effects=effects)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chargeflow",
        description="interprocedural charge-flow analyzer for the "
                    "simulated parallel machine (rules PAR001-PAR011)")
    parser.add_argument("root", nargs="?", default="src/repro",
                        help="package directory to analyze "
                             "(default: src/repro)")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON report on stdout")
    parser.add_argument("--sarif", metavar="FILE", nargs="?", const="-",
                        help="write a SARIF 2.1.0 report (default stdout)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="committed baseline of accepted findings")
    parser.add_argument("--emit-registry", action="store_true",
                        help="print PARLINT_PARITY templates for every "
                             "engine module and exit")
    parser.add_argument("--explain", metavar="RULE",
                        help="print the rule-catalog entry for PARxxx "
                             "and exit")
    parser.add_argument("--race-tests", metavar="DIR",
                        help="directory of test_*.py files whose "
                             "RACECHECK_COVERS stamps PAR011 checks "
                             "(default: <root>/../../tests for src "
                             "layouts)")
    args = parser.parse_args(argv)

    if args.explain:
        text = explain_rule(args.explain)
        if text is None:
            print(f"chargeflow: unknown rule {args.explain!r}",
                  file=sys.stderr)
            return 2
        try:
            print(text)
        except BrokenPipeError:
            # Piped into `head`/quit-early `less`; silence the flush at
            # interpreter exit too.
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0

    root = Path(args.root)
    if not root.is_dir():
        print(f"chargeflow: {root} is not a directory", file=sys.stderr)
        return 2
    result = analyze(root, tests_dir=args.race_tests)

    if args.emit_registry:
        for name in sorted(result.project.modules):
            module = result.project.modules[name]
            if is_engine_module(module):
                print(f"# {module.path}")
                print(render_registry(result.project, result.summaries,
                                      module))
                print()
        return 0

    findings = result.findings
    if args.baseline and Path(args.baseline).exists():
        findings = apply_baseline(findings, load_baseline(args.baseline),
                                  result.scope_of)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if args.sarif is not None:
        sarif = report_sarif(findings)
        if args.sarif == "-":
            print(sarif)
        else:
            Path(args.sarif).write_text(sarif + "\n", encoding="utf-8")
    if args.json:
        print(report_json(findings, result.n_files))
    elif args.sarif != "-":
        for finding in findings:
            print(finding.render())
        print(f"chargeflow: {len(findings)} finding(s) in "
              f"{result.n_files} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
