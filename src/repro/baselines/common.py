"""Shared scaffolding for the baseline (competitor) implementations.

Every baseline runs on the same graph substrate and charges the same
:class:`~repro.parallel.runtime.CostTracker`, so Figure 12's comparisons
come out of identical accounting.  The result record also carries each
algorithm's *simulated memory footprint* --- the quantity that makes
AND/AND-NN/PND run out of memory on the paper's large inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb

import numpy as np

from ..cliques.listing import collect_cliques
from ..cliques.orient import orient
from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker


@dataclass
class BaselineResult:
    """Output record shared by every baseline algorithm."""

    name: str
    r: int
    s: int
    core: dict[tuple[int, ...], int]
    tracker: CostTracker
    rounds: int
    iterations: int
    s_clique_visits: int  # total s-clique discoveries (paper Section 6.3)
    memory_words: int  # simulated resident words of the algorithm's state


class Incidence:
    """Materialized r-clique / s-clique incidence.

    ``r_cliques[i]`` is the i-th r-clique (ascending vertex tuple);
    ``incident[i]`` lists the s-clique ids containing it; ``members[j]``
    lists the r-clique ids inside s-clique ``j``.  ``words`` reports the
    structure's size, charged to whichever algorithm stores it.
    """

    def __init__(self, graph: CSRGraph, r: int, s: int,
                 tracker: CostTracker | None = None):
        self.r = r
        self.s = s
        self._members_matrix: np.ndarray | None = None
        self._incident_csr: tuple[np.ndarray, np.ndarray] | None = None
        dg, _ = orient(graph, "degeneracy", tracker)
        self.r_cliques = [tuple(sorted(int(x) for x in row))
                          for row in collect_cliques(dg, r, tracker)]
        self.index = {clique: i for i, clique in enumerate(self.r_cliques)}
        s_rows = collect_cliques(dg, s, tracker)
        self.n_s = s_rows.shape[0]
        self.incident: list[list[int]] = [[] for _ in self.r_cliques]
        self.members: list[list[int]] = []
        for j, row in enumerate(s_rows):
            big = tuple(sorted(int(x) for x in row))
            ids = [self.index[sub] for sub in combinations(big, r)]
            self.members.append(ids)
            for i in ids:
                self.incident[i].append(j)
        self.initial_counts = np.asarray(
            [len(lst) for lst in self.incident], dtype=np.int64)

    @property
    def n_r(self) -> int:
        return len(self.r_cliques)

    @property
    def words(self) -> int:
        """Words held by the incidence lists (both directions)."""
        return 2 * sum(len(m) for m in self.members)

    def members_matrix(self) -> np.ndarray:
        """The member lists as an ``(n_s, comb(s, r))`` int64 array.

        A host-side flat view of :attr:`members` for the batch peeling
        kernels (cached; building it charges nothing, just as the scalar
        loop's direct list walks charge nothing for list storage).
        """
        if self._members_matrix is None:
            width = comb(self.s, self.r)
            if self.n_s:
                self._members_matrix = np.asarray(
                    self.members, dtype=np.int64).reshape(self.n_s, width)
            else:
                self._members_matrix = np.zeros((0, width), dtype=np.int64)
        return self._members_matrix

    def incident_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The incident lists in CSR form: ``(offsets, s_clique_ids)``.

        ``s_clique_ids[offsets[i]:offsets[i + 1]]`` equals
        ``incident[i]`` (ascending s-clique ids, the scalar loop's walk
        order).  Cached, host-side, charge-free --- see
        :meth:`members_matrix`.
        """
        if self._incident_csr is None:
            offsets = np.zeros(self.n_r + 1, dtype=np.int64)
            np.cumsum(self.initial_counts, out=offsets[1:])
            matrix = self.members_matrix()
            flat = matrix.reshape(-1)
            order = np.argsort(flat, kind="stable")
            ids = np.repeat(np.arange(self.n_s, dtype=np.int64),
                            matrix.shape[1])[order]
            self._incident_csr = (offsets, ids)
        return self._incident_csr


def h_index(values) -> int:
    """Largest h with at least h values >= h (the local-update operator)."""
    arr = np.sort(np.asarray(values, dtype=np.int64))[::-1]
    h = 0
    for k, v in enumerate(arr, start=1):
        if v >= k:
            h = k
        else:
            break
    return h
