"""AND and AND-NN: Sariyuce et al.'s asynchronous local algorithms.

Instead of global peeling, the local paradigm (Sariyuce et al. 2018 [56])
iterates an h-index-style operator per r-clique until fixpoint:

    tau(R)  <-  H( { min over the other r-cliques R' of each incident
                     s-clique S of tau(R') } )

starting from tau = the s-clique count.  The fixpoint is exactly the
(r,s)-clique-core number.  Updates are *asynchronous* (in place), which
speeds convergence.

The cost profile the paper reports emerges directly:

* **AND** re-enumerates every incident s-clique on every visit of every
  r-clique; the paper measures 1.69--46x (median ~15x) more s-clique
  discoveries than ARB-NUCLEUS-DECOMP.
* **AND-NN** adds the *notification* mechanism: an r-clique is revisited
  only if the tau of some co-member changed since its last evaluation,
  cutting discoveries to <= 3.45x (median ~1.4x) of ARB --- at the price of
  storing the incidence structure, which is what makes AND-NN run out of
  memory on the paper's larger graphs.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .common import BaselineResult, Incidence, h_index


def _local_decomposition(graph: CSRGraph, r: int, s: int, name: str,
                         notify: bool,
                         tracker: CostTracker | None = None) -> BaselineResult:
    tracker = tracker or CostTracker()
    with tracker.phase("count"):
        inc = Incidence(graph, r, s, tracker)
    # The tau estimates are the one shared array of the local algorithms;
    # sweeps are synchronizing rounds, so plain accesses are race-free.
    tau = maybe_shadow(inc.initial_counts.copy(), tracker, label="and_tau")
    visits = 0
    iterations = 0
    # AND-NN: dirty flags; plain AND re-evaluates everything each sweep.
    dirty = np.ones(inc.n_r, dtype=bool)
    with tracker.phase("iterate"):
        changed = True
        while changed:
            changed = False
            iterations += 1
            tracker.add_round()  # one synchronizing sweep
            tracker.add_span(_log2(inc.n_r + 2))
            for i in range(inc.n_r):
                if notify and not dirty[i]:
                    continue
                dirty[i] = False
                # Re-enumerate the incident s-cliques (each one counts as a
                # discovery: AND recomputes them, it does not store them).
                support = []
                for j in inc.incident[i]:
                    visits += 1
                    tracker.add_cliques(1)
                    tracker.add_work(float(len(inc.members[j])))
                    support.append(min(tau[other] for other in inc.members[j]
                                       if other != i))
                new_tau = min(int(tau[i]), h_index(support)) if support else 0
                tracker.add_work(float(len(support)) * _log2(len(support) + 2))
                if new_tau != tau[i]:
                    tau[i] = new_tau
                    changed = True
                    if notify:
                        for j in inc.incident[i]:
                            tracker.add_work(float(len(inc.members[j])))
                            for other in inc.members[j]:
                                if other != i:
                                    dirty[other] = True
    core = {clique: int(tau[i]) for i, clique in enumerate(inc.r_cliques)}
    # AND stores only tau (plus the graph); AND-NN stores the incidence
    # lists for notification, the space cost the paper highlights.
    memory = 2 * inc.n_r + (inc.words + inc.n_r if notify else 0)
    return BaselineResult(name, r, s, core, tracker, iterations, iterations,
                          visits, memory_words=memory)


def and_decomposition(graph: CSRGraph, r: int, s: int,
                      tracker: CostTracker | None = None) -> BaselineResult:
    """AND: asynchronous local iteration to convergence."""
    return _local_decomposition(graph, r, s, "AND", notify=False,
                                tracker=tracker)


def and_nn_decomposition(graph: CSRGraph, r: int, s: int,
                         tracker: CostTracker | None = None) -> BaselineResult:
    """AND-NN: AND plus the notification mechanism (space for speed)."""
    return _local_decomposition(graph, r, s, "AND-NN", notify=True,
                                tracker=tracker)
