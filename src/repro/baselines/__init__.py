"""Reimplementations of every competitor the paper evaluates against.

* :func:`~repro.baselines.nd.nd_decomposition` -- Sariyuce et al.'s serial ND;
* :func:`~repro.baselines.nd.pnd_decomposition` -- their parallel PND
  (sequential peeling within count classes);
* :func:`~repro.baselines.local.and_decomposition` /
  :func:`~repro.baselines.local.and_nn_decomposition` -- the asynchronous
  local algorithms AND and AND-NN;
* :func:`~repro.baselines.pkt.pkt_decomposition` /
  :func:`~repro.baselines.pkt.pkt_opt_cpu_decomposition` -- the
  (2,3)-specialized PKT family;
* :func:`~repro.baselines.msp.msp_decomposition` -- the bulk-synchronous
  MSP truss baseline.
"""

from .common import BaselineResult, Incidence, h_index
from .local import and_decomposition, and_nn_decomposition
from .msp import msp_decomposition
from .nd import nd_decomposition, pnd_decomposition
from .pkt import pkt_decomposition, pkt_opt_cpu_decomposition

__all__ = [
    "BaselineResult", "Incidence", "h_index",
    "nd_decomposition", "pnd_decomposition",
    "and_decomposition", "and_nn_decomposition",
    "pkt_decomposition", "pkt_opt_cpu_decomposition",
    "msp_decomposition",
]
