"""PKT-family k-truss baselines (Kabir--Madduri PKT, Che et al. PKT-OPT-CPU).

These are (2,3)-only competitors (Figure 12, "Comparison to k-truss
implementations").  Both follow the standard parallel truss template:

1. reorder the graph (a multi-pass parallel sample sort) and count per-edge
   triangle support;
2. peel level by level: scan the edge array to build each level's frontier,
   then process the frontier in bulk-synchronous sub-rounds, decrementing
   the supports of the two surviving edges of each triangle.

The cost model separates the two variants exactly where the paper does:

* both pay for the sample-sort **reordering**, modeled as extra work plus
  multi-pass synchronization rounds --- the subroutine the paper measures
  as 3.07--5.16x slower than ARB's orientation-based reordering, and the
  reason ARB wins on *small* graphs where fixed costs dominate;
* **PKT** locates the edge id of each triangle's side with a binary search
  in the adjacency array (``log deg`` work per lookup) and uses plain merge
  intersections;
* **PKT-OPT-CPU** precomputes eid arrays (O(1) lookups) and uses hand-tuned
  SIMD-style intersections (discounted per-element cost), which is why it
  overtakes ARB on *large* graphs (the paper measures up to 2.27x).

Each sub-round's frontier is deduplicated before the next sub-round: a
triangle decrement used to append one frontier entry per decrement, so hot
edges were processed (and re-skipped) once per duplicate, inflating
frontier lengths.  The sub-round body comes in two engines: the scalar
oracle :func:`_pkt_subround_scalar` and the vectorized
:func:`repro.baselines.batchtruss.pkt_subround_batch`
(``engine="batch"``), with bit-for-bit simulated-cost parity enforced by
tests/test_batch_baselines.py and rule PAR007.
"""

from __future__ import annotations

import numpy as np

from ..cliques.counting import edge_support
from ..cliques.orient import orient
from ..graph.csr import CSRGraph
from ..parallel.atomics import ContentionMeter
from ..parallel.primitives import intersect_sorted
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .common import BaselineResult

#: Synchronization passes of the parallel sample sort used for reordering.
_REORDER_ROUNDS = 40


def _pkt_like(graph: CSRGraph, name: str, intersection_cost: float,
              eid_binary_search: bool, rescan_per_subround: bool = False,
              tracker: CostTracker | None = None,
              engine: str = "scalar") -> BaselineResult:
    tracker = tracker or CostTracker()
    use_batch = engine == "batch" and tracker.race_detector is None
    with tracker.phase("reorder"):
        dg, _ = orient(graph, "degree", tracker)
        # Multi-pass parallel sample sort: extra work plus one barrier per
        # pass (paper: 3.07-5.16x slower than ARB's reorder subroutine).
        tracker.add_work(4.0 * 2.0 * graph.m)
        tracker.add_round(_REORDER_ROUNDS)
        tracker.add_span(_log2(graph.m) ** 2)
    with tracker.phase("count"):
        support = edge_support(graph, tracker, dg=dg)
        tracker.add_cliques(sum(support.values()) // 3)
    edges = list(support)
    index = None if use_batch else {e: i for i, e in enumerate(edges)}
    edge_arr = np.asarray(edges, dtype=np.int64).reshape(len(edges), 2)
    # Support decrements are the fetch-and-subs of the real PKT; shadow
    # them (mediated) when a race detector rides along on the tracker.
    sup = maybe_shadow(np.asarray([support[e] for e in edges],
                                  dtype=np.int64),
                       tracker, atomic=True, label="pkt_support")
    alive = np.ones(len(edges), dtype=bool)
    core = {}
    rounds = 0
    visits = 0
    remaining = len(edges)
    level = 0
    meter = ContentionMeter()
    log_degree = np.maximum(1.0, np.log2(np.maximum(2, graph.degrees)))
    if use_batch:
        from .batchtruss import build_edge_index, pkt_subround_batch
        eidx = build_edge_index(edge_arr, graph.n)

    with tracker.phase("peel"):
        while remaining:
            # Scan the whole edge array to build this level's frontier.
            live = np.flatnonzero(alive)
            level = max(level, int(sup[live].min()))
            tracker.add_work(float(len(edges)))
            tracker.add_span(_log2(len(edges) + 2))
            frontier = live[sup[live] <= level]
            while frontier.size:
                rounds += 1
                tracker.add_round()
                # One bulk-synchronous sub-round; frontier edges process
                # concurrently, so the span is one edge's update chain.
                tracker.add_span(2.0 * _log2(len(edges) + 2))
                if rescan_per_subround:
                    # PKT re-filters the whole edge array every sub-round;
                    # frontier propagation is one of PKT-OPT-CPU's wins.
                    tracker.add_work(float(len(edges)))
                for i in frontier:
                    core[edges[int(i)]] = level
                remaining -= int(frontier.size)
                if use_batch:
                    sub_visits, cand = pkt_subround_batch(
                        frontier, graph, edge_arr, eidx, sup, alive, level,
                        intersection_cost, eid_binary_search, log_degree,
                        meter, tracker)
                else:
                    sub_visits, cand = _pkt_subround_scalar(
                        frontier, graph, edges, index, sup, alive, level,
                        intersection_cost, eid_binary_search, log_degree,
                        meter, tracker)
                visits += sub_visits
                meter.settle(tracker)
                # Dedup before the next sub-round: each dropped edge is
                # scheduled once, in ascending id order.
                cand = np.unique(np.asarray(cand, dtype=np.int64))
                frontier = cand[alive[cand]]
    return BaselineResult(name, 2, 3, core, tracker, rounds, 1, visits,
                          memory_words=3 * len(edges))


def _pkt_subround_scalar(frontier, graph: CSRGraph, edges, index, sup,
                         alive, level: int, intersection_cost: float,
                         eid_binary_search: bool, log_degree, meter,
                         tracker: CostTracker):
    """Process one frontier sub-round one edge at a time, ascending id.

    The batch engine's registered oracle (PAR007).  Returns
    ``(triangle_visits, dropped_candidates)``; candidates may repeat and
    are deduplicated by the driver.
    """
    visits = 0
    cand: list[int] = []
    for i in frontier:
        i = int(i)
        alive[i] = False
        u, v = edges[i]
        nbrs_u = graph.neighbors(u)
        nbrs_v = graph.neighbors(v)
        common = intersect_sorted(nbrs_u, nbrs_v, tracker=None)
        tracker.add_work(
            intersection_cost
            * float(min(nbrs_u.size, nbrs_v.size)) + 1.0)
        for w in map(int, common):
            # PKT finds the edge id with a binary search over the
            # adjacency array (log deg work); PKT-OPT-CPU keeps
            # precomputed eid arrays (constant time).
            tracker.add_work(log_degree[u] if eid_binary_search else 1.0)
            iu = index[(u, w) if u < w else (w, u)]
            tracker.add_work(log_degree[v] if eid_binary_search else 1.0)
            iv = index[(v, w) if v < w else (w, v)]
            if not alive[iu] or not alive[iv]:
                continue  # triangle already destroyed
            visits += 1
            tracker.add_cliques(1)
            for other in (iu, iv):
                sup[other] -= 1
                tracker.add_atomic()
                # Raw atomic decrements contend on hot edges
                # (no update aggregation, unlike ARB 5.5).
                meter.record(other)
                if sup[other] <= level:
                    cand.append(other)
    return visits, cand


def pkt_decomposition(graph: CSRGraph,
                      tracker: CostTracker | None = None,
                      engine: str = "scalar") -> BaselineResult:
    """Kabir--Madduri PKT (parallel k-truss)."""
    return _pkt_like(graph, "PKT", intersection_cost=1.0,
                     eid_binary_search=True, rescan_per_subround=True,
                     tracker=tracker, engine=engine)


def pkt_opt_cpu_decomposition(graph: CSRGraph,
                              tracker: CostTracker | None = None,
                              engine: str = "scalar") -> BaselineResult:
    """Che et al.'s PKT-OPT-CPU (eid arrays + hand-optimized intersections)."""
    return _pkt_like(graph, "PKT-OPT-CPU", intersection_cost=0.35,
                     eid_binary_search=False, tracker=tracker,
                     engine=engine)
