"""Vectorized ND/PND sub-frontier peel (``nd_decomposition(engine="batch")``).

The scalar oracle in :mod:`repro.baselines.nd` walks Python lists per
peeled r-clique (incident s-cliques, then each s-clique's members); this
engine processes a whole sub-frontier with flat arrays: one CSR gather of
the frontier's incident lists, one ``np.unique`` to assign each killed
s-clique to its first-processed (least-id) frontier member, one
``np.bincount`` scatter for the count decrements, and one mask for the
next sub-frontier.

The contract --- enforced by tests/test_batch_baselines.py and the bench
gate --- is that a batch run's *simulated* metrics are bit-for-bit
identical to the scalar oracle's.  Three facts make that possible (full
rules in docs/cost-model.md):

* the oracle peels a sub-frontier in ascending id order, so an alive
  s-clique is killed by its least frontier member, every other
  start-alive member absorbs exactly one decrement, and the per-peel
  ``touched`` count is ``comb(s, r)``-times-the-kills --- all closed
  forms;
* work charges on this path are integer-valued (exact int bin), while
  the per-peel *span* stream (ND's ``touched + 1``; PND's ``16,
  log2(touched + 2)`` pairs) is replayed in peel order through
  :meth:`~repro.parallel.runtime.CostTracker.add_span_sequence` ---
  binary64 addition is order-sensitive, so the sequence, not the sum, is
  what matches;
* a clique enters a sub-frontier at most once (the shared ``queued``
  mask), so the oracle's append-at-crossing next frontier equals the set
  of live never-queued cliques that were decremented to the level, taken
  in ascending order.

The engine requires plain ndarray peeling state, so the driver falls
back to the scalar oracle when a race detector is attached.
"""

from __future__ import annotations

import numpy as np

from ..parallel.primitives import segment_gather
from ..parallel.runtime import CostTracker, _log2

#: Batch<->scalar parity contract, verified statically by ``repro lint
#: --strict`` (rule PAR007); regenerate fingerprints with
#: ``repro lint --strict --emit-registry`` after editing charges.
PARLINT_PARITY = {
    "peel_frontier_batch": {
        "oracle": "repro.baselines.nd._peel_frontier_scalar",
        "fingerprint": {
            "add_cliques": 1,
            "add_span_sequence": 1,
            "add_work_int": 1,
        },
    },
}


def peel_frontier_batch(frontier, inc, counts, alive, s_alive, queued,
                        level: int, parallel_updates: bool,
                        tracker: CostTracker):
    """Peel one sub-frontier in batch mode.

    Mirrors :func:`repro.baselines.nd._peel_frontier_scalar` peel for
    peel; returns the same ``(s_clique_kills, next_frontier)``.
    """
    offsets, ids = inc.incident_csr()
    matrix = inc.members_matrix()
    width = matrix.shape[1]
    lens = offsets[frontier + 1] - offsets[frontier]
    js = segment_gather(ids, offsets[frontier], lens)
    owner = np.repeat(frontier, lens)
    kill_mask = s_alive[js]
    killed_all = js[kill_mask]
    killer_all = owner[kill_mask]
    # Occurrences of a repeated s-clique id appear in frontier-position
    # (ascending owner) order, so the first occurrence is the oracle's
    # killer: the least frontier member of that s-clique.
    killed, first_at = np.unique(killed_all, return_index=True)
    killers = killer_all[first_at]
    n_killed = int(killed.size)
    tracker.add_cliques(n_killed)
    s_alive[killed] = False

    # Per-peel touched counts: comb(s, r) member visits per kill.
    kpos = np.searchsorted(frontier, killers)
    kills = np.bincount(kpos, minlength=frontier.size)
    touched = width * kills
    tracker.add_work_int(int(touched.sum()) + int(frontier.size))
    if parallel_updates:
        span_seq = np.empty(2 * frontier.size, dtype=np.float64)
        span_seq[0::2] = 16.0
        # math.log2 (via _log2), not np.log2: the oracle's libm values.
        span_seq[1::2] = [_log2(t + 2) for t in touched]
    else:
        span_seq = (touched + 1).astype(np.float64)
    tracker.add_span_sequence(span_seq)

    # Count decrements: every start-alive member of a killed s-clique
    # except its killer (the killer is already dead at its own turn;
    # later-position frontier members are still alive at theirs).
    members = matrix[killed]
    dec_mask = alive[members] & (members != killers[:, None])
    dec = np.bincount(members[dec_mask], minlength=alive.size)
    hit = np.flatnonzero(dec)
    counts[hit] -= dec[hit]
    alive[frontier] = False
    drops = hit[alive[hit] & ~queued[hit] & (counts[hit] <= level)]
    queued[drops] = True
    return n_killed, drops
