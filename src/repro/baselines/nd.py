"""ND and PND: Sariyuce et al.'s peeling-based nucleus algorithms.

* **ND** (Sariyuce et al. 2017 [57]) is the serial global algorithm: count
  s-cliques per r-clique, then repeatedly peel the single r-clique with the
  minimum count, decrementing its surviving co-members.  Being serial, its
  span equals its work; its clique enumeration scans full neighborhoods
  (``deg(v)^{s-r}``-style work) instead of oriented ones, which is the
  work-inefficiency the paper's appendix analyzes.

* **PND** (Sariyuce et al. 2018 [56]) parallelizes the counting phase and
  each peel's updates, but --- as the paper stresses (Section 6.3) --- does
  *not* parallelize within a count class: r-cliques sharing the minimum
  count are peeled one by one to dodge synchronization, so PND performs
  thousands of times more rounds (barriers) than ARB-NUCLEUS-DECOMP; the
  paper measures 5,608--84,170x.

Both are implemented over the shared :class:`Incidence`, whose storage is
charged to the algorithm's memory footprint (space proportional to the
number of s-cliques --- their large-space variant).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .common import BaselineResult, Incidence


def _peel_one_at_a_time(graph: CSRGraph, r: int, s: int, name: str,
                        parallel_updates: bool,
                        tracker: CostTracker) -> BaselineResult:
    with tracker.phase("count"):
        inc = Incidence(graph, r, s, tracker)
        # Their counting scans full neighborhoods; charge the degree-based
        # (unoriented) enumeration cost on top of the shared listing.
        degs = graph.degrees
        extra = sum(float(degs[v]) ** max(1, s - r)
                    for clique in inc.r_cliques for v in clique[:1])
        tracker.add_work(extra)
        if not parallel_updates:
            tracker.add_span(extra)
    # ND/PND peel one r-clique at a time, so count updates are ordered;
    # shadow them as plain accesses to let the race detector confirm it.
    counts = maybe_shadow(inc.initial_counts.copy(), tracker,
                          label="nd_counts")
    s_alive = np.ones(inc.n_s, dtype=bool)
    alive = np.ones(inc.n_r, dtype=bool)
    core = {}
    visits = 0
    rounds = 0
    level = 0
    with tracker.phase("peel"):
        # Building the heap is the first step of the peel; charging it
        # inside the phase keeps time_breakdown's per-phase attribution
        # exhaustive (PAR008).
        heap = [(int(c), i) for i, c in enumerate(counts)]
        heapq.heapify(heap)
        tracker.add_work(float(len(heap)))
        while heap:
            count, i = heapq.heappop(heap)
            tracker.add_work(_log2(len(heap) + 2))
            if not alive[i] or count != counts[i]:
                continue  # stale heap entry
            alive[i] = False
            level = max(level, count)
            core[inc.r_cliques[i]] = level
            # Every single peel is a sequential dependence: PND synchronizes
            # lightly after each one (constant span), ND is fully serial.
            rounds += 1
            if parallel_updates:
                tracker.add_span(16.0)
            touched = 0
            for j in inc.incident[i]:
                if not s_alive[j]:
                    continue
                s_alive[j] = False
                visits += 1
                tracker.add_cliques(1)
                for other in inc.members[j]:
                    touched += 1
                    if alive[other]:
                        counts[other] -= 1
                        heapq.heappush(heap, (int(counts[other]), other))
            tracker.add_work(float(touched + 1))
            if parallel_updates:
                tracker.add_span(_log2(touched + 2))
            else:
                tracker.add_span(float(touched + 1))
        if not parallel_updates:
            # ND is entirely serial: its critical path is its total work.
            # The correction is part of the peel (same value as at the
            # phase boundary; work and span are already final here).
            tracker.add_span(max(0.0, tracker.work - tracker.span))
    return BaselineResult(name, r, s, core, tracker, rounds, 1, visits,
                          memory_words=inc.words + 2 * inc.n_r)


def nd_decomposition(graph: CSRGraph, r: int, s: int,
                     tracker: CostTracker | None = None) -> BaselineResult:
    """Sariyuce et al.'s serial ND."""
    return _peel_one_at_a_time(graph, r, s, "ND", parallel_updates=False,
                               tracker=tracker or CostTracker())


def pnd_decomposition(graph: CSRGraph, r: int, s: int,
                      tracker: CostTracker | None = None) -> BaselineResult:
    """Sariyuce et al.'s PND: parallel counting/updates, sequential peels."""
    return _peel_one_at_a_time(graph, r, s, "PND", parallel_updates=True,
                               tracker=tracker or CostTracker())
