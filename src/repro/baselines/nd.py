"""ND and PND: Sariyuce et al.'s peeling-based nucleus algorithms.

* **ND** (Sariyuce et al. 2017 [57]) is the serial global algorithm: count
  s-cliques per r-clique, then repeatedly peel the single r-clique with the
  minimum count, decrementing its surviving co-members.  Being serial, its
  span equals its work; its clique enumeration scans full neighborhoods
  (``deg(v)^{s-r}``-style work) instead of oriented ones, which is the
  work-inefficiency the paper's appendix analyzes.

* **PND** (Sariyuce et al. 2018 [56]) parallelizes the counting phase and
  each peel's updates, but --- as the paper stresses (Section 6.3) --- does
  *not* parallelize within a count class: r-cliques sharing the minimum
  count are peeled one by one to dodge synchronization, so PND performs
  thousands of times more rounds (barriers) than ARB-NUCLEUS-DECOMP; the
  paper measures 5,608--84,170x.

Both are implemented over the shared :class:`Incidence`, whose storage is
charged to the algorithm's memory footprint (space proportional to the
number of s-cliques --- their large-space variant).

The peel tracks the current minimum count with a level/sub-frontier
structure (one scan of the live counts per level, like the bucketing of
arXiv:2502.08042) instead of the earlier lazy binary heap, whose
heap-size-dependent ``log2`` pop charges also billed stale entries.
Within a sub-frontier the r-cliques still peel strictly one at a time in
ascending id order --- one round and one sequential dependence per peel,
which is the round blowup the paper measures.  The inner loop comes in
two engines: the scalar oracle :func:`_peel_frontier_scalar` and the
vectorized :func:`repro.baselines.batchnd.peel_frontier_batch`
(``engine="batch"``), with bit-for-bit simulated-cost parity enforced by
tests/test_batch_baselines.py and rule PAR007.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .common import BaselineResult, Incidence


def _peel_one_at_a_time(graph: CSRGraph, r: int, s: int, name: str,
                        parallel_updates: bool, tracker: CostTracker,
                        engine: str = "scalar") -> BaselineResult:
    with tracker.phase("count"):
        inc = Incidence(graph, r, s, tracker)
        # Their counting scans full neighborhoods; charge the degree-based
        # (unoriented) enumeration cost on top of the shared listing.
        degs = graph.degrees
        extra = sum(float(degs[v]) ** max(1, s - r)
                    for clique in inc.r_cliques for v in clique[:1])
        tracker.add_work(extra)
        if not parallel_updates:
            tracker.add_span(extra)
    # ND/PND peel one r-clique at a time, so count updates are ordered;
    # shadow them as plain accesses to let the race detector confirm it.
    counts = maybe_shadow(inc.initial_counts.copy(), tracker,
                          label="nd_counts")
    use_batch = engine == "batch" and tracker.race_detector is None
    s_alive = np.ones(inc.n_s, dtype=bool)
    alive = np.ones(inc.n_r, dtype=bool)
    # queued marks r-cliques that have already entered a sub-frontier, so
    # a clique dropping to the level is scheduled exactly once.
    queued = np.zeros(inc.n_r, dtype=bool)
    core = {}
    visits = 0
    rounds = 0
    level = 0
    with tracker.phase("peel"):
        # Seeding the level structure: one pass over the r-clique counts
        # (replaces the old heap build; charged in-phase, PAR008).
        tracker.add_work(float(inc.n_r))
        remaining = inc.n_r
        while remaining:
            # One scan of the live cliques finds the next level and its
            # first sub-frontier.
            live = np.flatnonzero(alive)
            level = max(level, int(counts[live].min()))
            tracker.add_work(float(live.size))
            tracker.add_span(_log2(live.size + 2))
            frontier = live[counts[live] <= level]
            queued[frontier] = True
            while frontier.size:
                for i in frontier:
                    core[inc.r_cliques[int(i)]] = level
                # Every single peel is a sequential dependence: PND
                # synchronizes lightly after each one (constant span), ND
                # is fully serial.
                rounds += int(frontier.size)
                remaining -= int(frontier.size)
                if use_batch:
                    from .batchnd import peel_frontier_batch
                    sub_visits, frontier = peel_frontier_batch(
                        frontier, inc, counts, alive, s_alive, queued,
                        level, parallel_updates, tracker)
                else:
                    sub_visits, frontier = _peel_frontier_scalar(
                        frontier, inc, counts, alive, s_alive, queued,
                        level, parallel_updates, tracker)
                visits += sub_visits
        if not parallel_updates:
            # ND is entirely serial: its critical path is its total work.
            # The correction is part of the peel (same value as at the
            # phase boundary; work and span are already final here).
            tracker.add_span(max(0.0, tracker.work - tracker.span))
    return BaselineResult(name, r, s, core, tracker, rounds, 1, visits,
                          memory_words=inc.words + 2 * inc.n_r)


def _peel_frontier_scalar(frontier, inc: Incidence, counts, alive, s_alive,
                          queued, level: int, parallel_updates: bool,
                          tracker: CostTracker):
    """Peel one sub-frontier's r-cliques one at a time, ascending id.

    The batch engine's registered oracle (PAR007).  Returns
    ``(s_clique_kills, next_frontier)`` where the next frontier is the
    ascending array of live cliques first dropping to the level here.
    """
    visits = 0
    drops: list[int] = []
    for i in frontier:
        i = int(i)
        alive[i] = False
        if parallel_updates:
            tracker.add_span(16.0)
        touched = 0
        for j in inc.incident[i]:
            if not s_alive[j]:
                continue
            s_alive[j] = False
            visits += 1
            tracker.add_cliques(1)
            for other in inc.members[j]:
                touched += 1
                if alive[other]:
                    counts[other] -= 1
                    if counts[other] <= level and not queued[other]:
                        queued[other] = True
                        drops.append(other)
        tracker.add_work(float(touched + 1))
        if parallel_updates:
            tracker.add_span(_log2(touched + 2))
        else:
            tracker.add_span(float(touched + 1))
    return visits, np.asarray(sorted(drops), dtype=np.int64)


def nd_decomposition(graph: CSRGraph, r: int, s: int,
                     tracker: CostTracker | None = None,
                     engine: str = "scalar") -> BaselineResult:
    """Sariyuce et al.'s serial ND."""
    return _peel_one_at_a_time(graph, r, s, "ND", parallel_updates=False,
                               tracker=tracker or CostTracker(),
                               engine=engine)


def pnd_decomposition(graph: CSRGraph, r: int, s: int,
                      tracker: CostTracker | None = None,
                      engine: str = "scalar") -> BaselineResult:
    """Sariyuce et al.'s PND: parallel counting/updates, sequential peels."""
    return _peel_one_at_a_time(graph, r, s, "PND", parallel_updates=True,
                               tracker=tracker or CostTracker(),
                               engine=engine)
