"""MSP-style k-truss baseline (Smith et al., HPEC 2017).

A bulk-synchronous truss decomposition: for each support level ``k``, the
whole live edge set is *rescanned* to build the deletion frontier, and the
sub-rounds within a level synchronize globally.  The repeated full scans
are what make MSP slower than the frontier-propagating PKT variants (the
paper measures ARB 2.35--7.65x faster than MSP), and they appear here as
genuine extra work rather than as a fudge factor.
"""

from __future__ import annotations

import numpy as np

from ..cliques.counting import edge_support
from ..graph.csr import CSRGraph
from ..parallel.atomics import ContentionMeter
from ..parallel.primitives import intersect_sorted
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .common import BaselineResult


def msp_decomposition(graph: CSRGraph,
                      tracker: CostTracker | None = None) -> BaselineResult:
    """MSP-style bulk-synchronous truss decomposition ((2,3) only)."""
    tracker = tracker or CostTracker()
    with tracker.phase("count"):
        support = edge_support(graph, tracker)
        tracker.add_cliques(sum(support.values()) // 3)
    edges = list(support)
    index = {e: i for i, e in enumerate(edges)}
    # MSP's support decrements are atomics too; shadow them (mediated)
    # when a race detector rides along on the tracker.
    sup = maybe_shadow(np.asarray([support[e] for e in edges],
                                  dtype=np.int64),
                       tracker, atomic=True, label="msp_support")
    alive = np.ones(len(edges), dtype=bool)
    core = {}
    rounds = 0
    visits = 0
    remaining = len(edges)
    level = 0
    meter = ContentionMeter()

    log_degree = np.maximum(1.0, np.log2(np.maximum(2, graph.degrees)))

    def edge_id(u, v):
        # Binary search over the adjacency array, like PKT's lookups.
        tracker.add_work(log_degree[u])
        return index[(u, v) if u < v else (v, u)]

    with tracker.phase("peel"):
        while remaining:
            live = np.flatnonzero(alive)
            level = max(level, int(sup[live].min()))
            while True:
                # MSP keeps full-size support/bitmap arrays and rescans all
                # of them to build each sub-frontier -- the repeated full
                # scans that make it the slowest of the truss baselines.
                live = np.flatnonzero(alive)
                tracker.add_work(3.0 * len(edges))
                tracker.add_span(_log2(len(edges) + 2))
                frontier = [int(i) for i in live if sup[i] <= level]
                if not frontier:
                    break
                rounds += 1
                tracker.add_round()
                frontier_set = set(frontier)
                for i in frontier:
                    core[edges[i]] = level
                for i in frontier:
                    u, v = edges[i]
                    nbrs_u = graph.neighbors(u)
                    nbrs_v = graph.neighbors(v)
                    common = intersect_sorted(nbrs_u, nbrs_v, tracker=None)
                    # Naive merge intersections, like PKT's but un-tuned.
                    tracker.add_work(
                        1.5 * float(min(nbrs_u.size, nbrs_v.size)) + 1.0)
                    for w in map(int, common):
                        iu = edge_id(u, w)
                        iv = edge_id(v, w)
                        if ((not alive[iu] and iu not in frontier_set)
                                or (not alive[iv] and iv not in frontier_set)):
                            continue  # triangle destroyed in an earlier round
                        # Simultaneously-peeled triangles are handled by the
                        # least frontier edge of the triangle.
                        peers = [j for j in (iu, iv) if j in frontier_set]
                        if any(j < i for j in peers):
                            continue
                        visits += 1
                        tracker.add_cliques(1)
                        for j in (iu, iv):
                            if j not in frontier_set:
                                sup[j] -= 1
                                tracker.add_atomic()
                                meter.record(j)
                meter.settle(tracker)
                for i in frontier:
                    alive[i] = False
                remaining -= len(frontier)
    return BaselineResult("MSP", 2, 3, core, tracker, rounds, 1, visits,
                          memory_words=3 * len(edges))
