"""MSP-style k-truss baseline (Smith et al., HPEC 2017).

A bulk-synchronous truss decomposition: for each support level ``k``, the
whole live edge set is *rescanned* to build the deletion frontier, and the
sub-rounds within a level synchronize globally.  The repeated full scans
are what make MSP slower than the frontier-propagating PKT variants (the
paper measures ARB 2.35--7.65x faster than MSP), and they appear here as
genuine extra work rather than as a fudge factor.

Unlike PKT, a sub-round's kills land at the *end* of the sub-round
(frontier edges stay visible to every triangle check within it), so the
per-edge charge stream depends only on the sub-round's starting state and
the body is order-independent across frontier edges.  The body comes in
two engines: the scalar oracle :func:`_msp_subround_scalar` and the
vectorized :func:`repro.baselines.batchtruss.msp_subround_batch`
(``engine="batch"``), with bit-for-bit simulated-cost parity enforced by
tests/test_batch_baselines.py and rule PAR007.
"""

from __future__ import annotations

import numpy as np

from ..cliques.counting import edge_support
from ..graph.csr import CSRGraph
from ..parallel.atomics import ContentionMeter
from ..parallel.primitives import intersect_sorted
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .common import BaselineResult


def msp_decomposition(graph: CSRGraph,
                      tracker: CostTracker | None = None,
                      engine: str = "scalar") -> BaselineResult:
    """MSP-style bulk-synchronous truss decomposition ((2,3) only)."""
    tracker = tracker or CostTracker()
    use_batch = engine == "batch" and tracker.race_detector is None
    with tracker.phase("count"):
        support = edge_support(graph, tracker)
        tracker.add_cliques(sum(support.values()) // 3)
    edges = list(support)
    index = {e: i for i, e in enumerate(edges)}
    edge_arr = np.asarray(edges, dtype=np.int64).reshape(len(edges), 2)
    # MSP's support decrements are atomics too; shadow them (mediated)
    # when a race detector rides along on the tracker.
    sup = maybe_shadow(np.asarray([support[e] for e in edges],
                                  dtype=np.int64),
                       tracker, atomic=True, label="msp_support")
    alive = np.ones(len(edges), dtype=bool)
    core = {}
    rounds = 0
    visits = 0
    remaining = len(edges)
    level = 0
    meter = ContentionMeter()
    log_degree = np.maximum(1.0, np.log2(np.maximum(2, graph.degrees)))
    if use_batch:
        from .batchtruss import build_edge_index, msp_subround_batch
        eidx = build_edge_index(edge_arr, graph.n)

    with tracker.phase("peel"):
        while remaining:
            live = np.flatnonzero(alive)
            level = max(level, int(sup[live].min()))
            while True:
                # MSP keeps full-size support/bitmap arrays and rescans all
                # of them to build each sub-frontier -- the repeated full
                # scans that make it the slowest of the truss baselines.
                live = np.flatnonzero(alive)
                tracker.add_work(3.0 * len(edges))
                tracker.add_span(_log2(len(edges) + 2))
                frontier = live[sup[live] <= level]
                if frontier.size == 0:
                    break
                rounds += 1
                tracker.add_round()
                for i in frontier:
                    core[edges[int(i)]] = level
                if use_batch:
                    visits += msp_subround_batch(
                        frontier, graph, edge_arr, eidx, sup, alive,
                        log_degree, meter, tracker)
                else:
                    visits += _msp_subround_scalar(
                        frontier, graph, edges, index, sup, alive,
                        log_degree, meter, tracker)
                meter.settle(tracker)
                alive[frontier] = False
                remaining -= int(frontier.size)
    return BaselineResult("MSP", 2, 3, core, tracker, rounds, 1, visits,
                          memory_words=3 * len(edges))


def _msp_subround_scalar(frontier, graph: CSRGraph, edges, index, sup,
                         alive, log_degree, meter,
                         tracker: CostTracker) -> int:
    """Process one frontier sub-round one edge at a time, ascending id.

    The batch engine's registered oracle (PAR007).  Kills are applied by
    the driver after the sub-round; returns the triangle visit count.
    """
    visits = 0
    frontier_set = {int(i) for i in frontier}
    for i in frontier:
        i = int(i)
        u, v = edges[i]
        nbrs_u = graph.neighbors(u)
        nbrs_v = graph.neighbors(v)
        common = intersect_sorted(nbrs_u, nbrs_v, tracker=None)
        # Naive merge intersections, like PKT's but un-tuned.
        tracker.add_work(
            1.5 * float(min(nbrs_u.size, nbrs_v.size)) + 1.0)
        for w in map(int, common):
            # Binary searches over the adjacency array, like PKT's lookups.
            tracker.add_work(log_degree[u])
            iu = index[(u, w) if u < w else (w, u)]
            tracker.add_work(log_degree[v])
            iv = index[(v, w) if v < w else (w, v)]
            if ((not alive[iu] and iu not in frontier_set)
                    or (not alive[iv] and iv not in frontier_set)):
                continue  # triangle destroyed in an earlier round
            # Simultaneously-peeled triangles are handled by the
            # least frontier edge of the triangle.
            peers = [j for j in (iu, iv) if j in frontier_set]
            if any(j < i for j in peers):
                continue
            visits += 1
            tracker.add_cliques(1)
            for j in (iu, iv):
                if j not in frontier_set:
                    sup[j] -= 1
                    tracker.add_atomic()
                    meter.record(j)
    return visits
