"""Vectorized truss sub-rounds (``pkt_*``/``msp_decomposition(engine="batch")``).

The scalar oracles in :mod:`repro.baselines.pkt` and
:mod:`repro.baselines.msp` walk one Python iteration per frontier edge,
per common neighbor, and per support decrement; the engines here expand a
whole sub-round at once: one segmented gather of both endpoint
neighborhoods, one keyed segmented intersection, one vectorized edge-id
lookup (``searchsorted`` over the packed ``u * n + v`` keys), positional
liveness masks, and a ``np.unique`` scatter for the decrements.

The contract --- enforced by tests/test_batch_baselines.py and the bench
gate --- is that a batch run's *simulated* metrics are bit-for-bit
identical to the scalar oracle's.  Three facts make that possible (full
rules in docs/cost-model.md):

* the per-edge work stream (an intersection charge, then a pair of
  edge-id lookup charges per common neighbor) contains genuinely
  fractional values (``0.35 * min``, ``1.5 * min``, ``log deg``), and
  binary64 addition is order-sensitive --- so the flat charge stream is
  rebuilt in exact scalar order with
  :func:`~repro.parallel.primitives.interleave_segments` and replayed
  through
  :meth:`~repro.parallel.runtime.CostTracker.add_work_sequence`, which
  routes integer-valued elements to the exact bin and replays the
  fractional subsequence in order;
* PKT kills each frontier edge at the start of its own turn, so a
  triangle survives an event iff each side is either un-peeled or a
  *later-position* frontier edge --- a positional mask; MSP instead
  applies kills at the end of the sub-round, so its masks depend only on
  the sub-round's starting state;
* support only decreases within a sub-round, so the scalar
  append-at-crossing candidate list, deduplicated, equals the set of
  decremented edges whose final support is at or below the level.

Both engines require plain ndarray support counters, so the drivers fall
back to the scalar oracles when a race detector is attached.
"""

from __future__ import annotations

import numpy as np

from ..parallel.primitives import (intersect_segments, interleave_segments,
                                   segment_gather)
from ..parallel.runtime import CostTracker

#: Batch<->scalar parity contract, verified statically by ``repro lint
#: --strict`` (rule PAR007); regenerate fingerprints with
#: ``repro lint --strict --emit-registry`` after editing charges.
PARLINT_PARITY = {
    "pkt_subround_batch": {
        "oracle": "repro.baselines.pkt._pkt_subround_scalar",
        "fingerprint": {
            "add_atomic": 1,
            "add_cliques": 1,
            "add_work_sequence": 1,
        },
    },
    "msp_subround_batch": {
        "oracle": "repro.baselines.msp._msp_subround_scalar",
        "fingerprint": {
            "add_atomic": 1,
            "add_cliques": 1,
            "add_work_sequence": 1,
        },
    },
}


def build_edge_index(edge_arr: np.ndarray, n: int):
    """Pack the ``(u, v)`` edge list (``u < v``) for vectorized id lookup.

    Returns ``(keys_sorted, order, n)``: ``order[searchsorted(keys_sorted,
    a * n + b)]`` is the id of edge ``(a, b)`` --- the flat-array stand-in
    for the scalar oracles' ``index`` dict.  Host-side and charge-free;
    the simulated lookup cost is charged per probe by the kernels, exactly
    as the scalar loops charge their dict lookups.
    """
    keys = edge_arr[:, 0] * np.int64(n) + edge_arr[:, 1]
    order = np.argsort(keys, kind="stable")
    return keys[order], order.astype(np.int64), n


def _expand_triangles(frontier, graph, edge_arr, eidx,
                      intersection_cost: float, eid_binary_search: bool,
                      log_degree):
    """Expand one sub-round's triangle events and build the work stream.

    Returns ``(owner, iu, iv, work_seq)``: for every common neighbor
    ``w`` of a frontier edge ``(u, v)``, the frontier position of that
    edge and the ids of the side edges ``(u, w)`` and ``(v, w)``, in
    exact scalar visit order (ascending frontier position, then
    ascending ``w``), plus the scalar-ordered work charge stream the
    caller replays.  Tracker-free: the kernels own every charge.
    """
    keys_sorted, order, n = eidx
    u = edge_arr[frontier, 0]
    v = edge_arr[frontier, 1]
    offsets = graph.offsets
    targets = graph.targets
    du = (offsets[u + 1] - offsets[u]).astype(np.int64)
    dv = (offsets[v + 1] - offsets[v]).astype(np.int64)
    nb_u = segment_gather(targets, offsets[u], du)
    nb_v = segment_gather(targets, offsets[v], dv)
    common, clens = intersect_segments(nb_u, du, nb_v, dv)

    # The scalar charge stream per frontier edge: one intersection charge,
    # then an edge-id lookup charge per side of each triangle.  Fractional
    # values must replay in this exact order (binary64 is order-sensitive).
    head = intersection_cost * np.minimum(du, dv).astype(np.float64) + 1.0
    total_c = int(clens.sum())
    if eid_binary_search:
        cost_u = log_degree[u].astype(np.float64)
        cost_v = log_degree[v].astype(np.float64)
    else:
        cost_u = np.ones(frontier.size, dtype=np.float64)
        cost_v = np.ones(frontier.size, dtype=np.float64)
    # Every per-edge (cost_u, cost_v) block has even length, so the global
    # even/odd positions of the flat tail are the u/v sides respectively.
    tail = np.empty(2 * total_c, dtype=np.float64)
    tail[0::2] = np.repeat(cost_u, clens)
    tail[1::2] = np.repeat(cost_v, clens)
    work_seq = interleave_segments(head,
                                   np.ones(frontier.size, dtype=np.int64),
                                   tail, 2 * clens)

    owner = np.repeat(np.arange(frontier.size, dtype=np.int64), clens)
    fu = np.repeat(u, clens)
    fv = np.repeat(v, clens)
    lo = np.minimum(fu, common)
    hi = np.maximum(fu, common)
    iu = order[np.searchsorted(keys_sorted, lo * np.int64(n) + hi)]
    lo = np.minimum(fv, common)
    hi = np.maximum(fv, common)
    iv = order[np.searchsorted(keys_sorted, lo * np.int64(n) + hi)]
    return owner, iu, iv, work_seq


def _apply_decrements(targets, sup, meter):
    """Scatter support decrements and their contention, one per target.

    Tracker-free (the kernels charge the atomics); returns the unique
    decremented edge ids.
    """
    uniq, cnt = np.unique(targets, return_counts=True)
    sup[uniq] -= cnt
    for addr, count in zip(uniq.tolist(), cnt.tolist()):
        meter.record(int(addr), int(count))
    return uniq


def pkt_subround_batch(frontier, graph, edge_arr, eidx, sup, alive,
                       level: int, intersection_cost: float,
                       eid_binary_search: bool, log_degree, meter,
                       tracker: CostTracker):
    """Process one PKT frontier sub-round in batch mode.

    Mirrors :func:`repro.baselines.pkt._pkt_subround_scalar` charge for
    charge; returns the same ``(triangle_visits, candidates)`` up to
    candidate dedup (which the driver applies to both engines).
    """
    owner, iu, iv, work_seq = _expand_triangles(
        frontier, graph, edge_arr, eidx, intersection_cost,
        eid_binary_search, log_degree)
    tracker.add_work_sequence(work_seq)
    # PKT kills each frontier edge at the start of its own turn: a side
    # edge is live at event time iff it is an un-peeled non-frontier edge
    # or a strictly later-position frontier edge.
    pos = np.full(edge_arr.shape[0], -1, dtype=np.int64)
    pos[frontier] = np.arange(frontier.size, dtype=np.int64)
    pu = pos[iu]
    pv = pos[iv]
    live_u = np.where(pu >= 0, pu > owner, alive[iu])
    live_v = np.where(pv >= 0, pv > owner, alive[iv])
    ev = live_u & live_v
    n_ev = int(ev.sum())
    tracker.add_cliques(n_ev)
    targets = np.concatenate([iu[ev], iv[ev]])
    tracker.add_atomic(int(targets.size))
    uniq = _apply_decrements(targets, sup, meter)
    alive[frontier] = False
    # Support only decreases within the sub-round, so the oracle's
    # append-at-crossing candidates dedup to this final-support filter.
    cand = uniq[sup[uniq] <= level]
    return n_ev, cand


def msp_subround_batch(frontier, graph, edge_arr, eidx, sup, alive,
                       log_degree, meter, tracker: CostTracker) -> int:
    """Process one MSP frontier sub-round in batch mode.

    Mirrors :func:`repro.baselines.msp._msp_subround_scalar` charge for
    charge; kills are applied by the driver after the sub-round, exactly
    as for the oracle.  Returns the triangle visit count.
    """
    owner, iu, iv, work_seq = _expand_triangles(
        frontier, graph, edge_arr, eidx, 1.5, True, log_degree)
    tracker.add_work_sequence(work_seq)
    in_f = np.zeros(edge_arr.shape[0], dtype=bool)
    in_f[frontier] = True
    # Kills land at the end of the sub-round, so liveness is the starting
    # state; simultaneously-peeled triangles are handled by the least
    # frontier edge of the triangle.
    eid = frontier[owner]
    keep = alive[iu] & alive[iv]
    blocked = (in_f[iu] & (iu < eid)) | (in_f[iv] & (iv < eid))
    ev = keep & ~blocked
    n_ev = int(ev.sum())
    tracker.add_cliques(n_ev)
    targets = np.concatenate([iu[ev & ~in_f[iu]], iv[ev & ~in_f[iv]]])
    tracker.add_atomic(int(targets.size))
    _apply_decrements(targets, sup, meter)
    return n_ev
