"""Multi-node time model for the sharded execution engine.

The single-node :class:`~repro.parallel.runtime.MachineModel` already
carries the communication term (``comm_latency * messages +
comm_byte_time * bytes``); this module composes it across shards under
the BSP-style super-round structure the distributed peel driver
(:mod:`repro.distributed.peel`) executes:

* setup (orient / enumerate / build table / count / partition / bucket)
  runs once on the coordinator and is priced by the base model;
* each peeling super-round runs local peel work on every shard in
  parallel, so its compute cost is the *maximum* over shards of that
  shard's (work / effective(P) + span_factor * span) delta;
* each super-round ends with one batched exchange whose cost is the base
  model's communication term over the round's messages and bytes.

See docs/sharding.md for the closed form and worked examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..parallel.runtime import MachineModel

#: Simulated wire size of one exchange entry: a 64-bit cell id plus a
#: 32-bit packed decrement count.
ENTRY_BYTES = 12


@dataclass
class DistributedMachineModel:
    """Prices a :class:`~repro.distributed.peel.ShardedResult`.

    Parameters are inherited from the wrapped single-node ``base`` model;
    ``threads`` passed to :meth:`time` are *per shard* (each shard is one
    full node of the base machine).
    """

    base: MachineModel = field(default_factory=MachineModel)

    def comm_time(self, messages: int, n_bytes: int) -> float:
        """Simulated time of the exchanged messages (latency + bandwidth)."""
        return self.base.comm_cost(messages, n_bytes)

    def round_times(self, result, threads: int) -> list[dict]:
        """Per-super-round cost rows: compute max over shards, plus comm."""
        p = self.base.effective_parallelism(threads)
        rows = []
        for record, per_shard in zip(result.exchange_log,
                                     result.round_compute):
            compute = max(
                (work / p + self.base.span_factor * span
                 for work, span in per_shard), default=0.0)
            comm = self.comm_time(record["messages"], record["bytes"])
            rows.append({"round": record["round"], "level": record["level"],
                         "compute": compute, "comm": comm,
                         "time": compute + comm})
        return rows

    def time_breakdown(self, result, threads: int) -> dict:
        """Coordinator / compute / comm decomposition of the total time."""
        coordinator = self.base.time(result.tracker, threads)
        rounds = self.round_times(result, threads)
        compute = sum(row["compute"] for row in rounds)
        comm = sum(row["comm"] for row in rounds)
        return {"threads": threads, "n_shards": result.n_shards,
                "coordinator": coordinator, "compute": compute,
                "comm": comm, "time": coordinator + compute + comm}

    def time(self, result, threads: int) -> float:
        """Total simulated distributed time (see :meth:`time_breakdown`)."""
        return self.time_breakdown(result, threads)["time"]

    def speedup_vs_single(self, result, single_tracker, threads: int) -> float:
        """Single-node simulated time divided by the distributed time."""
        return self.base.time(single_tracker, threads) / self.time(
            result, threads)
