"""Graph partitioners for the sharded execution model.

Both partitioners assign every vertex to one of ``n_shards`` shards and
are fully deterministic (no RNG, no iteration-order dependence), so the
partition -- and therefore the simulated communication volume of the
distributed peel -- is reproducible bit for bit:

* :func:`hash_partition` -- the cheap baseline: a multiplicative hash of
  the vertex id, oblivious to structure.  Expected cut fraction is
  ``1 - 1/n_shards``.
* :func:`mincut_partition` -- greedy label-propagation refinement of the
  hash seed: sweep vertices in id order and move each to the shard
  holding the plurality of its neighbors, subject to a balance cap.
  Minimizing cut edges keeps s-cliques shard-local, which directly cuts
  the cross-shard count-decrement traffic (docs/sharding.md).

Partition quality is measured by
:func:`repro.graph.stats.partition_statistics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker

#: Knuth's multiplicative hash constant (golden ratio of 2^32).
_HASH_MULT = 2654435761
_HASH_MOD = 1 << 32


@dataclass(frozen=True)
class Partition:
    """A vertex -> shard assignment (``shard_of[v]`` in ``[0, n_shards)``)."""

    n_shards: int
    shard_of: np.ndarray
    partitioner: str

    def shard_sizes(self) -> np.ndarray:
        """Vertices per shard."""
        return np.bincount(self.shard_of, minlength=self.n_shards)


def hash_partition(graph: CSRGraph, n_shards: int,
                   tracker: CostTracker | None = None) -> Partition:
    """Structure-oblivious baseline: shard by multiplicative vertex hash."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    ids = np.arange(graph.n, dtype=np.uint64)
    shard = ((ids * _HASH_MULT) % _HASH_MOD) % n_shards
    if tracker is not None:
        tracker.add_work_int(graph.n)
    return Partition(n_shards, shard.astype(np.int64), "hash")


def mincut_partition(graph: CSRGraph, n_shards: int,
                     tracker: CostTracker | None = None,
                     sweeps: int = 4, slack: float = 1.1) -> Partition:
    """Greedy label propagation minimizing cut edges.

    Starting from :func:`hash_partition`, run up to ``sweeps`` passes over
    the vertices in ascending id order; move a vertex to the shard owning
    strictly more of its neighbors than its current shard does, unless the
    target shard is already at the balance cap
    ``ceil(n / n_shards * slack)``.  Ties break toward the lowest shard id
    (``np.argmax`` returns the first maximum), and sweeps stop early once
    a full pass moves nothing -- both choices keep the result
    deterministic.
    """
    seed = hash_partition(graph, n_shards, tracker)
    if n_shards == 1 or graph.n == 0:
        return Partition(n_shards, seed.shard_of.copy(), "mincut")
    shard = seed.shard_of.copy()
    sizes = np.bincount(shard, minlength=n_shards)
    cap = int(ceil(graph.n / n_shards * slack))
    for _ in range(sweeps):
        moved = 0
        for v in range(graph.n):
            neighbors = graph.neighbors(v)
            if tracker is not None:
                tracker.add_work_int(1 + int(neighbors.size))
            if neighbors.size == 0:
                continue
            tallies = np.bincount(shard[neighbors], minlength=n_shards)
            current = int(shard[v])
            best = int(np.argmax(tallies))
            if best == current or tallies[best] <= tallies[current]:
                continue
            if sizes[best] >= cap:
                continue
            shard[v] = best
            sizes[best] += 1
            sizes[current] -= 1
            moved += 1
        if moved == 0:
            break
    return Partition(n_shards, shard, "mincut")


PARTITIONERS = {
    "hash": hash_partition,
    "mincut": mincut_partition,
}
