"""Sharded multi-node execution model (docs/sharding.md).

Partition the vertex set (:mod:`repro.distributed.partition`), peel in
BSP super-rounds with batched cross-shard count-decrement exchanges
(:mod:`repro.distributed.peel`), and price the run with the composed
multi-node time model (:mod:`repro.distributed.model`).  Output is
bit-for-bit identical to the single-node decomposition.
"""

from .model import ENTRY_BYTES, DistributedMachineModel
from .partition import PARTITIONERS, Partition, hash_partition, \
    mincut_partition
from .peel import ShardedResult, sharded_nucleus_decomp

__all__ = [
    "ENTRY_BYTES",
    "DistributedMachineModel",
    "PARTITIONERS",
    "Partition",
    "hash_partition",
    "mincut_partition",
    "ShardedResult",
    "sharded_nucleus_decomp",
]
