"""Sharded (r,s) nucleus peeling with batched cross-shard exchanges.

The distributed execution model (docs/sharding.md):

* the graph itself is replicated read-only on every shard; the clique
  table's *count cells* are partitioned by owner --- the shard of the
  r-clique's minimum vertex under the chosen vertex partition;
* peeling proceeds in BSP super-rounds that mirror the single-node
  bucket rounds exactly: each shard re-discovers the s-cliques incident
  to the peeled r-cliques *it owns* (``local_peel`` phase), applying
  count decrements for owned cells directly and buffering decrements for
  remote cells in a per-shard outbox;
* between rounds, one batched ``exchange`` ships every outbox to the
  owning shards --- one message per (source, destination) pair, priced by
  the charged communication term (:meth:`MachineModel.comm_cost`) --- and
  the owners apply the deltas before re-bucketing.

Because the driver forces ``update_arithmetic="representative"`` (exact
integer deltas, so the floating-point count sums are independent of
application order) and replays the oracle's bucket rounds verbatim, the
resulting core numbers are **bit-for-bit identical** to the single-node
:func:`~repro.core.decomp.arb_nucleus_decomp` --- the differential suite
in tests/test_distributed.py pins this on every graph/(r,s)/shard-count
combination it runs.

:func:`_exchange_scalar` is the exchange oracle; the vectorized
:func:`repro.distributed.batchexchange.exchange_batch` kernel must match
it charge-for-charge on every tracker (``PARLINT_PARITY``).
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from itertools import combinations

import numpy as np

from ..bucketing import make_bucketing
from ..cliques.listing import rec_list_cliques
from ..core.config import NucleusConfig
from ..core.decomp import _PEELED, _PEELING, prepare_decomposition
from ..core.tables import CliqueTable
from ..graph.contraction import WorkingGraph
from ..graph.csr import CSRGraph
from ..observe.trace import TraceRecorder
from ..parallel.primitives import intersect_many
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .batchexchange import exchange_batch
from .model import ENTRY_BYTES
from .partition import PARTITIONERS, Partition


@dataclass
class ShardedResult:
    """Output of one sharded nucleus decomposition run.

    Core numbers (``as_dict`` / ``core_of``) are reported exactly like
    :class:`~repro.core.decomp.NucleusResult`, in original vertex ids.
    ``tracker`` is the coordinator (setup + partition + bucketing +
    barriers); per-shard peel and exchange charges live on
    ``shard_trackers`` and are priced by
    :class:`~repro.distributed.model.DistributedMachineModel`.
    """

    r: int
    s: int
    n_shards: int
    n_r_cliques: int
    n_s_cliques: int
    rho: int
    max_core: int
    tracker: CostTracker
    shard_trackers: list[CostTracker]
    partition: Partition
    config: NucleusConfig
    exchange_engine: str
    #: Per-round trace: (core level, r-cliques peeled, r-cliques updated).
    round_log: list[tuple[int, int, int]] = field(default_factory=list)
    #: Per-round exchange record: round / level / messages / bytes.
    exchange_log: list[dict] = field(default_factory=list)
    #: Per-round, per-shard (work delta, span delta) for the BSP max.
    round_compute: list[list[tuple[float, float]]] = \
        field(default_factory=list)
    comm_messages: int = 0
    comm_bytes: int = 0
    shard_traces: list[TraceRecorder] | None = None
    _cells: np.ndarray = field(repr=False, default=None)
    _cores: np.ndarray = field(repr=False, default=None)
    _table: CliqueTable = field(repr=False, default=None)
    _original_of: np.ndarray = field(repr=False, default=None)

    def as_dict(self) -> dict[tuple[int, ...], int]:
        """Map every r-clique to its (r,s)-clique-core number."""
        out = {}
        for cell, core in zip(self._cells, self._cores):
            clique = self._table.decode(int(cell))
            original = tuple(sorted(int(self._original_of[v]) for v in clique))
            out[original] = int(core)
        return out

    def core_histogram(self) -> dict[int, int]:
        """Number of r-cliques at each core value."""
        values, counts = np.unique(self._cores, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


class UpdateLedger:
    """The owner-side count store plus the per-round updated set ``U``.

    ``counts`` aliases the clique table's raw count array, so applying a
    delta here is applying it to the table.  ``fetch_sub`` simulates the
    owning shard's atomic fetch-and-subtract combined with a first-touch
    stamp (the same CAS pattern as the single-node ``last_round`` array)
    so each cell enters ``U`` at most once per super-round.
    """

    def __init__(self, counts: np.ndarray):
        self.counts = counts
        self.stamp = np.full(counts.shape[0], -1, dtype=np.int64)
        self.updated: list[int] = []
        self.round_id = -1

    def begin_round(self, round_id: int) -> None:
        self.round_id = round_id
        self.updated = []

    def fetch_sub(self, cell: int, amount: int, tracker: CostTracker) -> None:
        tracker.add_work_int(1)
        tracker.add_atomic(1)
        self.counts[cell] -= amount
        if self.stamp[cell] != self.round_id:
            self.stamp[cell] = self.round_id
            self.updated.append(int(cell))


class ExchangeBuffer:
    """One shard's outbox of cross-shard count decrements.

    Decrements for the same remote cell coalesce locally (``pending``
    accumulates, ``touched`` records each cell once per round), so the
    wire carries one entry per distinct remote cell --- the batching that
    amortizes the per-message latency.
    """

    def __init__(self, n_cells: int):
        self.pending = np.zeros(n_cells, dtype=np.int64)
        self.touched: list[int] = []
        self.stamp = np.full(n_cells, -1, dtype=np.int64)
        self.round_id = -1

    def begin_round(self, round_id: int) -> None:
        self.round_id = round_id

    def buffer_remote(self, cell: int, tracker: CostTracker) -> None:
        tracker.add_work_int(1)
        tracker.add_atomic(1)
        self.pending[cell] += 1
        if self.stamp[cell] != self.round_id:
            self.stamp[cell] = self.round_id
            self.touched.append(int(cell))

    def drain(self) -> tuple[np.ndarray, np.ndarray]:
        """Pop the buffered (cells, deltas), clearing the outbox."""
        cells = np.asarray(self.touched, dtype=np.int64)
        if cells.size:
            deltas = self.pending[cells].copy()
            self.pending[cells] = 0
        else:
            deltas = np.zeros(0, dtype=np.int64)
        self.touched = []
        return cells, deltas


def _exchange_scalar(cells, deltas, owner_of, ledger, dst_trackers,
                     tracker: CostTracker) -> tuple[int, int]:
    """Ship one shard's outbox to the owning shards, one entry at a time.

    The oracle for :func:`repro.distributed.batchexchange.exchange_batch`
    --- keep the two in lockstep when changing charges.  Entries are
    sorted by (destination, cell) and grouped into one message per
    destination shard; the *sender* pays the sort, the per-entry
    serialization work, and the communication charge (one
    ``add_comm(1, entries * ENTRY_BYTES)`` per message, so the total comm
    volume is exactly the sum of per-shard batch sizes --- nothing is
    double-charged); each *receiver* pays one work unit and one atomic
    per entry to apply the delta at the owned cell.

    Returns ``(messages, bytes)`` sent.
    """
    k = int(cells.size)
    if k == 0:
        return 0, 0
    tracker.add_work(k * _log2(k))  # sort the outbox by (dst, cell)
    order = sorted(range(k),
                   key=lambda i: (int(owner_of[cells[i]]), int(cells[i])))
    messages = 0
    total_bytes = 0
    start = 0
    while start < k:
        dst = int(owner_of[cells[order[start]]])
        end = start
        while end < k and int(owner_of[cells[order[end]]]) == dst:
            end += 1
        entries = end - start
        tracker.add_work_int(entries)  # serialize the batch
        tracker.add_comm(1, entries * ENTRY_BYTES)
        receiver = dst_trackers[dst]
        for i in order[start:end]:
            cell = int(cells[i])
            receiver.add_work_int(1)  # deserialize + locate the cell
            receiver.add_atomic(1)  # the owner's fetch-and-subtract
            ledger.counts[cell] -= int(deltas[i])
            if ledger.stamp[cell] != ledger.round_id:
                ledger.stamp[cell] = ledger.round_id
                ledger.updated.append(cell)
        messages += 1
        total_bytes += entries * ENTRY_BYTES
        start = end
    return messages, total_bytes


def _update_sharded_func(shard: int, s_clique: tuple, r: int, table,
                         status, owner_of, ledger, outbox,
                         tracker: CostTracker) -> None:
    """UPDATE-FUNC for one discovered s-clique, ownership-routed.

    Mirrors the single-node :func:`repro.core.decomp._update_func` in
    "representative" arithmetic: the same status walk and the same
    least-peeling-subset rule, but the surviving decrements route by cell
    owner --- owned cells apply through the ledger, remote cells buffer
    into the shard's outbox for the next exchange.
    """
    ordered = tuple(sorted(s_clique))
    tracker.add_work(float(len(s_clique)))
    alive_cells = []
    peeling = []
    for subset in combinations(ordered, r):
        cell = table.cell_of(subset)
        state = status[cell]
        if state == _PEELED:
            return  # an r-clique of this s-clique was peeled earlier
        if state == _PEELING:
            peeling.append(subset)
        else:
            alive_cells.append(cell)
    if not alive_cells:
        return
    # Representative rule: only the least peeling subset subtracts 1, so
    # the deltas are exact integers and the cross-shard application order
    # cannot perturb the floating-point sums (bit-for-bit oracle parity).
    if tuple(sorted(s_clique[:r])) != min(peeling):
        return
    for cell in alive_cells:
        if owner_of[cell] == shard:
            ledger.fetch_sub(cell, 1, tracker)
        else:
            outbox.buffer_remote(cell, tracker)


def _update_one_sharded(shard: int, clique: tuple, r: int, s: int, table,
                        dg, working, status, owner_of, ledger, outbox,
                        tracker: CostTracker) -> None:
    """UPDATE for one peeled r-clique owned by ``shard``."""
    if r == 1:
        candidates = working.neighbors(clique[0])
        tracker.add_work(1.0)
    else:
        candidates = intersect_many(
            [working.neighbors(v) for v in clique], tracker)
    if candidates.size < s - r:
        return

    def update_func(s_clique):
        _update_sharded_func(shard, s_clique, r, table, status, owner_of,
                             ledger, outbox, tracker)

    rec_list_cliques(dg, candidates, s - r, clique, update_func, tracker)


def _local_round(shard: int, mine: np.ndarray, r: int, s: int, graph_n: int,
                 table, dg, working, status, owner_of, ledger, outbox,
                 tracker: CostTracker) -> None:
    """One shard's local peel work for one super-round."""
    with tracker.phase("local_peel"):
        tracker.add_round()
        with tracker.parallel(int(mine.size)) as region:
            for cell in mine:
                with region.task():
                    clique = table.decode(int(cell))
                    _update_one_sharded(shard, clique, r, s, table, dg,
                                        working, status, owner_of, ledger,
                                        outbox, tracker)
                    # One O(log n) intersection per completion level.
                    tracker.add_span(_log2(graph_n) * (s - r + 1))


def _exchange_round(sts, outboxes, owner_of, ledger,
                    engine: str) -> tuple[int, int]:
    """Run the batched exchange for every shard's outbox.

    Every shard's ``exchange`` phase is open for the duration (the BSP
    communication step involves all nodes), entered dynamically so the
    per-shard phase bookkeeping stays symmetric.
    """
    total_messages = 0
    total_bytes = 0
    with ExitStack() as stack:
        for st in sts:
            stack.enter_context(st.phase("exchange"))
        for src, outbox in enumerate(outboxes):
            cells, deltas = outbox.drain()
            if engine == "batch":
                messages, n_bytes = exchange_batch(
                    cells, deltas, owner_of, ledger, sts, sts[src])
            else:
                messages, n_bytes = _exchange_scalar(
                    cells, deltas, owner_of, ledger, sts, sts[src])
            total_messages += messages
            total_bytes += n_bytes
    return total_messages, total_bytes


def _peel_sharded(graph_n: int, dg, working, table, buckets, ledger,
                  outboxes, status, cores, owner_of, sts, config,
                  tracker: CostTracker, n_r: int, r: int, s: int,
                  exchange_engine: str):
    """The BSP super-round loop (the sharded Algorithm 2, lines 23-29)."""
    n_shards = len(sts)
    finished = 0
    rho = 0
    round_id = 0
    max_core = 0
    round_log: list[tuple[int, int, int]] = []
    exchange_log: list[dict] = []
    round_compute: list[list[tuple[float, float]]] = []

    while finished < n_r:
        level, peel_cells = buckets.next_bucket()
        rho += 1
        tracker.add_round()
        max_core = max(max_core, level)
        cores[peel_cells] = level
        status[peel_cells] = _PEELING
        finished += peel_cells.size
        ledger.begin_round(round_id)
        starts = [(st.total.work, st.span) for st in sts]
        peel_owner = owner_of[peel_cells]
        for shard in range(n_shards):
            outboxes[shard].begin_round(round_id)
            mine = peel_cells[peel_owner == shard]
            if mine.size == 0:
                continue
            table.tracker = sts[shard]
            _local_round(shard, mine, r, s, graph_n, table, dg, working,
                         status, owner_of, ledger, outboxes[shard],
                         sts[shard])
        table.tracker = None
        messages, n_bytes = _exchange_round(sts, outboxes, owner_of, ledger,
                                            exchange_engine)
        exchange_log.append({"round": round_id, "level": int(level),
                             "messages": messages, "bytes": n_bytes})
        round_compute.append(
            [(st.total.work - w0, st.span - s0)
             for st, (w0, s0) in zip(sts, starts)])
        updated = np.asarray(ledger.updated, dtype=np.int64)
        round_log.append((int(level), int(peel_cells.size),
                          int(updated.size)))
        status[peel_cells] = _PEELED
        if updated.size:
            new_values = np.rint(ledger.counts[updated]).astype(np.int64)
            buckets.update(updated, new_values)
        round_id += 1
    return rho, max_core, round_log, exchange_log, round_compute


def sharded_nucleus_decomp(graph: CSRGraph, r: int, s: int, n_shards: int,
                           partitioner: str = "mincut",
                           config: NucleusConfig | None = None,
                           tracker: CostTracker | None = None,
                           exchange_engine: str = "batch",
                           partition: Partition | None = None
                           ) -> ShardedResult:
    """Compute the (r, s) nucleus decomposition on ``n_shards`` nodes.

    Setup (orientation, enumeration, table build, counting) runs on the
    coordinator ``tracker`` exactly as on one node; peeling runs as BSP
    super-rounds with per-shard trackers and batched exchanges.  The
    output is bit-for-bit identical to
    :func:`~repro.core.decomp.arb_nucleus_decomp` on the same graph.

    ``update_arithmetic`` is forced to ``"representative"`` (exact
    integer deltas commute across shards) and ``contraction`` off (a
    shared-memory-only optimization); the batch peel engine likewise does
    not apply --- the distributed driver's vectorized kernel is the
    exchange (``exchange_engine="batch"``, oracle ``"scalar"``).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if partitioner not in PARTITIONERS:
        raise ValueError(f"unknown partitioner {partitioner!r}; "
                         f"choose from {sorted(PARTITIONERS)}")
    if config is None:
        config = NucleusConfig.optimal(r, s)
    config = replace(config, update_arithmetic="representative",
                     contraction=False)
    prep = prepare_decomposition(graph, r, s, config, tracker)
    config, tracker = prep.config, prep.tracker
    work_graph, dg, table = prep.work_graph, prep.dg, prep.table
    original_of, n_r, n_s = prep.original_of, prep.n_r, prep.n_s

    with tracker.phase("partition"):
        if partition is None:
            partition = PARTITIONERS[partitioner](graph, n_shards, tracker)
        elif partition.n_shards != n_shards:
            raise ValueError("partition.n_shards != n_shards")

    shard_trackers = [CostTracker() for _ in range(n_shards)]
    shard_traces = None
    for k, st in enumerate(shard_trackers):
        st.race_detector = tracker.race_detector
    if tracker.trace is not None:
        shard_traces = [TraceRecorder(task_limit=tracker.trace.task_limit,
                                      lanes=tracker.trace.lanes, shard=k)
                        for k in range(n_shards)]
        for st, recorder in zip(shard_trackers, shard_traces):
            st.trace = recorder

    if n_r == 0:
        return ShardedResult(
            r, s, n_shards, 0, 0, 0, 0, tracker, shard_trackers, partition,
            config, exchange_engine, [], [], [], 0, 0, shard_traces,
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            table, original_of)

    cells = table.occupied_cells()
    with tracker.phase("shard_map"):
        # Cell ownership: the shard of the r-clique's minimum vertex (in
        # original ids).  decode_many charges the coordinator for the
        # one-time ownership scan.
        cliques, _, _ = table.decode_many(cells)
        shard_of_work = partition.shard_of[original_of]
        owner_of = np.full(table.total_cells, -1, dtype=np.int64)
        owner_of[cells] = shard_of_work[np.min(cliques, axis=1)]
    counts0 = np.rint(table.counts[cells]).astype(np.int64)
    with tracker.phase("bucket"):
        buckets = make_bucketing(config.bucketing, cells, counts0,
                                 tracker=tracker, window=config.bucket_window)

    status = maybe_shadow(np.zeros(table.total_cells, dtype=np.int8),
                          tracker, label="status")
    cores = maybe_shadow(np.zeros(table.total_cells, dtype=np.int64),
                         tracker, label="cores")
    ledger = UpdateLedger(table.counts)
    outboxes = [ExchangeBuffer(table.total_cells) for _ in range(n_shards)]
    working = WorkingGraph(work_graph)

    # Per-shard charges are explicit during peeling; the table's own
    # tracker is re-pointed at the active shard inside each local round.
    table.tracker = None
    with tracker.phase("peel"):
        rho, max_core, round_log, exchange_log, round_compute = \
            _peel_sharded(graph.n, dg, working, table, buckets, ledger,
                          outboxes, status, cores, owner_of, shard_trackers,
                          config, tracker, n_r, r, s, exchange_engine)

    table.tracker = None  # post-run queries should not keep charging
    order = np.argsort(cells, kind="stable")
    return ShardedResult(
        r=r, s=s, n_shards=n_shards, n_r_cliques=n_r, n_s_cliques=n_s,
        rho=rho, max_core=max_core, tracker=tracker,
        shard_trackers=shard_trackers, partition=partition, config=config,
        exchange_engine=exchange_engine, round_log=round_log,
        exchange_log=exchange_log, round_compute=round_compute,
        comm_messages=sum(st.total.comm_messages for st in shard_trackers),
        comm_bytes=sum(st.total.comm_bytes for st in shard_trackers),
        shard_traces=shard_traces,
        _cells=cells[order], _cores=cores[cells[order]], _table=table,
        _original_of=original_of)
