"""Vectorized cross-shard exchange kernel.

:func:`exchange_batch` replays the charges of the scalar exchange oracle
(:func:`repro.distributed.peel._exchange_scalar`) in bulk: one stable
lexsort by (destination, cell) replaces the per-entry comparison sort,
group boundaries come from one ``diff`` pass, and the owner-side delta
application is a single fancy-indexed subtraction (outbox cells are
unique, so no scatter conflicts).  Totals on every tracker --- the
sender's sort/serialize work and communication charges, each receiver's
apply work and atomics --- are identical to the oracle's, as is the
ledger state it leaves behind (tests/test_distributed.py pins both).
"""

from __future__ import annotations

import numpy as np

from ..parallel.runtime import CostTracker, _log2
from .model import ENTRY_BYTES

PARLINT_PARITY = {
    "exchange_batch": {
        "oracle": "repro.distributed.peel._exchange_scalar",
        "fingerprint": {
            "add_atomic": 1,
            "add_comm": 1,
            "add_work": 1,
            "add_work_int": 2,
        },
    },
}


def exchange_batch(cells, deltas, owner_of, ledger, dst_trackers,
                   tracker: CostTracker) -> tuple[int, int]:
    """Ship one shard's outbox to the owning shards, vectorized.

    Same protocol and charges as the scalar oracle: the sender pays the
    (dst, cell) sort and per-entry serialization plus one
    ``add_comm(1, entries * ENTRY_BYTES)`` per destination batch; each
    receiver pays one work unit and one atomic per entry.  Returns
    ``(messages, bytes)`` sent.
    """
    k = int(cells.size)
    if k == 0:
        return 0, 0
    tracker.add_work(k * _log2(k))  # sort the outbox by (dst, cell)
    owners = owner_of[cells]
    order = np.lexsort((cells, owners))
    sorted_cells = cells[order]
    sorted_deltas = deltas[order]
    sorted_owners = owners[order]
    boundaries = np.flatnonzero(np.diff(sorted_owners)) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
    ends = np.concatenate([boundaries, np.full(1, k, dtype=np.int64)])
    total_bytes = 0
    for start, end in zip(starts, ends):  # one iteration per destination
        entries = int(end - start)
        tracker.add_work_int(entries)  # serialize the batch
        tracker.add_comm(1, entries * ENTRY_BYTES)
        receiver = dst_trackers[int(sorted_owners[start])]
        receiver.add_work_int(entries)  # deserialize + locate the cells
        receiver.add_atomic(entries)  # the owners' fetch-and-subtracts
        total_bytes += entries * ENTRY_BYTES
    ledger.counts[sorted_cells] -= sorted_deltas
    fresh_cells = sorted_cells[ledger.stamp[sorted_cells] != ledger.round_id]
    ledger.stamp[fresh_cells] = ledger.round_id
    ledger.updated.extend(int(cell) for cell in fresh_cells)
    return int(starts.size), total_bytes
