"""Graph contraction for (2,3) nucleus (truss) decomposition (Section 5.6).

When many edges have been peeled, iterating over them during neighborhood
intersections is wasted work.  The paper periodically filters peeled edges
out of adjacency lists, using two heuristics chosen on real graphs:

* contract only when the number of edges peeled since the previous
  contraction is at least ``2 n``;
* rebuild only the adjacency lists of vertices that lost at least a
  quarter of their neighbors since the previous contraction.

This optimization is specific to r = 2: a peeled r-clique for r > 2 has no
natural edge to remove, since its edges may support other live r-cliques.
"""

from __future__ import annotations

import numpy as np

from ..parallel.runtime import CostTracker, _log2
from .csr import CSRGraph


class WorkingGraph:
    """A mutable adjacency view over a :class:`CSRGraph`.

    Starts as zero-copy views into the CSR arrays; contraction replaces
    individual adjacency lists with filtered copies.  Neighbor arrays stay
    sorted, so intersection code is unaffected.
    """

    def __init__(self, graph: CSRGraph):
        self.n = graph.n
        self._adj: list[np.ndarray] = [graph.neighbors(v) for v in range(graph.n)]

    def neighbors(self, v: int) -> np.ndarray:
        return self._adj[v]

    def degree(self, v: int) -> int:
        return int(self._adj[v].size)

    def replace(self, v: int, neighbors: np.ndarray) -> None:
        self._adj[v] = neighbors


class ContractionManager:
    """Implements the Section 5.6 heuristics over a :class:`WorkingGraph`."""

    #: Contract when peeled-since-last >= PEEL_FACTOR * n.
    PEEL_FACTOR = 2
    #: Rebuild a vertex that lost >= its degree / LOSS_DIVISOR neighbors.
    LOSS_DIVISOR = 4

    def __init__(self, working: WorkingGraph, tracker: CostTracker | None = None):
        self.working = working
        self.tracker = tracker
        self._peeled_since = 0
        self._lost_since = np.zeros(working.n, dtype=np.int64)
        self.contractions = 0

    def note_peeled_edge(self, u: int, v: int) -> None:
        """Record that edge (u, v) was peeled this round."""
        self._peeled_since += 1
        self._lost_since[u] += 1
        self._lost_since[v] += 1

    def maybe_contract(self, edge_alive, edges_alive_many=None) -> bool:
        """Contract if the heuristics fire.

        ``edge_alive(u, v)`` must report whether the undirected edge still
        carries a live (unpeeled) 2-clique.  ``edges_alive_many``, if given,
        answers the same question for an ``(m, 2)`` batch of edges at once
        (returning a boolean mask) and must charge the identical simulated
        costs in the identical order as ``m`` ``edge_alive`` calls --- the
        batch engine supplies one built on ``CliqueTable.lookup_many``.
        Rebuild decisions only read each vertex's own adjacency list, so
        batching the liveness checks cannot change which vertices rebuild.
        Returns True if a contraction happened.
        """
        if self._peeled_since < self.PEEL_FACTOR * self.working.n:
            return False
        self.contractions += 1
        rebuilt_work = 0
        if edges_alive_many is not None:
            rebuild = [v for v in range(self.working.n)
                       if self.working.degree(v) > 0
                       and self._lost_since[v] * self.LOSS_DIVISOR
                       >= self.working.degree(v)]
            sizes = [self.working.degree(v) for v in rebuild]
            if rebuild:
                pairs = np.empty((sum(sizes), 2), dtype=np.int64)
                pairs[:, 0] = np.repeat(np.asarray(rebuild, dtype=np.int64),
                                        sizes)
                pairs[:, 1] = np.concatenate(
                    [self.working.neighbors(v) for v in rebuild])
                alive = edges_alive_many(pairs)
                offset = 0
                for v, size in zip(rebuild, sizes):
                    kept = self.working.neighbors(v)[
                        alive[offset:offset + size]].astype(np.int64)
                    offset += size
                    self.working.replace(v, kept)
                    rebuilt_work += size
                    self._lost_since[v] = 0
        else:
            # Charged in aggregate below: n for the scan + rebuilt_work
            # for the filters (same totals as the batched branch).
            for v in range(self.working.n):
                degree = self.working.degree(v)
                if degree == 0 or \
                        self._lost_since[v] * self.LOSS_DIVISOR < degree:
                    continue
                nbrs = self.working.neighbors(v)
                kept = np.asarray(
                    [w for w in nbrs if edge_alive(int(v), int(w))],
                    dtype=np.int64)
                self.working.replace(v, kept)
                rebuilt_work += degree
                self._lost_since[v] = 0
        if self.tracker is not None:
            # Checking every vertex plus the parallel filters that rebuilt.
            self.tracker.add_work(float(self.working.n + rebuilt_work))
            self.tracker.add_span(_log2(self.working.n + rebuilt_work))
        self._peeled_since = 0
        return True
