"""Undirected graphs in compressed sparse row (CSR) format.

The paper stores graphs in CSR in practice (Section 3).  :class:`CSRGraph`
is the immutable undirected substrate every algorithm here runs on: vertex
ids are ``0..n-1``, adjacency lists are sorted numpy slices, and edges are
stored symmetrically (each undirected edge appears in both endpoints'
lists).  ``m`` counts undirected edges.
"""

from __future__ import annotations

import numpy as np


class CSRGraph:
    """An immutable, simple, undirected graph in CSR form.

    Construct via :meth:`from_edges` (cleans the input: drops self-loops,
    deduplicates, symmetrizes) or :meth:`from_adjacency`.
    """

    def __init__(self, offsets: np.ndarray, targets: np.ndarray):
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if int(self.offsets[-1]) != self.targets.size:
            raise ValueError("offsets[-1] must equal len(targets)")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges) -> "CSRGraph":
        """Build from an iterable / array of (u, v) pairs.

        Self-loops are removed, duplicates and both orientations collapse to
        one undirected edge, and vertex ids must lie in ``[0, n)``.
        """
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                         dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("edges must be pairs")
        if arr.size and (arr.min() < 0 or arr.max() >= n):
            raise ValueError("vertex id out of range")
        u, v = arr[:, 0], arr[:, 1]
        keep = u != v
        u, v = u[keep], v[keep]
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        if lo.size:
            packed = lo * np.int64(n) + hi
            packed = np.unique(packed)
            lo, hi = packed // n, packed % n
        both_src = np.concatenate([lo, hi])
        both_dst = np.concatenate([hi, lo])
        order = np.lexsort((both_dst, both_src))
        both_src, both_dst = both_src[order], both_dst[order]
        offsets = np.zeros(n + 1, dtype=np.int64)
        counts = np.bincount(both_src, minlength=n)
        offsets[1:] = np.cumsum(counts)
        return cls(offsets, both_dst)

    @classmethod
    def from_adjacency(cls, adjacency: list) -> "CSRGraph":
        """Build from a list of per-vertex neighbor iterables (symmetric)."""
        edges = [(u, v) for u, nbrs in enumerate(adjacency) for v in nbrs]
        return cls.from_edges(len(adjacency), edges)

    # -- basic queries -------------------------------------------------------

    @property
    def n(self) -> int:
        return self.offsets.size - 1

    @property
    def m(self) -> int:
        return self.targets.size // 2

    def degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (a view, do not mutate)."""
        return self.targets[self.offsets[v]:self.offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return i < nbrs.size and nbrs[i] == v

    def edges(self) -> np.ndarray:
        """All undirected edges as an (m, 2) array with u < v."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        mask = src < self.targets
        return np.column_stack([src[mask], self.targets[mask]])

    # -- derived graphs -------------------------------------------------------

    def relabeled(self, new_id: np.ndarray) -> "CSRGraph":
        """The same graph with vertex ``v`` renamed ``new_id[v]``."""
        new_id = np.asarray(new_id, dtype=np.int64)
        if new_id.size != self.n or np.unique(new_id).size != self.n:
            raise ValueError("new_id must be a permutation of 0..n-1")
        edges = self.edges()
        return CSRGraph.from_edges(self.n, np.column_stack(
            [new_id[edges[:, 0]], new_id[edges[:, 1]]]))

    def induced_subgraph(self, vertices) -> tuple["CSRGraph", np.ndarray]:
        """The subgraph induced by ``vertices``.

        Returns ``(subgraph, originals)`` where ``originals[i]`` is the
        original id of the subgraph's vertex ``i``.
        """
        verts = np.unique(np.asarray(vertices, dtype=np.int64))
        local = -np.ones(self.n, dtype=np.int64)
        local[verts] = np.arange(verts.size)
        edges = self.edges()
        mask = (local[edges[:, 0]] >= 0) & (local[edges[:, 1]] >= 0)
        kept = edges[mask]
        sub = CSRGraph.from_edges(
            verts.size, np.column_stack([local[kept[:, 0]], local[kept[:, 1]]]))
        return sub, verts

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m})"


class DirectedGraph:
    """An oriented graph: each vertex's *out*-neighbors, sorted ascending.

    Produced by applying an acyclic orientation (a vertex ranking) to a
    :class:`CSRGraph`; the nucleus algorithms only ever consult
    out-neighborhoods, whose sizes the O(alpha)-orientation bounds.
    """

    def __init__(self, offsets: np.ndarray, targets: np.ndarray):
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)

    @classmethod
    def orient(cls, graph: CSRGraph, rank: np.ndarray) -> "DirectedGraph":
        """Direct each edge from lower ``rank`` to higher ``rank``.

        Ties are impossible because ``rank`` must be a permutation.
        """
        rank = np.asarray(rank, dtype=np.int64)
        edges = graph.edges()
        u, v = edges[:, 0], edges[:, 1]
        forward = rank[u] < rank[v]
        src = np.where(forward, u, v)
        dst = np.where(forward, v, u)
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        offsets = np.zeros(graph.n + 1, dtype=np.int64)
        offsets[1:] = np.cumsum(np.bincount(src, minlength=graph.n))
        return cls(offsets, dst)

    @property
    def n(self) -> int:
        return self.offsets.size - 1

    @property
    def m(self) -> int:
        return self.targets.size

    def out_neighbors(self, v: int) -> np.ndarray:
        return self.targets[self.offsets[v]:self.offsets[v + 1]]

    def out_degree(self, v: int) -> int:
        return int(self.offsets[v + 1] - self.offsets[v])

    @property
    def out_degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def max_out_degree(self) -> int:
        degs = self.out_degrees
        return int(degs.max()) if degs.size else 0

    def __repr__(self) -> str:
        return f"DirectedGraph(n={self.n}, m={self.m}, max_out={self.max_out_degree})"
