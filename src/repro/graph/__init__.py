"""Graph substrate: CSR storage, IO, generators, datasets, transforms."""

from .contraction import ContractionManager, WorkingGraph
from .csr import CSRGraph, DirectedGraph
from .datasets import DATASETS, dataset_names, load_dataset
from .generators import (barabasi_albert, complete_graph, cycle_graph,
                         erdos_renyi, figure1_graph, planted_partition,
                         rmat_graph, star_graph)
from .io import read_edge_list, write_edge_list
from .relabel import relabel_by_rank
from .stats import (GraphProfile, average_local_clustering,
                    degree_statistics, global_clustering_coefficient,
                    profile_graph)

__all__ = [
    "CSRGraph", "DirectedGraph",
    "read_edge_list", "write_edge_list",
    "rmat_graph", "erdos_renyi", "barabasi_albert", "planted_partition",
    "complete_graph", "cycle_graph", "star_graph", "figure1_graph",
    "DATASETS", "dataset_names", "load_dataset",
    "relabel_by_rank", "WorkingGraph", "ContractionManager",
    "profile_graph", "GraphProfile", "degree_statistics",
    "global_clustering_coefficient", "average_local_clustering",
]
