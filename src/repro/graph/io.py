"""Reading and writing graphs in SNAP edge-list format.

The paper's inputs are SNAP graphs distributed as whitespace-separated
edge lists with ``#`` comment lines (often gzip-compressed).  This module
parses that format (and writes it back), compacting arbitrary vertex ids
to ``0..n-1``.
"""

from __future__ import annotations

import gzip

import numpy as np

from .csr import CSRGraph


def _open_text(path, mode: str = "rt"):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode)
    return open(path, mode.rstrip("t") or "r")


def read_edge_list(path, relabel: bool = True) -> CSRGraph:
    """Read a SNAP-style edge list file into a :class:`CSRGraph`.

    Lines starting with ``#`` or ``%`` are comments.  Each remaining line
    holds two integer ids (any extra columns, e.g. weights, are ignored).
    With ``relabel=True`` (default) ids are compacted to ``0..n-1`` in
    sorted order of the original ids.  Files ending in ``.gz`` are
    decompressed transparently (SNAP's distribution format).
    """
    sources, targets = [], []
    with _open_text(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            sources.append(int(parts[0]))
            targets.append(int(parts[1]))
    if not sources:
        return CSRGraph.from_edges(0 if relabel else 1, [])
    u = np.asarray(sources, dtype=np.int64)
    v = np.asarray(targets, dtype=np.int64)
    if relabel:
        ids = np.unique(np.concatenate([u, v]))
        u = np.searchsorted(ids, u)
        v = np.searchsorted(ids, v)
        n = ids.size
    else:
        n = int(max(u.max(), v.max())) + 1
    return CSRGraph.from_edges(n, np.column_stack([u, v]))


def write_edge_list(graph: CSRGraph, path, header: str | None = None) -> None:
    """Write ``graph`` as a SNAP-style edge list (each edge once, u < v);
    a ``.gz`` suffix selects gzip compression."""
    with _open_text(path, "wt") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# n={graph.n} m={graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
