"""Structural graph statistics.

Descriptive statistics used by the CLI, the dataset documentation, and the
experiment harness when characterizing inputs: degree distribution moments,
clustering coefficients, a one-call profile combining them with degeneracy
and clique counts, and partition-quality statistics for the sharded
execution model (:mod:`repro.distributed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from ..cliques.counting import triangle_count
from ..cliques.orient import degeneracy
from .csr import CSRGraph


def degree_statistics(graph: CSRGraph) -> dict:
    """Min / max / mean / median degree and the degree skew."""
    degrees = graph.degrees
    if degrees.size == 0:
        return {"min": 0, "max": 0, "mean": 0.0, "median": 0.0, "skew": 0.0}
    mean = float(degrees.mean())
    std = float(degrees.std())
    skew = 0.0
    if std > 0:
        skew = float(((degrees - mean) ** 3).mean() / std ** 3)
    return {"min": int(degrees.min()), "max": int(degrees.max()),
            "mean": mean, "median": float(np.median(degrees)), "skew": skew}


def global_clustering_coefficient(graph: CSRGraph) -> float:
    """Transitivity: 3 * triangles / wedges."""
    degrees = graph.degrees.astype(np.int64)
    wedges = int((degrees * (degrees - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def average_local_clustering(graph: CSRGraph, sample: int | None = None,
                             seed: int = 0) -> float:
    """Mean local clustering coefficient (optionally vertex-sampled)."""
    vertices = np.arange(graph.n)
    if sample is not None and sample < graph.n:
        rng = np.random.default_rng(seed)
        vertices = rng.choice(graph.n, size=sample, replace=False)
    total = 0.0
    counted = 0
    for v in vertices:
        nbrs = graph.neighbors(int(v))
        k = nbrs.size
        if k < 2:
            continue
        links = 0
        nbr_set = set(map(int, nbrs))
        for u in nbrs:
            links += sum(1 for w in graph.neighbors(int(u))
                         if int(w) > int(u) and int(w) in nbr_set)
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0


@dataclass
class GraphProfile:
    """One-call structural profile of a graph."""

    n: int
    m: int
    degree: dict
    degeneracy: int
    triangles: int
    transitivity: float

    def as_dict(self) -> dict:
        return {"n": self.n, "m": self.m, "degree": self.degree,
                "degeneracy": self.degeneracy, "triangles": self.triangles,
                "transitivity": self.transitivity}


def profile_graph(graph: CSRGraph) -> GraphProfile:
    """Compute the full :class:`GraphProfile` for ``graph``."""
    return GraphProfile(
        n=graph.n, m=graph.m,
        degree=degree_statistics(graph),
        degeneracy=degeneracy(graph) if graph.m else 0,
        triangles=triangle_count(graph),
        transitivity=global_clustering_coefficient(graph))


def estimated_clique_spill(cut_fraction: float, s: int) -> float:
    """Estimated fraction of s-cliques with at least one cut edge.

    Under the null model where each of the ``comb(s, 2)`` clique edges is
    cut independently with probability ``cut_fraction``, the chance an
    s-clique stays shard-internal is ``(1 - cut)^C(s,2)``; the complement
    estimates the spill the distributed peel must pay communication for.
    """
    return 1.0 - (1.0 - cut_fraction) ** comb(s, 2)


def partition_statistics(graph: CSRGraph, shard_of, n_shards: int,
                         s: int | None = None) -> dict:
    """Partition-quality report for a vertex -> shard assignment.

    Returns edge-cut count and fraction, shard sizes and imbalance
    (largest shard over the ideal ``n / n_shards``), the *exact*
    cross-shard triangle spill (triangles minus the shard-internal
    triangles of every induced subgraph), and --- when ``s`` is given ---
    the modeled s-clique spill fraction
    (:func:`estimated_clique_spill`).
    """
    shard_of = np.asarray(shard_of, dtype=np.int64)
    sizes = np.bincount(shard_of, minlength=n_shards)
    edges = graph.edges()
    edge_cut = int((shard_of[edges[:, 0]] != shard_of[edges[:, 1]]).sum())
    cut_fraction = edge_cut / graph.m if graph.m else 0.0
    ideal = graph.n / n_shards if n_shards else 0.0
    triangles = triangle_count(graph)
    internal = 0
    for shard in range(n_shards):
        members = np.flatnonzero(shard_of == shard)
        if members.size:
            subgraph, _ = graph.induced_subgraph(members)
            internal += triangle_count(subgraph)
    stats = {
        "n_shards": n_shards,
        "shard_sizes": [int(size) for size in sizes],
        "imbalance": float(sizes.max() / ideal) if graph.n else 1.0,
        "edge_cut": edge_cut,
        "cut_fraction": float(cut_fraction),
        "triangles": triangles,
        "triangle_spill": triangles - internal,
        "triangle_spill_fraction":
            (triangles - internal) / triangles if triangles else 0.0,
    }
    if s is not None:
        stats["s_clique_spill_estimate"] = estimated_clique_spill(
            cut_fraction, s)
    return stats
