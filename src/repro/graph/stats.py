"""Structural graph statistics.

Descriptive statistics used by the CLI, the dataset documentation, and the
experiment harness when characterizing inputs: degree distribution moments,
clustering coefficients, and a one-call profile combining them with
degeneracy and clique counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cliques.counting import triangle_count
from ..cliques.orient import degeneracy
from .csr import CSRGraph


def degree_statistics(graph: CSRGraph) -> dict:
    """Min / max / mean / median degree and the degree skew."""
    degrees = graph.degrees
    if degrees.size == 0:
        return {"min": 0, "max": 0, "mean": 0.0, "median": 0.0, "skew": 0.0}
    mean = float(degrees.mean())
    std = float(degrees.std())
    skew = 0.0
    if std > 0:
        skew = float(((degrees - mean) ** 3).mean() / std ** 3)
    return {"min": int(degrees.min()), "max": int(degrees.max()),
            "mean": mean, "median": float(np.median(degrees)), "skew": skew}


def global_clustering_coefficient(graph: CSRGraph) -> float:
    """Transitivity: 3 * triangles / wedges."""
    degrees = graph.degrees.astype(np.int64)
    wedges = int((degrees * (degrees - 1) // 2).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(graph) / wedges


def average_local_clustering(graph: CSRGraph, sample: int | None = None,
                             seed: int = 0) -> float:
    """Mean local clustering coefficient (optionally vertex-sampled)."""
    vertices = np.arange(graph.n)
    if sample is not None and sample < graph.n:
        rng = np.random.default_rng(seed)
        vertices = rng.choice(graph.n, size=sample, replace=False)
    total = 0.0
    counted = 0
    for v in vertices:
        nbrs = graph.neighbors(int(v))
        k = nbrs.size
        if k < 2:
            continue
        links = 0
        nbr_set = set(map(int, nbrs))
        for u in nbrs:
            links += sum(1 for w in graph.neighbors(int(u))
                         if int(w) > int(u) and int(w) in nbr_set)
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    return total / counted if counted else 0.0


@dataclass
class GraphProfile:
    """One-call structural profile of a graph."""

    n: int
    m: int
    degree: dict
    degeneracy: int
    triangles: int
    transitivity: float

    def as_dict(self) -> dict:
        return {"n": self.n, "m": self.m, "degree": self.degree,
                "degeneracy": self.degeneracy, "triangles": self.triangles,
                "transitivity": self.transitivity}


def profile_graph(graph: CSRGraph) -> GraphProfile:
    """Compute the full :class:`GraphProfile` for ``graph``."""
    return GraphProfile(
        n=graph.n, m=graph.m,
        degree=degree_statistics(graph),
        degeneracy=degeneracy(graph) if graph.m else 0,
        triangles=triangle_count(graph),
        transitivity=global_clustering_coefficient(graph))
