"""Synthetic graph generators.

Provides the rMAT generator the paper's Figure 15 uses (with the paper's
parameters ``a=0.5, b=c=0.1, d=0.3`` and duplicate removal), standard random
models for testing, and the worked example graph of the paper's Figure 1,
whose clique structure is specified exactly in Section 4.2 and therefore
doubles as a correctness oracle.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph


def rmat_graph(scale: int, edge_factor: int, a: float = 0.5, b: float = 0.1,
               c: float = 0.1, d: float = 0.3, seed: int = 0) -> CSRGraph:
    """An rMAT graph with ``n = 2**scale`` vertices (Chakrabarti et al.).

    ``edge_factor * n`` directed edge samples are drawn by recursively
    descending the adjacency matrix with quadrant probabilities
    ``(a, b, c, d)``; self-loops and duplicates are removed, matching the
    paper's Section 6.1 / Figure 15 setup, so the realized ``m`` is below
    ``edge_factor * n``.
    """
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError("rMAT probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    n_samples = edge_factor * n
    rows = np.zeros(n_samples, dtype=np.int64)
    cols = np.zeros(n_samples, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(n_samples)
        # Quadrants in order: (0,0)=a, (0,1)=b, (1,0)=c, (1,1)=d.
        go_down = r >= a + b
        go_right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        rows |= go_down.astype(np.int64) << bit
        cols |= go_right.astype(np.int64) << bit
    return CSRGraph.from_edges(n, np.column_stack([rows, cols]))


def erdos_renyi(n: int, m: int, seed: int = 0) -> CSRGraph:
    """A G(n, m)-style random graph with approximately ``m`` edges."""
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, size=2 * m)
    v = rng.integers(0, n, size=2 * m)
    graph = CSRGraph.from_edges(n, np.column_stack([u, v]))
    if graph.m > m:
        edges = graph.edges()
        keep = rng.choice(edges.shape[0], size=m, replace=False)
        graph = CSRGraph.from_edges(n, edges[keep])
    return graph


def barabasi_albert(n: int, attach: int, seed: int = 0) -> CSRGraph:
    """Preferential-attachment graph: each new vertex links to ``attach``
    existing vertices chosen proportionally to degree."""
    if n <= attach:
        raise ValueError("n must exceed attach")
    rng = np.random.default_rng(seed)
    edges = []
    # Repeated-endpoint list implements preferential attachment.
    endpoints = list(range(attach + 1))
    for u in range(attach + 1):
        for v in range(u + 1, attach + 1):
            edges.append((u, v))
    for u in range(attach + 1, n):
        chosen = set()
        while len(chosen) < attach:
            chosen.add(endpoints[rng.integers(0, len(endpoints))])
        for v in chosen:
            edges.append((u, v))
            endpoints.append(v)
        endpoints.extend([u] * attach)
    return CSRGraph.from_edges(n, edges)


def planted_partition(n: int, communities: int, p_in: float, p_out: float,
                      seed: int = 0) -> CSRGraph:
    """A planted-partition graph: dense blocks with sparse cross edges.

    Produces the clustered, clique-rich structure of collaboration networks
    (the paper's dblp/amazon inputs), on which nucleus decomposition finds
    meaningful nuclei.
    """
    rng = np.random.default_rng(seed)
    membership = rng.integers(0, communities, size=n)
    edges = []
    # Sample within-community edges densely, cross edges sparsely.
    for comm in range(communities):
        members = np.flatnonzero(membership == comm)
        k = members.size
        if k >= 2:
            n_pairs = k * (k - 1) // 2
            n_draw = rng.binomial(n_pairs, p_in)
            us = members[rng.integers(0, k, size=n_draw)]
            vs = members[rng.integers(0, k, size=n_draw)]
            edges.append(np.column_stack([us, vs]))
    n_cross = rng.binomial(n * (n - 1) // 2, p_out)
    if n_cross:
        us = rng.integers(0, n, size=n_cross)
        vs = rng.integers(0, n, size=n_cross)
        edges.append(np.column_stack([us, vs]))
    all_edges = np.concatenate(edges) if edges else np.zeros((0, 2), dtype=np.int64)
    return CSRGraph.from_edges(n, all_edges)


def embed_cliques(graph: CSRGraph, count: int, size: int,
                  seed: int = 0) -> CSRGraph:
    """Superimpose ``count`` random ``size``-cliques onto ``graph``.

    Collaboration networks (the paper's dblp input) contain large genuine
    cliques --- papers with many co-authors --- which give them unusually
    high (r,s)-core numbers.  This transform plants that structure.
    """
    rng = np.random.default_rng(seed)
    extra = []
    for _ in range(count):
        members = rng.choice(graph.n, size=size, replace=False)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                extra.append((int(u), int(v)))
    edges = np.concatenate([graph.edges(), np.asarray(extra, dtype=np.int64)])
    return CSRGraph.from_edges(graph.n, edges)


def complete_graph(k: int) -> CSRGraph:
    """The clique on ``k`` vertices."""
    return CSRGraph.from_edges(k, [(u, v) for u in range(k) for v in range(u + 1, k)])


def cycle_graph(n: int) -> CSRGraph:
    """The cycle on ``n`` vertices."""
    return CSRGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(leaves: int) -> CSRGraph:
    """A star: vertex 0 joined to ``leaves`` leaves."""
    return CSRGraph.from_edges(leaves + 1, [(0, i) for i in range(1, leaves + 1)])


#: Vertex names of the paper's Figure 1 example, in id order.
FIGURE1_NAMES = "abcdefg"


def figure1_graph() -> CSRGraph:
    """The example graph of the paper's Figure 1.

    Vertices a..g are ids 0..6.  ``{a,b,c,d,e}`` is a 5-clique, ``f`` is
    adjacent to ``a, b, e``, and ``g`` is adjacent to ``c, d``.  The paper
    states it has 14 triangles and that its (3,4) decomposition peels
    ``cdg`` (core 0), then ``abf, aef, bef`` (core 1), then the remaining
    ten triangles (core 2) --- our tests assert exactly this.
    """
    a, b, c, d, e, f, g = range(7)
    clique = [(u, v) for i, u in enumerate([a, b, c, d, e])
              for v in [a, b, c, d, e][i + 1:]]
    extra = [(f, a), (f, b), (f, e), (g, c), (g, d)]
    return CSRGraph.from_edges(7, clique + extra)
