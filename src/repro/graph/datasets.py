"""Scaled-down surrogates for the paper's SNAP input graphs (Figure 7).

The paper evaluates on seven SNAP graphs from 0.9M to 1.8B edges.  Graphs of
that size are far beyond pure-Python clique enumeration, so each input is
replaced by a deterministic synthetic surrogate (DESIGN.md, Section 1)
whose *relative* position is preserved: the size ordering, the density
ordering (orkut/friendster are much denser than amazon/dblp), and the
community structure (amazon/dblp are clustered collaboration-style graphs;
the rest are heavy-tailed rMAT-style graphs).

All generation is seeded, so every run of the benchmark harness sees the
same seven graphs.  ``load_dataset(name, scale=1.0)`` allows globally
shrinking or growing the suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from .csr import CSRGraph
from .generators import embed_cliques, planted_partition, rmat_graph


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one surrogate graph."""

    name: str
    kind: str  # "community" or "rmat"
    scale: int  # log2(n) for rmat; n/100 for community
    edge_factor: int  # rmat edge factor; community in-block density x100
    planted: tuple  # (count, size) of superimposed cliques
    seed: int
    paper_n: int
    paper_m: int

    def generate(self, size_scale: float = 1.0) -> CSRGraph:
        if self.kind == "rmat":
            log_shift = 0
            if size_scale >= 2.0:
                log_shift = 1
            elif size_scale <= 0.5:
                log_shift = -1
            graph = rmat_graph(max(4, self.scale + log_shift),
                               self.edge_factor, seed=self.seed)
        else:
            n = max(40, int(self.scale * 100 * size_scale))
            communities = max(4, n // 18)
            graph = planted_partition(n, communities,
                                      p_in=self.edge_factor / 100.0,
                                      p_out=1.2 / n, seed=self.seed)
        count, size = self.planted
        if count:
            graph = embed_cliques(graph, count, size, seed=self.seed + 1000)
        return graph


#: The seven surrogates, smallest to largest, mirroring the paper's Figure 7
#: ordering (paper_n / paper_m record the original SNAP sizes for reporting).
#: amazon/dblp are clustered community graphs (dblp with planted co-author
#: cliques, matching its unusually high core numbers in the paper); the rest
#: are heavy-tailed rMAT graphs of increasing size and density.
DATASETS: dict[str, DatasetSpec] = {
    "amazon": DatasetSpec("amazon", "community", 6, 50, (0, 0), 11,
                          334_863, 925_872),
    "dblp": DatasetSpec("dblp", "community", 8, 60, (6, 12), 12,
                        317_080, 1_049_866),
    "youtube": DatasetSpec("youtube", "rmat", 11, 6, (0, 0), 13,
                           1_134_890, 2_987_624),
    "skitter": DatasetSpec("skitter", "rmat", 11, 12, (2, 10), 14,
                           1_696_415, 11_095_298),
    "livejournal": DatasetSpec("livejournal", "rmat", 12, 12, (3, 10), 15,
                               3_997_962, 34_681_189),
    "orkut": DatasetSpec("orkut", "rmat", 12, 24, (3, 12), 16,
                         3_072_441, 117_185_083),
    "friendster": DatasetSpec("friendster", "rmat", 13, 24, (4, 12), 17,
                              65_608_366, 1_806_000_000),
}

#: Graphs the paper calls "small" (where e.g. ARB beats PKT-OPT-CPU).
SMALL_GRAPHS = ("amazon", "dblp")
#: Graphs the paper calls "large".
LARGE_GRAPHS = ("skitter", "livejournal", "orkut", "friendster")

_cache: dict[tuple[str, float], CSRGraph] = {}


def dataset_names() -> list[str]:
    return list(DATASETS)


def load_dataset(name: str, size_scale: float = 1.0) -> CSRGraph:
    """Generate (and memoize) the surrogate graph called ``name``."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(DATASETS)}")
    key = (name, size_scale)
    if key not in _cache:
        _cache[key] = DATASETS[name].generate(size_scale)
    return _cache[key]
