"""Graph relabeling by orientation rank (Section 5.4).

Cliques are keyed in ``T`` by their vertices in sorted order, but
REC-LIST-CLIQUES discovers clique vertices in *orientation* order.
Renaming vertex ``v`` to ``rank[v]`` makes the two orders coincide: no
per-clique re-sort is needed, and cliques discovered together land near
each other in ``T`` (better locality).  The decomposition undoes the
renaming when reporting results.
"""

from __future__ import annotations

import numpy as np

from ..parallel.runtime import CostTracker, _log2
from .csr import CSRGraph


def relabel_by_rank(graph: CSRGraph, rank: np.ndarray,
                    tracker: CostTracker | None = None
                    ) -> tuple[CSRGraph, np.ndarray]:
    """Rename vertex ``v`` to ``rank[v]``.

    Returns ``(relabeled_graph, original_of)`` where ``original_of[i]`` is
    the input-graph id of relabeled vertex ``i``.  After relabeling, the
    identity permutation is a valid orientation rank.
    """
    rank = np.asarray(rank, dtype=np.int64)
    if tracker is not None:
        tracker.add_work(float(graph.n + 2 * graph.m))
        tracker.add_span(_log2(graph.n + 2 * graph.m))
    relabeled = graph.relabeled(rank)
    original_of = np.empty(graph.n, dtype=np.int64)
    original_of[rank] = np.arange(graph.n)
    return relabeled, original_of
