"""The practical bucketing structure (Dhulipala et al., "Julienne").

Algorithm 2 repeatedly extracts the bucket of r-cliques with the minimum
s-clique count and moves r-cliques between buckets as counts drop.  The
paper's implementation uses Julienne's strategy: only a constant window of
the lowest buckets is materialized (lazily, with stale entries filtered on
extraction), and refilling the window skips over large empty ranges ---
both behaviors are reproduced and cost-accounted here.

Values only ever *decrease* between extractions (peeling is monotone), and
extracted ids are implicitly assigned the bucket's value as their core
number by the caller.
"""

from __future__ import annotations

import numpy as np

from ..parallel.runtime import CostTracker, _log2


class JulienneBucketing:
    """Lazy bucket queue materializing a window of the lowest buckets.

    Parameters
    ----------
    ids:
        Identifiers (arbitrary non-negative ints, e.g. table cell indices).
    values:
        Initial bucket value of each id (the s-clique counts).
    window:
        How many consecutive buckets to materialize at once (the "constant
        number of the lowest buckets").
    """

    def __init__(self, ids, values, window: int = 64,
                 tracker: CostTracker | None = None):
        self.ids = np.asarray(ids, dtype=np.int64)
        if self.ids.size:
            self._pos = {int(i): k for k, i in enumerate(self.ids)}
        else:
            self._pos = {}
        self._pos_arr: np.ndarray | None = None
        self.values = np.asarray(values, dtype=np.int64).copy()
        if self.values.size != self.ids.size:
            raise ValueError("ids and values must have equal length")
        self.alive = np.ones(self.ids.size, dtype=bool)
        self.window = max(1, window)
        self.tracker = tracker
        self.remaining = self.ids.size
        self.base = 0
        self.peel_floor = 0  # value of the most recently extracted bucket
        self._buckets: list[list[int]] = []
        self.refills = 0
        if self.ids.size:
            self._refill()

    # -- internals ----------------------------------------------------------

    def _charge(self, work: float) -> None:
        if self.tracker is not None:
            self.tracker.add_work(work)

    def _refill(self) -> None:
        """Rebuild the window starting at the minimum live value.

        Skips every empty bucket below that minimum in one step (the
        "skips over large ranges of empty buckets" behavior).
        """
        self.refills += 1
        live = np.flatnonzero(self.alive)
        self._charge(float(live.size) + 1.0)
        if self.tracker is not None:
            self.tracker.add_span(_log2(max(1, live.size)))
        if live.size == 0:
            self._buckets = []
            return
        vals = self.values[live]
        self.base = int(vals.min())
        self._buckets = [[] for _ in range(self.window)]
        in_window = live[vals < self.base + self.window]
        for k in in_window:
            self._buckets[int(self.values[k]) - self.base].append(int(k))

    # -- public API ----------------------------------------------------------

    def __len__(self) -> int:
        return self.remaining

    def next_bucket(self) -> tuple[int, np.ndarray]:
        """Extract the minimum non-empty bucket: ``(value, ids)``.

        Raises :class:`IndexError` when the structure is empty.
        """
        if self.remaining == 0:
            raise IndexError("bucketing structure is empty")
        while True:
            for offset, bucket in enumerate(self._buckets):
                if not bucket:
                    continue
                value = self.base + offset
                # Filter stale entries: an id is valid if it is alive and its
                # current value still equals this bucket's value.
                self._charge(float(len(bucket)))
                valid = [k for k in bucket
                         if self.alive[k] and self.values[k] == value]
                bucket.clear()
                if not valid:
                    continue
                positions = np.asarray(valid, dtype=np.int64)
                self.alive[positions] = False
                self.remaining -= len(valid)
                self.peel_floor = value
                return value, self.ids[positions]
            self._refill()
            if not any(self._buckets):
                if self.remaining == 0:
                    raise IndexError("bucketing structure is empty")

    def update(self, ids, new_values) -> None:
        """Decrease the values of ``ids`` to ``new_values`` and re-bucket.

        Values are clamped below at the current peel level (an r-clique
        whose count falls beneath the bucket being peeled belongs to that
        bucket: its core number cannot drop below the peel level).

        Distinct in-range ids take a vectorized fast path; bucket-append
        order, value clamping, and error behavior are identical to the
        per-id loop, which remains the fallback (and the oracle for the
        partial-mutation semantics of mid-batch errors).
        """
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        new_values = np.atleast_1d(np.asarray(new_values, dtype=np.int64))
        self._charge(float(ids.size))
        if self.tracker is not None:
            self.tracker.add_span(_log2(max(1, ids.size)))
        if ids.size > 1 and self._update_fast(ids, new_values):
            return
        self._update_slow(ids, new_values)

    def _pos_array(self) -> np.ndarray | None:
        """Dense id -> position map (lazy; None when ids are too sparse)."""
        if self._pos_arr is None:
            if self.ids.size == 0:
                return None
            top = int(self.ids.max()) + 1
            if top > 4 * self.ids.size + 1024:
                return None  # dict stays cheaper for very sparse id spaces
            arr = np.full(top, -1, dtype=np.int64)
            arr[self.ids] = np.arange(self.ids.size, dtype=np.int64)
            self._pos_arr = arr
        return self._pos_arr

    def _update_fast(self, ids: np.ndarray, new_values: np.ndarray) -> bool:
        """Apply a batch update without the per-id loop; returns False when
        the batch needs the loop's semantics (unknown/duplicate ids, or a
        below-window value whose partial-mutation error the loop owns)."""
        arr = self._pos_array()
        if arr is None or int(ids.min()) < 0 or int(ids.max()) >= arr.size:
            return False
        positions = arr[ids]
        if (positions < 0).any():
            return False
        if np.unique(ids).size != ids.size:
            return False
        live = self.alive[positions]
        values = np.maximum(new_values, self.peel_floor)
        offsets = values - self.base
        if (offsets[live] < 0).any():
            return False
        self.values[positions[live]] = values[live]
        in_window = live & (offsets < self.window)
        targets = offsets[in_window]
        moved = positions[in_window]
        order = np.argsort(targets, kind="stable")  # keeps per-bucket order
        targets = targets[order]
        moved = moved[order]
        starts = np.flatnonzero(
            np.r_[True, targets[1:] != targets[:-1]]) if targets.size else []
        for g, start in enumerate(starts):
            end = starts[g + 1] if g + 1 < len(starts) else targets.size
            self._buckets[int(targets[start])].extend(
                moved[start:end].tolist())
        return True

    def _update_slow(self, ids: np.ndarray, new_values: np.ndarray) -> None:
        for ident, value in zip(ids, new_values):
            k = self._pos[int(ident)]
            if not self.alive[k]:
                continue
            value = max(int(value), self.peel_floor)
            offset = value - self.base
            if offset < 0:
                # A clamped value below the materialized window would index
                # self._buckets[offset] with a *negative* offset, silently
                # appending to the wrong (top-of-window) bucket via Python
                # negative indexing and corrupting extraction order.  The
                # peeling loop cannot reach this state (peel_floor >= base
                # after every extraction, and updates follow extractions),
                # so a value below base means the caller broke the monotone
                # protocol --- fail loudly instead of mis-bucketing.
                raise ValueError(
                    f"update({int(ident)}) to value {value} below the "
                    f"current window base {self.base}; values must stay "
                    f">= the materialized window's base (peel_floor="
                    f"{self.peel_floor})")
            self.values[k] = value
            if offset < self.window:
                self._buckets[offset].append(k)

    def value_of(self, ident: int) -> int:
        """Current bucket value of an id (alive or not)."""
        return int(self.values[self._pos[int(ident)]])
