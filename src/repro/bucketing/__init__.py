"""Bucketing structures for peeling algorithms.

Three interchangeable backends (see DESIGN.md):

* :class:`~repro.bucketing.julienne.JulienneBucketing` -- the practical
  structure the paper's implementation uses (default);
* :class:`~repro.bucketing.fibheap.FibonacciBucketing` -- the batch-parallel
  Fibonacci heap behind Theorem 4.2's bounds;
* :class:`~repro.bucketing.dense.DenseBucketing` -- the appendix's dense
  array with doubling-region search (s-clique-proportional space).
"""

from .dense import DenseBucketing
from .fibheap import FibonacciBucketing
from .julienne import JulienneBucketing

BUCKETING_BACKENDS = {
    "julienne": JulienneBucketing,
    "fibonacci": FibonacciBucketing,
    "dense": DenseBucketing,
}


def make_bucketing(backend: str, ids, values, tracker=None, window: int = 64):
    """Instantiate a bucketing backend by name."""
    if backend not in BUCKETING_BACKENDS:
        raise ValueError(
            f"unknown bucketing backend {backend!r}; "
            f"options: {sorted(BUCKETING_BACKENDS)}")
    return BUCKETING_BACKENDS[backend](ids, values, tracker=tracker, window=window)


__all__ = ["JulienneBucketing", "FibonacciBucketing", "DenseBucketing",
           "BUCKETING_BACKENDS", "make_bucketing"]
