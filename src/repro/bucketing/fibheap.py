"""Batch-parallel Fibonacci-heap bucketing (Shi--Shun).

Theorem 4.2's work bound relies on a bucketing structure with O(1)-amortized
inserts and updates and O(log n)-amortized extract-min --- the batch-parallel
Fibonacci heap of Shi and Shun [62].  The paper *uses* Julienne in practice
("we found it to be more efficient in practice") but proves its bounds with
this structure, so both live in this package behind one interface.

This is a genuine Fibonacci heap whose nodes are *buckets* (sets of ids
sharing a value) rather than single elements: insertions and updates hash
into a value->node map, and extract-min consolidates as usual.  Because
peeling only ever decreases values, updates are decrease-key-like and never
violate the heap order downward.
"""

from __future__ import annotations

import numpy as np

from ..parallel.runtime import CostTracker, _log2


class _Node:
    __slots__ = ("value", "members", "parent", "child", "left", "right",
                 "degree", "mark")

    def __init__(self, value: int):
        self.value = value
        self.members: set[int] = set()
        self.parent = None
        self.child = None
        self.left = self
        self.right = self
        self.degree = 0
        self.mark = False


class FibonacciBucketing:
    """A Fibonacci heap of buckets, matching :class:`JulienneBucketing`'s API."""

    def __init__(self, ids, values, tracker: CostTracker | None = None,
                 window: int = 0):
        del window  # accepted for interface compatibility
        self.tracker = tracker
        self._min: _Node | None = None
        self._nodes: dict[int, _Node] = {}  # value -> bucket node
        self._value_of: dict[int, int] = {}
        self.remaining = 0
        self.peel_floor = 0  # value of the most recently extracted bucket
        ids = np.asarray(ids, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        for ident, value in zip(ids, values):
            self._insert(int(ident), int(value))

    # -- heap internals -------------------------------------------------------

    def _charge(self, work: float, span: float = 0.0) -> None:
        if self.tracker is not None:
            self.tracker.add_work(work)
            if span:
                self.tracker.add_span(span)

    def _add_root(self, node: _Node) -> None:
        if self._min is None:
            node.left = node.right = node
            self._min = node
        else:
            node.left = self._min
            node.right = self._min.right
            self._min.right.left = node
            self._min.right = node
            if node.value < self._min.value:
                self._min = node

    def _remove_from_list(self, node: _Node) -> None:
        node.left.right = node.right
        node.right.left = node.left
        node.left = node.right = node

    def _bucket(self, value: int) -> _Node:
        node = self._nodes.get(value)
        if node is None:
            node = _Node(value)
            self._nodes[value] = node
            self._add_root(node)
        return node

    def _insert(self, ident: int, value: int) -> None:
        self._charge(1.0)
        self._bucket(value).members.add(ident)
        self._value_of[ident] = value
        self.remaining += 1

    def _consolidate(self) -> None:
        if self._min is None:
            return
        roots = []
        node = self._min
        while True:
            roots.append(node)
            node = node.right
            if node is self._min:
                break
        degree_table: dict[int, _Node] = {}
        for node in roots:
            node.parent = None
            x = node
            while x.degree in degree_table:
                y = degree_table.pop(x.degree)
                if y.value < x.value:
                    x, y = y, x
                # Link y under x.
                self._remove_from_list(y)
                y.parent = x
                y.mark = False
                if x.child is None:
                    x.child = y
                    y.left = y.right = y
                else:
                    y.left = x.child
                    y.right = x.child.right
                    x.child.right.left = y
                    x.child.right = y
                x.degree += 1
            degree_table[x.degree] = x
        self._min = None
        for node in degree_table.values():
            node.left = node.right = node
            node.parent = None
            if self._min is None:
                self._min = node
            else:
                self._add_root(node)

    def _cut_to_root(self, node: _Node) -> None:
        parent = node.parent
        if parent is None:
            return
        if parent.child is node:
            parent.child = node.right if node.right is not node else None
        self._remove_from_list(node)
        parent.degree -= 1
        node.parent = None
        node.mark = False
        self._add_root(node)
        # Cascading cut.
        if parent.parent is not None:
            if not parent.mark:
                parent.mark = True
            else:
                self._cut_to_root(parent)

    # -- public API ------------------------------------------------------------

    def __len__(self) -> int:
        return self.remaining

    def next_bucket(self) -> tuple[int, np.ndarray]:
        """Extract the minimum bucket: ``(value, ids)``."""
        while self._min is not None and not self._min.members:
            self._pop_min_node()
        if self._min is None or self.remaining == 0:
            raise IndexError("bucketing structure is empty")
        node = self._min
        value = node.value
        self.peel_floor = value
        members = np.fromiter(node.members, dtype=np.int64,
                              count=len(node.members))
        self.remaining -= len(node.members)
        for ident in node.members:
            del self._value_of[ident]
        node.members = set()
        self._pop_min_node()
        self._charge(float(members.size) + _log2(len(self._nodes) + 2),
                     _log2(len(self._nodes) + 2))
        return value, np.sort(members)

    def _pop_min_node(self) -> None:
        node = self._min
        if node is None:
            return
        del self._nodes[node.value]
        child = node.child
        if child is not None:
            kids = []
            k = child
            while True:
                kids.append(k)
                k = k.right
                if k is child:
                    break
            for k in kids:
                k.parent = None
                self._remove_from_list(k)
                self._add_root(k)
        if node.right is node:
            self._min = None
        else:
            self._min = node.right
            self._remove_from_list(node)
            self._consolidate()
        if self._min is not None:
            # Restore the min pointer after consolidation.
            best = self._min
            cur = self._min.right
            while cur is not self._min:
                if cur.value < best.value:
                    best = cur
                cur = cur.right
            self._min = best

    def update(self, ids, new_values) -> None:
        """Move ids to (lower) buckets; clamps at the current peel level."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        new_values = np.atleast_1d(np.asarray(new_values, dtype=np.int64))
        floor = self.peel_floor
        for ident, value in zip(ids, new_values):
            ident = int(ident)
            if ident not in self._value_of:
                continue
            value = max(int(value), floor)
            old = self._value_of[ident]
            if value == old:
                continue
            self._charge(1.0)
            self._nodes[old].members.discard(ident)
            target = self._nodes.get(value)
            if target is None:
                target = _Node(value)
                self._nodes[value] = target
                self._add_root(target)
            target.members.add(ident)
            self._value_of[ident] = value
        if self.tracker is not None:
            self.tracker.add_span(_log2(max(1, ids.size)) ** 2)

    def value_of(self, ident: int) -> int:
        return self._value_of[int(ident)]
