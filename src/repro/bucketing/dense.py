"""Dense-array bucketing with doubling-region minimum search.

The paper's appendix observes that when space proportional to the number of
s-cliques is allowed, the bucketing structure can simply be an array indexed
by bucket value.  To keep extract-min work-efficient *and* low-span in
parallel, the next non-empty bucket is found by scanning geometrically
growing regions ``[2^i, 2^{i+1})`` ahead of the previous minimum with a
parallel reduce over each region --- O(x) total work over the whole peeling
process for an array of x buckets, O(log y) span per pop.

This is the structure that makes ARB-NUCLEUS-DECOMP fully work-efficient
(O(m alpha^{s-2}) work) when s-clique-proportional space is acceptable.
"""

from __future__ import annotations

import numpy as np

from ..parallel.runtime import CostTracker, _log2


class DenseBucketing:
    """Array-of-buckets keyed directly by value; doubling search for the min."""

    def __init__(self, ids, values, tracker: CostTracker | None = None,
                 window: int = 0):
        del window  # interface compatibility
        self.tracker = tracker
        self.ids = np.asarray(ids, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.int64).copy()
        if self.ids.size:
            self._pos = {int(i): k for k, i in enumerate(self.ids)}
        else:
            self._pos = {}
        self.alive = np.ones(self.ids.size, dtype=bool)
        self.remaining = self.ids.size
        max_value = int(self.values.max()) if self.ids.size else 0
        #: bucket value -> list of positions (lazily maintained, may be stale)
        self._buckets: list[list[int]] = [[] for _ in range(max_value + 1)]
        for k, value in enumerate(self.values):
            self._buckets[int(value)].append(k)
        self._floor = 0  # no live id has value below this

    def _charge(self, work: float, span: float = 0.0) -> None:
        if self.tracker is not None:
            self.tracker.add_work(work)
            if span:
                self.tracker.add_span(span)

    def __len__(self) -> int:
        return self.remaining

    def next_bucket(self) -> tuple[int, np.ndarray]:
        """Extract the minimum non-empty bucket via doubling-region search."""
        if self.remaining == 0:
            raise IndexError("bucketing structure is empty")
        n_buckets = len(self._buckets)
        start = self._floor
        found = -1
        # Search regions [start, start+1), [start+1, start+2), [start+2,
        # start+4), ... each with one parallel reduce (log-span charge).
        width = 1
        lo = start
        while lo < n_buckets:
            hi = min(n_buckets, lo + width)
            self._charge(float(hi - lo), _log2(hi - lo))
            for value in range(lo, hi):
                bucket = self._buckets[value]
                if not bucket:
                    continue
                valid = [k for k in bucket
                         if self.alive[k] and self.values[k] == value]
                self._charge(float(len(bucket)))
                bucket.clear()
                if valid:
                    found = value
                    positions = np.asarray(valid, dtype=np.int64)
                    self.alive[positions] = False
                    self.remaining -= len(valid)
                    self._floor = value
                    return value, self.ids[positions]
            lo = hi
            width *= 2
        raise IndexError("bucketing structure is empty")  # pragma: no cover

    def update(self, ids, new_values) -> None:
        """Decrease values and re-bucket (clamped at the current floor)."""
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        new_values = np.atleast_1d(np.asarray(new_values, dtype=np.int64))
        self._charge(float(ids.size), _log2(max(1, ids.size)))
        for ident, value in zip(ids, new_values):
            k = self._pos[int(ident)]
            if not self.alive[k]:
                continue
            value = max(int(value), self._floor)
            self.values[k] = value
            self._buckets[value].append(k)

    def value_of(self, ident: int) -> int:
        return int(self.values[self._pos[int(ident)]])
