"""Cost-accounted parallel sorting and semisorting.

Two primitives the paper's stack depends on:

* :func:`sample_sort` -- the parallel sample sort of Dhulipala et al.'s
  GBBS (the paper credits its reordering speed over PKT-OPT-CPU's sort to
  this routine, Section 6.3): split into sqrt(n)-ish buckets by sampled
  pivots, sort buckets independently.  O(n log n) work, O(log^2 n) span.
* :func:`semisort` -- group equal keys together without full ordering, the
  primitive Julienne uses to scatter ids into buckets.  O(n) work w.h.p.,
  O(log n) span.

Real computation is numpy; costs flow to the tracker like all primitives.
"""

from __future__ import annotations

import numpy as np

from .runtime import CostTracker, _log2


def sample_sort(values, tracker: CostTracker | None = None,
                oversample: int = 8) -> np.ndarray:
    """Sort integers with a two-level parallel sample sort.

    The implementation genuinely buckets by sampled pivots and sorts the
    buckets (so cost accounting reflects actual bucket sizes), then
    concatenates.  ``O(n log n)`` work, ``O(log^2 n)`` span.
    """
    arr = np.asarray(values)
    n = arr.size
    if tracker is not None:
        tracker.add_work(float(n) * _log2(n))
        tracker.add_span(_log2(n) ** 2)
    if n <= 1:
        return arr.copy()
    n_buckets = max(1, int(np.sqrt(n)))
    rng = np.random.default_rng(n)  # deterministic per size
    sample = np.sort(rng.choice(arr, size=min(n, n_buckets * oversample)))
    pivots = sample[::oversample][1:n_buckets]
    assignment = np.searchsorted(pivots, arr, side="right")
    parts = [np.sort(arr[assignment == b]) for b in range(n_buckets)]
    return np.concatenate([p for p in parts if p.size]) if parts else arr


def semisort(keys, values=None, tracker: CostTracker | None = None):
    """Group records by key: returns ``(unique_keys, groups)``.

    ``groups[i]`` holds the values (or the indices, when ``values`` is
    None) whose key equals ``unique_keys[i]``.  Grouping does not imply a
    total order *within* groups beyond input order.  ``O(n)`` work,
    ``O(log n)`` span --- the bucketing structure's scatter step.
    """
    keys = np.asarray(keys, dtype=np.int64)
    payload = np.arange(keys.size) if values is None else np.asarray(values)
    if tracker is not None:
        tracker.add_work(float(keys.size) + 1.0)
        tracker.add_span(_log2(keys.size))
    if keys.size == 0:
        return np.asarray([], dtype=np.int64), []
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    unique_keys = sorted_keys[np.concatenate([[0], boundaries])]
    groups = np.split(payload[order], boundaries)
    return unique_keys, groups
