"""Simulated parallel runtime: work-span accounting and primitives."""

from .atomics import AtomicArray, ContentionMeter
from .hashtable import EMPTY_KEY, ParallelHashTable, hash64
from .primitives import (histogram, intersect_many, intersect_sorted,
                         pack_indices, parallel_filter, parallel_max,
                         parallel_min, parallel_reduce, prefix_sum)
from .runtime import CostTracker, MachineModel, PhaseStats
from .scheduler import (ScheduleResult, TaskGraph, parfor_graph,
                        simulate_work_stealing)
from .sort import sample_sort, semisort
from .unionfind import UnionFind

__all__ = [
    "CostTracker", "MachineModel", "PhaseStats",
    "ParallelHashTable", "EMPTY_KEY", "hash64",
    "AtomicArray", "ContentionMeter",
    "prefix_sum", "parallel_filter", "pack_indices", "parallel_reduce",
    "parallel_max", "parallel_min", "histogram",
    "intersect_sorted", "intersect_many",
    "sample_sort", "semisort",
    "TaskGraph", "ScheduleResult", "simulate_work_stealing", "parfor_graph",
    "UnionFind",
]
