"""Cost-accounted parallel sequence primitives (Section 3 of the paper).

These are the building blocks the paper assumes: prefix sum, filter, pack,
reduce, and histogram, each taking ``O(n)`` work and ``O(log n)`` span.  The
real computation is done with numpy (sequentially); the work-span charges
flow to a :class:`~repro.parallel.runtime.CostTracker` so that simulated
parallel running times reflect their use.

All functions accept ``tracker=None`` for plain (un-accounted) use.
"""

from __future__ import annotations

import numpy as np

from .runtime import CostTracker, _log2


def _charge(tracker: CostTracker | None, n: int) -> None:
    # Each primitive is one bulk-synchronous step of the simulated machine:
    # O(n) work, O(log n) span, and one global barrier (round).  Without
    # the round, code built from primitives under-counted its barriers.
    if tracker is not None:
        tracker.add_work(float(n))
        tracker.add_span(_log2(n))
        tracker.add_round(1)


def prefix_sum(values, tracker: CostTracker | None = None, exclusive: bool = True):
    """Parallel scan: returns prefix sums (exclusive by default) and the total.

    ``O(n)`` work, ``O(log n)`` span.
    """
    arr = np.asarray(values, dtype=np.int64)
    _charge(tracker, arr.size)
    inclusive = np.cumsum(arr)
    total = int(inclusive[-1]) if arr.size else 0
    if exclusive and arr.size:
        out = np.empty_like(inclusive)
        out[0] = 0
        out[1:] = inclusive[:-1]
        return out, total
    return inclusive, total


def parallel_filter(values, predicate_mask, tracker: CostTracker | None = None):
    """Parallel filter: keep ``values[i]`` where ``predicate_mask[i]`` is true.

    Order-preserving; ``O(n)`` work, ``O(log n)`` span.
    """
    arr = np.asarray(values)
    mask = np.asarray(predicate_mask, dtype=bool)
    _charge(tracker, arr.size)
    return arr[mask]


def pack_indices(predicate_mask, tracker: CostTracker | None = None):
    """Return the indices at which ``predicate_mask`` is true (parallel pack)."""
    mask = np.asarray(predicate_mask, dtype=bool)
    _charge(tracker, mask.size)
    return np.flatnonzero(mask)


def parallel_reduce(values, tracker: CostTracker | None = None, op=np.add):
    """Parallel reduction with an associative operator (default: sum)."""
    arr = np.asarray(values)
    _charge(tracker, arr.size)
    if arr.size == 0:
        return 0
    return op.reduce(arr)


def parallel_max(values, tracker: CostTracker | None = None):
    """Parallel maximum; returns ``None`` on empty input."""
    arr = np.asarray(values)
    _charge(tracker, arr.size)
    if arr.size == 0:
        return None
    return arr.max()


def parallel_min(values, tracker: CostTracker | None = None):
    """Parallel minimum; returns ``None`` on empty input."""
    arr = np.asarray(values)
    _charge(tracker, arr.size)
    if arr.size == 0:
        return None
    return arr.min()


def histogram(keys, n_buckets: int, tracker: CostTracker | None = None):
    """Count occurrences of integer keys in ``[0, n_buckets)``.

    Used to size buckets before a semisort-style grouping.  ``O(n)`` work,
    ``O(log n)`` span.
    """
    arr = np.asarray(keys, dtype=np.int64)
    _charge(tracker, arr.size + n_buckets)
    return np.bincount(arr, minlength=n_buckets)


def intersect_sorted(a, b, tracker: CostTracker | None = None):
    """Intersect two sorted integer arrays.

    Charged at ``O(min(|a|, |b|))`` work and ``O(log(|a|+|b|))`` span, the
    hash-table intersection bound the paper assumes (Section 3); the actual
    computation uses a merge for exactness.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if tracker is not None:
        # Work only: intersection span is charged analytically by callers
        # (one O(log n) term per recursion level), because intersections
        # inside a parallel region run concurrently, not back to back.
        tracker.add_work(float(min(a.size, b.size)) + 1.0)
    if a.size == 0 or b.size == 0:
        return a[:0]
    return np.intersect1d(a, b, assume_unique=True)


def intersect_many(arrays, tracker: CostTracker | None = None):
    """Intersect several sorted arrays; cost ``O(min_i |a_i|)`` work.

    Implements the multi-table intersection bound of Section 3 by probing
    the smallest array against the others.
    """
    arrays = [np.asarray(a) for a in arrays]
    if not arrays:
        raise ValueError("intersect_many requires at least one array")
    if tracker is not None:
        tracker.add_work(float(min(a.size for a in arrays)) + 1.0)
    result = arrays[0]
    for other in arrays[1:]:
        if result.size == 0:
            break
        result = np.intersect1d(result, other, assume_unique=True)
    return result
