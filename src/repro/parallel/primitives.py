"""Cost-accounted parallel sequence primitives (Section 3 of the paper).

These are the building blocks the paper assumes: prefix sum, filter, pack,
reduce, and histogram, each taking ``O(n)`` work and ``O(log n)`` span.  The
real computation is done with numpy (sequentially); the work-span charges
flow to a :class:`~repro.parallel.runtime.CostTracker` so that simulated
parallel running times reflect their use.

All functions accept ``tracker=None`` for plain (un-accounted) use.
"""

from __future__ import annotations

import numpy as np

from .runtime import CostTracker, _log2


def _charge(tracker: CostTracker | None, n: int) -> None:
    # Each primitive is one bulk-synchronous step of the simulated machine:
    # O(n) work, O(log n) span, and one global barrier (round).  Without
    # the round, code built from primitives under-counted its barriers.
    if tracker is not None:
        tracker.add_work(float(n))
        tracker.add_span(_log2(n))
        tracker.add_round(1)


def prefix_sum(values, tracker: CostTracker | None = None, exclusive: bool = True):
    """Parallel scan: returns prefix sums (exclusive by default) and the total.

    ``O(n)`` work, ``O(log n)`` span.
    """
    arr = np.asarray(values, dtype=np.int64)
    _charge(tracker, arr.size)
    inclusive = np.cumsum(arr)
    total = int(inclusive[-1]) if arr.size else 0
    if exclusive and arr.size:
        out = np.empty_like(inclusive)
        out[0] = 0
        out[1:] = inclusive[:-1]
        return out, total
    return inclusive, total


def parallel_filter(values, predicate_mask, tracker: CostTracker | None = None):
    """Parallel filter: keep ``values[i]`` where ``predicate_mask[i]`` is true.

    Order-preserving; ``O(n)`` work, ``O(log n)`` span.
    """
    arr = np.asarray(values)
    mask = np.asarray(predicate_mask, dtype=bool)
    _charge(tracker, arr.size)
    return arr[mask]


def pack_indices(predicate_mask, tracker: CostTracker | None = None):
    """Return the indices at which ``predicate_mask`` is true (parallel pack)."""
    mask = np.asarray(predicate_mask, dtype=bool)
    _charge(tracker, mask.size)
    return np.flatnonzero(mask)


def parallel_reduce(values, tracker: CostTracker | None = None, op=np.add):
    """Parallel reduction with an associative operator (default: sum)."""
    arr = np.asarray(values)
    _charge(tracker, arr.size)
    if arr.size == 0:
        return 0
    return op.reduce(arr)


def parallel_max(values, tracker: CostTracker | None = None):
    """Parallel maximum; returns ``None`` on empty input."""
    arr = np.asarray(values)
    _charge(tracker, arr.size)
    if arr.size == 0:
        return None
    return arr.max()


def parallel_min(values, tracker: CostTracker | None = None):
    """Parallel minimum; returns ``None`` on empty input."""
    arr = np.asarray(values)
    _charge(tracker, arr.size)
    if arr.size == 0:
        return None
    return arr.min()


def histogram(keys, n_buckets: int, tracker: CostTracker | None = None):
    """Count occurrences of integer keys in ``[0, n_buckets)``.

    Used to size buckets before a semisort-style grouping.  ``O(n)`` work,
    ``O(log n)`` span.
    """
    arr = np.asarray(keys, dtype=np.int64)
    _charge(tracker, arr.size + n_buckets)
    return np.bincount(arr, minlength=n_buckets)


def intersect_sorted(a, b, tracker: CostTracker | None = None):
    """Intersect two sorted integer arrays.

    Charged at ``O(min(|a|, |b|))`` work and ``O(log(|a|+|b|))`` span, the
    hash-table intersection bound the paper assumes (Section 3); the actual
    computation uses a merge for exactness.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if tracker is not None:
        # Work only: intersection span is charged analytically by callers
        # (one O(log n) term per recursion level), because intersections
        # inside a parallel region run concurrently, not back to back.
        tracker.add_work(float(min(a.size, b.size)) + 1.0)
    if a.size == 0 or b.size == 0:
        return a[:0]
    return np.intersect1d(a, b, assume_unique=True)


def intersect_many(arrays, tracker: CostTracker | None = None):
    """Intersect several sorted arrays; cost ``O(min_i |a_i|)`` work.

    Implements the multi-table intersection bound of Section 3 by probing
    the smallest array against the others.

    2-D frontier form: when ``arrays`` is a sequence of *rows*, each itself
    a sequence of sorted arrays, every row is intersected independently and
    a list of result arrays is returned.  The total work charged is exactly
    the sum of the per-row ``min + 1`` charges, i.e. what one call per row
    would charge --- the form the batch peeling engine uses to rediscover
    incident s-cliques for a whole peeled frontier at once.
    """
    arrays = list(arrays)
    if not arrays:
        raise ValueError("intersect_many requires at least one array")
    if isinstance(arrays[0], (list, tuple)):
        rows = [[np.asarray(a) for a in row] for row in arrays]
        if any(not row for row in rows):
            raise ValueError("intersect_many rows must be non-empty")
        width = len(rows[0])
        if all(len(row) == width for row in rows):
            result = _intersect_rows_keyed(rows, width, tracker)
            if result is not None:
                return result
        results = []
        total_work = 0
        for row in rows:
            total_work += min(a.size for a in row) + 1
            result = row[0]
            for other in row[1:]:
                if result.size == 0:
                    break
                result = np.intersect1d(result, other, assume_unique=True)
            results.append(result)
        if tracker is not None:
            tracker.add_work_int(total_work)
        return results
    arrays = [np.asarray(a) for a in arrays]
    if tracker is not None:
        tracker.add_work(float(min(a.size for a in arrays)) + 1.0)
    result = arrays[0]
    for other in arrays[1:]:
        if result.size == 0:
            break
        result = np.intersect1d(result, other, assume_unique=True)
    return result


def _intersect_rows_keyed(rows, width: int, tracker) -> list | None:
    """Intersect many rows of sorted non-negative arrays in one pass.

    Encodes element ``x`` of row ``i`` as ``i * stride + x`` so each
    column's concatenation is sorted and unique, then intersects columns
    with C-level merges instead of one ``intersect1d`` per row.  Returns
    None (caller falls back to the per-row loop) when elements can be
    negative; charges exactly the per-row ``min + 1`` total.
    """
    n_rows = len(rows)
    row_arange = np.arange(n_rows, dtype=np.int64)
    columns = []
    lengths = []
    for j in range(width):
        lens = np.fromiter((row[j].size for row in rows), dtype=np.int64,
                           count=n_rows)
        lengths.append(lens)
        columns.append(np.concatenate([row[j] for row in rows])
                       if int(lens.sum()) else np.empty(0, dtype=np.int64))
    top = 0
    for col in columns:
        if col.size:
            if int(col.min()) < 0:
                return None
            top = max(top, int(col.max()))
    if tracker is not None:
        tracker.add_work_int(
            int(np.minimum.reduce(np.stack(lengths)).sum()) + n_rows)
    stride = top + 1
    keys = np.repeat(row_arange, lengths[0]) * stride + columns[0]
    for j in range(1, width):
        if keys.size == 0:
            break
        keys = np.intersect1d(
            keys, np.repeat(row_arange, lengths[j]) * stride + columns[j],
            assume_unique=True)
    counts = np.bincount(keys // stride, minlength=n_rows)
    return np.split(keys % stride, np.cumsum(counts)[:-1])


def segment_gather(source, starts, lengths) -> np.ndarray:
    """Concatenate ``source[starts[i] : starts[i] + lengths[i]]`` segments.

    The gather building block of the frontier kernels: one fancy index
    materializes many variable-length slices of a flat array (CSR
    neighborhoods, frontier candidate lists) in segment order.
    """
    source = np.asarray(source)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0 or int(lengths.sum()) == 0:
        return source[:0]
    return source[np.repeat(starts, lengths) + segment_offsets(lengths)]


def intersect_segments(a_values, a_lens, b_values, b_lens,
                       tracker: CostTracker | None = None
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Intersect two flattened segment lists row by row.

    Segment ``i`` of the result is ``intersect(a_i, b_i)`` where ``a_i`` /
    ``b_i`` are the ``i``-th segments of the flattened inputs (each sorted,
    unique, non-negative).  Returns ``(values, lengths)`` flattened the same
    way.  Charges exactly what one :func:`intersect_sorted` call per row
    would: ``min(|a_i|, |b_i|) + 1`` work each, no span, no rounds.

    This is the flat-array form of :func:`intersect_many`'s row-keyed
    2-D mode, used by the batch clique-listing engine to expand a whole
    frontier level in one keyed merge instead of one Python call per row.
    """
    a_values = np.asarray(a_values, dtype=np.int64)
    b_values = np.asarray(b_values, dtype=np.int64)
    a_lens = np.asarray(a_lens, dtype=np.int64)
    b_lens = np.asarray(b_lens, dtype=np.int64)
    if a_lens.size != b_lens.size:
        raise ValueError("segment count mismatch")
    n_rows = a_lens.size
    if tracker is not None:
        tracker.add_work_int(int(np.minimum(a_lens, b_lens).sum()) + n_rows)
    if n_rows == 0:
        return np.empty(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    top = 0
    for col in (a_values, b_values):
        if col.size:
            if int(col.min()) < 0:
                return _intersect_segments_loop(a_values, a_lens,
                                                b_values, b_lens)
            top = max(top, int(col.max()))
    stride = top + 1
    if stride and n_rows > (2 ** 62) // stride:
        # Row keys would overflow int64; fall back to the per-row loop.
        return _intersect_segments_loop(a_values, a_lens, b_values, b_lens)
    row_ids = np.arange(n_rows, dtype=np.int64)
    a_keys = np.repeat(row_ids, a_lens) * stride + a_values
    b_keys = np.repeat(row_ids, b_lens) * stride + b_values
    keys = np.intersect1d(a_keys, b_keys, assume_unique=True)
    lengths = np.bincount(keys // stride, minlength=n_rows)
    return keys % stride, lengths


def _intersect_segments_loop(a_values, a_lens, b_values, b_lens
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Per-row fallback of :func:`intersect_segments` (charging-free: the
    caller has already charged the per-row totals)."""
    a_off = np.zeros(a_lens.size + 1, dtype=np.int64)
    b_off = np.zeros(b_lens.size + 1, dtype=np.int64)
    np.cumsum(a_lens, out=a_off[1:])
    np.cumsum(b_lens, out=b_off[1:])
    pieces = []
    lengths = np.zeros(a_lens.size, dtype=np.int64)
    for i in range(a_lens.size):
        piece = np.intersect1d(a_values[a_off[i]:a_off[i + 1]],
                               b_values[b_off[i]:b_off[i + 1]],
                               assume_unique=True)
        lengths[i] = piece.size
        if piece.size:
            pieces.append(piece)
    values = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
    return values.astype(np.int64), lengths


def segment_offsets(lengths) -> np.ndarray:
    """``[0..l0), [0..l1), ...`` concatenated: within-segment offsets for a
    flattened array of variable-length segments (a pack building block)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def interleave_segments(a, a_lens, b, b_lens) -> np.ndarray:
    """Merge two flattened segment lists so segment ``i`` of the result is
    ``a``'s segment ``i`` followed by ``b``'s segment ``i``.

    Both inputs must have the same number of segments.  This is how the
    batch engine reassembles per-task address streams (decode addresses,
    then per-row probe/update addresses) into the exact order the scalar
    loop would have produced.
    """
    a = np.asarray(a)
    b = np.asarray(b, dtype=a.dtype) if np.asarray(b).size else \
        np.zeros(0, dtype=a.dtype)
    a_lens = np.asarray(a_lens, dtype=np.int64)
    b_lens = np.asarray(b_lens, dtype=np.int64)
    if a_lens.size != b_lens.size:
        raise ValueError("segment count mismatch")
    seg_lens = a_lens + b_lens
    seg_starts = np.zeros(seg_lens.size, dtype=np.int64)
    if seg_lens.size:
        np.cumsum(seg_lens[:-1], out=seg_starts[1:])
    out = np.empty(a.size + b.size, dtype=a.dtype)
    a_pos = np.repeat(seg_starts, a_lens) + segment_offsets(a_lens)
    b_pos = np.repeat(seg_starts + a_lens, b_lens) + segment_offsets(b_lens)
    out[a_pos] = a
    out[b_pos] = b
    return out
