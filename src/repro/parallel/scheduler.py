"""Randomized work-stealing scheduler simulator.

Brent's theorem (Section 3) bounds a computation's running time on P
processors by ``W/P + S``; a *randomized work-stealing scheduler* such as
Cilk's (or ParlayLib's, which the paper's implementation uses) achieves
that bound in expectation.  The :class:`~repro.parallel.runtime.MachineModel`
uses the bound directly; this module provides the stronger validation: an
event-driven simulation of P workers executing an explicit fork-join task
DAG with random stealing, whose makespan can be compared against the bound.

Model: a task's children become runnable when the task's body executes
(spawn-on-execute), and join continuations carry zero work, so a schedule
is valid iff parents execute before their children --- which stealing from
deques guarantees by construction.  The simulation is deterministic for a
given seed.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass
class _Task:
    """One node of the fork-join DAG."""

    work: float
    parent: int = -1


class TaskGraph:
    """A fork-join task DAG built incrementally.

    ``root = g.add(work)`` creates a root task; ``g.spawn(parent, work)``
    adds a child that becomes runnable once the parent's body has run.
    """

    def __init__(self) -> None:
        self.tasks: list[_Task] = []
        self._children: dict[int, list[int]] = {}

    def add(self, work: float) -> int:
        """Add a root task; returns its id."""
        self.tasks.append(_Task(float(work)))
        return len(self.tasks) - 1

    def spawn(self, parent: int, work: float) -> int:
        """Add a child of ``parent``; returns its id."""
        if not 0 <= parent < len(self.tasks):
            raise IndexError(f"no task {parent}")
        self.tasks.append(_Task(float(work), parent=parent))
        child = len(self.tasks) - 1
        self._children.setdefault(parent, []).append(child)
        return child

    def children_of(self, task_id: int) -> list[int]:
        return self._children.get(task_id, [])

    @property
    def total_work(self) -> float:
        """W: the sum of all task bodies."""
        return sum(t.work for t in self.tasks)

    def critical_path(self) -> float:
        """S: the longest root-to-leaf chain of work (iterative DFS)."""
        best = 0.0
        roots = [i for i, t in enumerate(self.tasks) if t.parent < 0]
        stack = [(i, self.tasks[i].work) for i in roots]
        while stack:
            node, depth = stack.pop()
            kids = self.children_of(node)
            if not kids:
                best = max(best, depth)
            for kid in kids:
                stack.append((kid, depth + self.tasks[kid].work))
        return best


@dataclass
class ScheduleResult:
    """Outcome of one simulated execution."""

    makespan: float
    steals: int
    worker_busy: np.ndarray  # busy time per worker

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each worker spent computing."""
        if self.makespan == 0:
            return 1.0
        return float(self.worker_busy.mean() / self.makespan)


def simulate_work_stealing(graph: TaskGraph, workers: int,
                           steal_cost: float = 1.0,
                           seed: int = 0) -> ScheduleResult:
    """Simulate P workers running the DAG with randomized stealing.

    Each worker owns a deque; it pushes spawned children locally, pops from
    its own deque's top, and when empty attempts to steal from the *bottom*
    of a uniformly random victim's deque, paying ``steal_cost`` time per
    attempt.  Returns the makespan; for any greedy schedule it satisfies
    ``makespan <= W/P + S`` up to steal overheads.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    rng = np.random.default_rng(seed)
    deques: list[deque[int]] = [deque() for _ in range(workers)]
    roots = [i for i, t in enumerate(graph.tasks) if t.parent < 0]
    for k, root in enumerate(roots):
        deques[k % workers].append(root)

    busy = np.zeros(workers)
    final = np.zeros(workers)
    steals = 0
    completed = 0
    total = len(graph.tasks)
    # Priority queue of (next-free-time, worker).
    heap = [(0.0, w) for w in range(workers)]
    heapq.heapify(heap)
    while completed < total:
        now, w = heapq.heappop(heap)
        if deques[w]:
            task_id = deques[w].pop()
            work = graph.tasks[task_id].work
            end = now + work
            busy[w] += work
            final[w] = end
            completed += 1
            deques[w].extend(graph.children_of(task_id))
            heapq.heappush(heap, (end, w))
        else:
            steals += 1
            victim = int(rng.integers(workers))
            end = now + steal_cost
            if victim != w and deques[victim]:
                deques[w].append(deques[victim].popleft())
            final[w] = end
            heapq.heappush(heap, (end, w))
    return ScheduleResult(float(final.max()), steals, busy)


def parfor_graph(n_tasks: int, work_per_task, fanout: int = 8) -> TaskGraph:
    """The DAG of a balanced parallel-for: a fanout tree over n leaf tasks.

    ``work_per_task`` is a scalar or a callable ``index -> work``.
    """
    graph = TaskGraph()
    root = graph.add(0.0)

    def leaf_work(i: int) -> float:
        return float(work_per_task(i)) if callable(work_per_task) \
            else float(work_per_task)

    # Iterative construction of the fanout tree over index ranges.
    pending = [(root, 0, n_tasks)]
    while pending:
        parent, lo, hi = pending.pop()
        count = hi - lo
        if count <= fanout:
            for i in range(lo, hi):
                graph.spawn(parent, leaf_work(i))
            continue
        step = (count + fanout - 1) // fanout
        for start in range(lo, hi, step):
            node = graph.spawn(parent, 0.0)
            pending.append((node, start, min(hi, start + step)))
    return graph
