"""Simulated atomic memory operations with contention accounting.

The paper's implementation relies on fetch-and-add, atomic add, and
compare-and-swap (Section 3 assumes each costs ``O(1)`` work and span).  In
practice, atomics that collide on the *same* address serialize: the simple
array aggregation of Section 5.5 is slow precisely because every updated
r-clique fetch-and-adds one shared cursor, while the list buffer gives each
thread its own cursor.

This module makes that effect measurable.  A :class:`ContentionMeter`
watches the addresses touched by atomics during one parallel step and
charges the serialized span --- the depth of the longest per-address
collision chain --- to the tracker.
"""

from __future__ import annotations

from collections import Counter

from .runtime import CostTracker


class ContentionMeter:
    """Tracks atomic collisions within one parallel step.

    Usage: call :meth:`record` for every simulated atomic during a parallel
    region, then :meth:`settle` at the region's end.  The serialized span
    charged is ``max_addr(collisions) - 1`` scaled by ``cost_per_conflict``:
    with ``k`` threads hammering one address, ``k`` atomics retire in ``k``
    serial steps instead of 1.
    """

    def __init__(self, cost_per_conflict: float = 1.0, detector=None) -> None:
        self.cost_per_conflict = cost_per_conflict
        self._counts: Counter = Counter()
        self.total_conflicts = 0
        #: Optional :class:`repro.sanitize.racecheck.RaceDetector`; every
        #: recorded atomic is forwarded as a mediated write.
        self.detector = detector

    def record(self, address: int, count: int = 1) -> None:
        self._counts[address] += count
        if self.detector is not None:
            self.detector.log(address, write=True, atomic=True)

    def settle(self, tracker: CostTracker | None) -> float:
        """Charge this step's serialized span to ``tracker`` and reset."""
        if not self._counts:
            return 0.0
        worst = max(self._counts.values())
        serialized = self.cost_per_conflict * max(0, worst - 1)
        self.total_conflicts += sum(c - 1 for c in self._counts.values() if c > 1)
        self._counts.clear()
        if tracker is not None and serialized > 0:
            tracker.add_contention(serialized)
        return serialized


class AtomicArray:
    """A numpy-backed array whose updates are simulated atomics.

    Every :meth:`fetch_add` charges one unit of work and one atomic op to the
    tracker, and registers the touched address with an optional
    :class:`ContentionMeter` so colliding updates serialize in the simulated
    time model.
    """

    def __init__(self, values, tracker: CostTracker | None = None,
                 meter: ContentionMeter | None = None, base_address: int = 0):
        self.values = values
        self.tracker = tracker
        self.meter = meter
        self.base_address = base_address

    def fetch_add(self, index: int, delta) -> float:
        """Atomically add ``delta`` at ``index``; returns the prior value."""
        prior = self.values[index]
        self.values[index] = prior + delta
        if self.tracker is not None:
            self.tracker.add_work(1.0)
            self.tracker.add_atomic()
            self.tracker.access(self.base_address + int(index))
            detector = self.tracker.race_detector
            if detector is not None:
                detector.log(self.base_address + int(index), write=True,
                             atomic=True)
        if self.meter is not None:
            self.meter.record(self.base_address + int(index))
        return prior

    def compare_and_swap(self, index: int, expected, value) -> bool:
        """Atomically set ``index`` to ``value`` iff it still holds
        ``expected``; returns whether the swap happened.

        The CAS loop is the mediation the paper's implementation uses for
        first-touch detection and bucket moves; charged like one atomic.
        """
        if self.tracker is not None:
            self.tracker.add_work(1.0)
            self.tracker.add_atomic()
            self.tracker.access(self.base_address + int(index))
            detector = self.tracker.race_detector
            if detector is not None:
                detector.log(self.base_address + int(index), write=True,
                             atomic=True)
        if self.meter is not None:
            self.meter.record(self.base_address + int(index))
        if self.values[index] != expected:
            return False
        self.values[index] = value
        return True

    def read(self, index: int):
        """Atomic load (mediated: never races with other atomics)."""
        if self.tracker is not None:
            self.tracker.add_work(1.0)
            self.tracker.access(self.base_address + int(index))
            detector = self.tracker.race_detector
            if detector is not None:
                detector.log(self.base_address + int(index), write=False,
                             atomic=True)
        return self.values[index]

    def write(self, index: int, value) -> None:
        """A *plain* store, not an atomic: concurrent use from different
        simulated tasks is a data race the race detector will flag."""
        self.values[index] = value
        if self.tracker is not None:
            self.tracker.add_work(1.0)
            self.tracker.access(self.base_address + int(index))
            detector = self.tracker.race_detector
            if detector is not None:
                detector.log(self.base_address + int(index), write=True,
                             atomic=False)
