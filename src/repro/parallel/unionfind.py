"""Union-find (disjoint sets) with union by rank and path compression.

Substrate for the nucleus-hierarchy refinement: grouping r-cliques that
are connected through shared s-cliques.  Cost-accounted like the other
primitives (near-O(1) amortized per operation).
"""

from __future__ import annotations

import numpy as np

from .runtime import CostTracker


class UnionFind:
    """Disjoint sets over ``0..n-1``."""

    def __init__(self, n: int, tracker: CostTracker | None = None):
        self.parent = np.arange(n, dtype=np.int64)
        self.rank = np.zeros(n, dtype=np.int8)
        self.n_components = n
        self.tracker = tracker

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (with path compression).

        Charges one unit per ascent step *and* one per compression
        write: the second loop re-walks the path to point every node at
        the root, which is real (and cache-relevant) work the simulated
        machine must see.  A find over a path of k edges charges
        ``(k + 1)`` ascent units plus ``k - 1`` compression writes (the
        node already adjacent to the root is never rewritten); a second
        find over the now-compressed path charges ``2 + 0``.
        """
        root = x
        steps = 1
        while self.parent[root] != root:
            root = int(self.parent[root])
            steps += 1
        writes = 0
        while self.parent[x] != root:
            self.parent[x], x = root, int(self.parent[x])
            writes += 1
        if self.tracker is not None:
            self.tracker.add_work(float(steps + writes))
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if self.tracker is not None:
            self.tracker.add_work(1.0)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        self.n_components -= 1
        return True

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> dict[int, list[int]]:
        """Map each representative to the members of its set."""
        out: dict[int, list[int]] = {}
        for x in range(self.parent.size):
            out.setdefault(self.find(x), []).append(x)
        return out
