"""Parallel connected components (Shiloach--Vishkin style).

The nucleus-hierarchy refinement groups r-cliques connected through shared
s-cliques; serially that is union-find, but the work-span model's classic
connectivity algorithm is Shiloach--Vishkin hook-and-compress: repeated
rounds of (1) hooking each edge's higher-labeled root under the lower and
(2) pointer doubling, converging in O(log n) rounds with O((n + m) log n)
work.  This module implements it over an edge list with the usual cost
accounting, so hierarchy construction can be charged as a parallel
algorithm.
"""

from __future__ import annotations

import numpy as np

from .runtime import CostTracker, _log2


def connected_components(n: int, edges, tracker: CostTracker | None = None
                         ) -> np.ndarray:
    """Component label of every vertex in ``0..n-1``.

    ``edges`` is an (m, 2) array-like of undirected edges.  Labels are the
    minimum vertex id of each component.  Hook-and-compress: O(log n)
    rounds, each costing O(n + m) work and O(log n) span.
    """
    parent = np.arange(n, dtype=np.int64)
    edge_arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    u, v = edge_arr[:, 0], edge_arr[:, 1]
    rounds = 0
    while True:
        rounds += 1
        if tracker is not None:
            tracker.add_work(float(n + 2 * u.size))
            tracker.add_span(2.0 * _log2(n + u.size))
            tracker.add_round()
        # Hook: point the larger root at the smaller, per *unresolved* edge.
        # Edges whose endpoints already share a root must not participate:
        # with scatter writes, their no-op candidate could overwrite a
        # genuine hook on the same root (last write wins).
        pu, pv = parent[u], parent[v]
        live = pu != pv
        if not live.any():
            break
        u, v = u[live], v[live]  # resolved edges never unresolve
        lo = np.minimum(pu[live], pv[live])
        hi = np.maximum(pu[live], pv[live])
        # Among the remaining candidates any write order converges: every
        # candidate is strictly below the root it targets.
        parent[hi] = np.minimum(parent[hi], lo)
        # Compress: full pointer jumping until stable this round.
        while True:
            grand = parent[parent]
            if (grand == parent).all():
                break
            parent = grand
            if tracker is not None:
                tracker.add_work(float(n))
    return parent


def components_of_sets(n_items: int, groups,
                       tracker: CostTracker | None = None) -> np.ndarray:
    """Labels for items connected by membership in common groups.

    ``groups`` is an iterable of item-id lists; all items in one group end
    up in one component (a star of edges to the group's first member).
    This is exactly the s-clique-connectivity relation of the nucleus
    hierarchy: items are r-cliques, groups are surviving s-cliques.
    """
    edges = []
    scanned = 0
    for members in groups:
        scanned += len(members)
        first = members[0]
        for other in members[1:]:
            edges.append((first, other))
    if tracker is not None:
        # Building the star edge list touches every group member once;
        # uncharged it would make hierarchy construction look cheaper
        # than the edges it feeds to connected_components.
        tracker.add_work(float(scanned))
    if not edges:
        if tracker is not None:
            tracker.add_work(float(n_items))
        return np.arange(n_items, dtype=np.int64)
    return connected_components(n_items, edges, tracker)
