"""Open-addressing parallel hash table (the paper's workhorse structure).

The paper assumes parallel hash tables supporting ``n`` inserts / deletes /
queries in ``O(n)`` work and ``O(log n)`` span w.h.p. (Section 3), and uses
them for adjacency intersection, the clique-count table ``T``, and the
updated-set ``U``.  This implementation is a linear-probing table over numpy
arrays, mirroring the layout of the C++ original closely enough that the
paper's layout-sensitive optimizations (contiguous allocation, stored
pointers, the reserved top bit distinguishing empty cells, Section 5.3) can
be reproduced on top of it.

Cost accounting: each probe charges one unit of work to the attached
tracker, and each touched slot is reported to the cache simulator as an
address ``base_address + slot`` so that probe locality is visible to the
machine model.
"""

from __future__ import annotations

import numpy as np

from .runtime import CostTracker

#: Sentinel key marking an empty cell.  The paper reserves the top bit of
#: each key to flag emptiness (Section 5.3); all-ones is the canonical
#: empty pattern under that convention.
EMPTY_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)

_MASK64 = (1 << 64) - 1


def hash64(key: int) -> int:
    """A splitmix64-style finalizer: deterministic, well-mixing, 64-bit."""
    h = (key + 0x9E3779B97F4A7C15) & _MASK64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (h ^ (h >> 31)) & _MASK64


def hash64_many(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`hash64` over a ``uint64`` array.

    Unsigned 64-bit arithmetic wraps in numpy's C ufuncs, so the masking
    the scalar version does explicitly is implicit here; the outputs agree
    element for element.
    """
    h = np.asarray(keys, dtype=np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return h ^ (h >> np.uint64(31))


def _next_power_of_two(n: int) -> int:
    return 1 << max(1, (n - 1).bit_length())


class ParallelHashTable:
    """Linear-probing hash table with integer keys and numeric values.

    Parameters
    ----------
    capacity_hint:
        Expected number of entries; the table allocates the next power of
        two at least ``capacity_hint / max_load``.
    tracker:
        Optional :class:`CostTracker` charged one work unit per probe.
    base_address:
        Simulated base address of slot 0 (for the cache model).
    resizable:
        When False the capacity is frozen -- required when the table is a
        slab inside a contiguous multi-level layout (Section 5.2), whose
        slots' global indices must stay stable.
    """

    def __init__(self, capacity_hint: int = 8, tracker: CostTracker | None = None,
                 base_address: int = 0, max_load: float = 0.7,
                 resizable: bool = True):
        n_slots = _next_power_of_two(max(4, int(capacity_hint / max_load) + 1))
        self.keys = np.full(n_slots, EMPTY_KEY, dtype=np.uint64)
        self.values = np.zeros(n_slots, dtype=np.float64)
        self.size = 0
        self.max_load = max_load
        self.tracker = tracker
        self.base_address = base_address
        self.resizable = resizable

    @property
    def n_slots(self) -> int:
        return self.keys.shape[0]

    # -- internals ----------------------------------------------------------

    def _charge(self, probes: int, first_slot: int) -> None:
        if self.tracker is not None:
            self.tracker.add_work(float(probes))
            self.tracker.add_probes(probes)
            self.tracker.access(self.base_address + first_slot)

    def _probe(self, key: int) -> tuple[int, bool]:
        """Find the slot holding ``key`` or the empty slot where it belongs.

        Returns ``(slot, found)``.
        """
        mask = self.n_slots - 1
        slot = hash64(key) & mask
        first = slot
        probes = 1
        keys = self.keys
        empty = EMPTY_KEY
        key_u = np.uint64(key)
        while True:
            k = keys[slot]
            if k == key_u:
                self._charge(probes, first)
                return slot, True
            if k == empty:
                self._charge(probes, first)
                return slot, False
            slot = (slot + 1) & mask
            probes += 1

    def _grow(self) -> None:
        if not self.resizable:
            raise RuntimeError("hash table slab is full and frozen (resizable=False)")
        old_keys, old_values = self.keys, self.values
        self.keys = np.full(self.n_slots * 2, EMPTY_KEY, dtype=np.uint64)
        self.values = np.zeros(self.n_slots * 2, dtype=np.float64)
        self.size = 0
        for k, v in zip(old_keys, old_values):
            if k != EMPTY_KEY:
                slot, found = self._probe(int(k))
                self.keys[slot] = k
                self.values[slot] = v
                self.size += 1

    # -- public API ----------------------------------------------------------

    def insert_or_add(self, key: int, delta: float = 1.0) -> int:
        """Insert ``key`` with value ``delta``, or add ``delta`` to its value.

        This is the atomic-add insert used by ``COUNT-FUNC`` (Algorithm 2,
        line 4).  Returns the slot index.
        """
        if (self.size + 1) / self.n_slots > self.max_load:
            self._grow()
        slot, found = self._probe(key)
        if found:
            self.values[slot] += delta
        else:
            self.keys[slot] = np.uint64(key)
            self.values[slot] = delta
            self.size += 1
        if self.tracker is not None:
            self.tracker.add_atomic()
        return slot

    def set(self, key: int, value: float) -> int:
        """Insert or overwrite; returns the slot index."""
        if (self.size + 1) / self.n_slots > self.max_load:
            self._grow()
        slot, found = self._probe(key)
        if not found:
            self.keys[slot] = np.uint64(key)
            self.size += 1
        self.values[slot] = value
        return slot

    def get(self, key: int, default: float | None = None) -> float | None:
        slot, found = self._probe(key)
        if found:
            return float(self.values[slot])
        return default

    def slot_of(self, key: int) -> int:
        """The slot holding ``key``, or -1.  Slots are the paper's implicit
        r-clique indices when the table is laid out contiguously (5.3)."""
        slot, found = self._probe(key)
        return slot if found else -1

    def key_at(self, slot: int) -> int | None:
        k = self.keys[slot]
        return None if k == EMPTY_KEY else int(k)

    def __contains__(self, key: int) -> bool:
        _, found = self._probe(key)
        return found

    def __len__(self) -> int:
        return self.size

    def items(self):
        """Iterate over (key, value) pairs in slot order."""
        occupied = np.flatnonzero(self.keys != EMPTY_KEY)
        for slot in occupied:
            yield int(self.keys[slot]), float(self.values[slot])

    def occupied_slots(self) -> np.ndarray:
        return np.flatnonzero(self.keys != EMPTY_KEY)

    def clear(self) -> None:
        """Reset the table; charges work proportional to capacity (the cost
        the hash-table aggregation option pays every round, Section 5.5)."""
        if self.tracker is not None:
            self.tracker.add_work(float(self.n_slots))
        self.keys.fill(EMPTY_KEY)
        self.values.fill(0.0)
        self.size = 0
