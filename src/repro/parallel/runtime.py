"""Work-span cost accounting: the simulated parallel machine.

The paper evaluates its algorithms on a 30-core shared-memory machine and
reasons about them in the classic work-span model (Section 3): the *work* W
is the total number of operations, the *span* S is the longest dependency
path, and Brent's theorem bounds the running time on P processors by
``W/P + S``.

Pure Python cannot express fine-grained shared-memory parallelism (the GIL
serializes it), so this module provides the substitution described in
DESIGN.md: algorithms execute sequentially but charge every operation to a
:class:`CostTracker`, and a :class:`MachineModel` converts the accumulated
work, span, rounds, contention, and cache statistics into a simulated
running time for any thread count.  All of the paper's evaluation quantities
(self-relative speedup, slowdown factors of baselines, scalability curves)
are functions of these counters.

Typical usage::

    tracker = CostTracker()
    with tracker.phase("count"):
        tracker.add_work(123)
        with tracker.parallel(n_tasks) as region:
            for item in items:
                with region.task():
                    ...  # add_work / add_span inside charges this task

    machine = MachineModel()
    t30 = machine.time(tracker, threads=30)
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np


def _log2(n: float) -> float:
    """``log2(n)`` clamped below at 1, used for span of size-n primitives."""
    return max(1.0, math.log2(max(2.0, float(n))))


class _Frame:
    """One level of the span-accounting stack.

    A frame accumulates the span of the serial segment currently executing.
    Parallel regions push child frames (one per task), take the maximum over
    their spans, and charge ``max + log2(k)`` to the parent frame --- the
    fork-join rule of the work-span model.
    """

    __slots__ = ("span",)

    def __init__(self) -> None:
        self.span = 0.0


class _ParallelRegion:
    """Accounting context for one parallel-for; see :meth:`CostTracker.parallel`."""

    __slots__ = ("_tracker", "_n", "_max_task_span", "_detector",
                 "_region_id", "_task_counter", "_trace")

    def __init__(self, tracker: "CostTracker", n_tasks: int) -> None:
        self._tracker = tracker
        self._n = max(1, n_tasks)
        self._max_task_span = 0.0
        # Optional race detector (repro.sanitize): regions and tasks report
        # their lifetimes so shadow-logged accesses carry task ownership.
        self._detector = tracker.race_detector
        self._region_id = (self._detector.begin_region()
                           if self._detector is not None else 0)
        self._task_counter = 0
        # Optional trace recorder (repro.observe): same opt-in pattern.
        self._trace = tracker.trace
        if self._trace is not None:
            self._trace.begin_region(tracker, self._n)

    @contextmanager
    def task(self):
        """Run one parallel task; its span contributes via a max, not a sum."""
        frame = _Frame()
        self._tracker._frames.append(frame)
        detector = self._detector
        task_index = self._task_counter
        self._task_counter += 1
        if detector is not None:
            detector.begin_task(self._region_id, task_index)
        if self._trace is not None:
            self._trace.begin_task(self._tracker, task_index)
        try:
            yield frame
        finally:
            if self._trace is not None:
                self._trace.end_task(self._tracker, task_index)
            if detector is not None:
                detector.end_task()
            self._tracker._frames.pop()
            if frame.span > self._max_task_span:
                self._max_task_span = frame.span

    def task_span(self, span: float) -> None:
        """Record a task's span without a context manager (cheaper in loops)."""
        if span > self._max_task_span:
            self._max_task_span = span

    def close(self) -> None:
        self._tracker.add_span(self._max_task_span + _log2(self._n))
        if self._detector is not None:
            self._detector.end_region()
        if self._trace is not None:
            self._trace.end_region(self._tracker, self._max_task_span)


@dataclass
class PhaseStats:
    """Counters for one named phase of an algorithm.

    Work is kept in two bins: an exact integer bin (``work_int``, a Python
    int, so accumulation order cannot change it) and a float bin
    (``work_frac``) for genuinely fractional charges such as ``log2`` terms.
    Integer-valued charges dominate the hot paths, and binning them exactly
    is what lets the batch peeling engine charge a closed-form *sum* per
    batch yet still match the scalar loop's per-call charging bit for bit
    (see docs/cost-model.md).  :attr:`work` presents the combined total.
    """

    work_int: int = 0
    work_frac: float = 0.0
    span: float = 0.0
    rounds: int = 0
    atomic_ops: int = 0
    contention: float = 0.0
    cliques_enumerated: int = 0
    table_probes: int = 0
    #: Cache misses attributed to this phase (scaled by the simulator's
    #: sampling rate, like the simulator's own counters).
    cache_misses: int = 0
    #: Cross-shard messages / payload bytes charged to this phase by the
    #: distributed execution model (zero on single-node runs).  Messages
    #: pay a per-message latency, bytes a bandwidth term; batching many
    #: count-decrements into one message is what the amortization models.
    comm_messages: int = 0
    comm_bytes: int = 0

    @property
    def work(self) -> float:
        """Total work: the exact integer bin plus the fractional bin."""
        return self.work_int + self.work_frac

    def merge(self, other: "PhaseStats") -> None:
        self.work_int += other.work_int
        self.work_frac += other.work_frac
        self.span += other.span
        self.rounds += other.rounds
        self.atomic_ops += other.atomic_ops
        self.contention += other.contention
        self.cliques_enumerated += other.cliques_enumerated
        self.table_probes += other.table_probes
        self.cache_misses += other.cache_misses
        self.comm_messages += other.comm_messages
        self.comm_bytes += other.comm_bytes


class CostTracker:
    """Accumulates work, span, and auxiliary counters for one algorithm run.

    The tracker is the single point through which all simulated-machine
    accounting flows.  Algorithms charge costs with :meth:`add_work` and
    :meth:`add_span`; structured parallelism uses :meth:`parallel`.

    Counters beyond work/span:

    * ``rounds`` -- peeling rounds (each implies a barrier on a real machine).
    * ``atomic_ops`` / ``contention`` -- simulated fetch-and-adds and the
      serialized span they add when they collide on one address.
    * ``cliques_enumerated`` -- how many s-cliques were discovered; the paper
      reports this to explain why AND/AND-NN are not work-efficient.
    * ``table_probes`` -- hash-table probe count (cache-pressure proxy).
    * ``cache`` -- optional :class:`repro.machine.cache.CacheSimulator`; when
      attached, data structures feed it their address streams.
    * ``race_detector`` -- optional
      :class:`repro.sanitize.racecheck.RaceDetector`; when attached,
      parallel regions report task lifetimes to it and instrumented
      structures shadow-log their accesses (accounting is unchanged).
    * ``trace`` -- optional :class:`repro.observe.trace.TraceRecorder`;
      when attached, phases, parallel regions, and tasks report their
      begin/end to it so a Chrome-trace timeline can be exported
      (accounting is unchanged).
    """

    def __init__(self) -> None:
        self.total = PhaseStats()
        self.phases: dict[str, PhaseStats] = {}
        self.cache = None  # optional CacheSimulator
        self.race_detector = None  # optional sanitize.RaceDetector
        self.trace = None  # optional observe.TraceRecorder
        self.peak_memory_units = 0
        #: Measured wall-clock seconds per phase (host time, *not* part of
        #: the simulated-machine model; see docs/profiling.md).
        self.phase_wall: dict[str, float] = {}
        self._frames: list[_Frame] = [_Frame()]
        self._phase_stack: list[str] = []
        self._access_sink: list | None = None

    # -- charging ---------------------------------------------------------

    def add_work(self, amount: float) -> None:
        """Charge ``amount`` operations of work.

        Integer-valued amounts land in the exact integer bin, fractional
        amounts in the float bin (see :class:`PhaseStats`); either way the
        combined :attr:`work` total is what callers observe.
        """
        amount = float(amount)
        if amount.is_integer():
            self.add_work_int(int(amount))
            return
        self.total.work_frac += amount
        if self._phase_stack:
            self.phases[self._phase_stack[-1]].work_frac += amount

    def add_work_int(self, amount: int) -> None:
        """Charge an exactly-integer amount of work (bulk-charge friendly).

        Because the bin is a Python int, ``add_work_int(a + b)`` is
        indistinguishable from ``add_work_int(a); add_work_int(b)`` --- the
        property the batch peeling engine's closed-form charges rely on.
        """
        self.total.work_int += amount
        if self._phase_stack:
            self.phases[self._phase_stack[-1]].work_int += amount

    def add_work_frac_repeated(self, amount: float, count: int) -> None:
        """Charge ``count`` sequential copies of one fractional amount.

        Bit-for-bit equal to a loop of ``count`` :meth:`add_work` calls:
        binary64 addition is not associative, so the batch engines replay
        the repeated sum (``np.add.accumulate`` is strictly sequential)
        instead of multiplying.  This is how the batch listing engine
        reproduces the scalar COUNT-FUNC's per-clique ``s·log₂s`` sort
        charges without a Python-level loop.
        """
        if count <= 0:
            return
        amount = float(amount)
        if amount.is_integer():
            self.add_work_int(int(amount) * count)
            return
        seq = np.empty(count + 1, dtype=np.float64)
        seq[1:] = amount
        seq[0] = self.total.work_frac
        self.total.work_frac = float(np.add.accumulate(seq)[-1])
        if self._phase_stack:
            stats = self.phases[self._phase_stack[-1]]
            seq[0] = stats.work_frac
            stats.work_frac = float(np.add.accumulate(seq)[-1])

    def add_work_sequence(self, amounts) -> None:
        """Charge an ordered batch of work amounts, one :meth:`add_work`
        call per element, bit for bit.

        The two bins are independent, so the batch form splits the stream:
        integer-valued elements collapse into one exact int-bin sum, and
        the fractional elements are replayed sequentially (in their
        original relative order) through ``np.add.accumulate``, exactly as
        a Python loop of :meth:`add_work` calls would accumulate them.
        This is how the batch baseline engines reproduce interleaved
        per-triangle charge streams such as PKT's
        ``intersection, log-degree, log-degree, ...`` without a Python
        loop (docs/cost-model.md).
        """
        arr = np.asarray(amounts, dtype=np.float64)
        if arr.size == 0:
            return
        int_mask = arr == np.floor(arr)
        if int_mask.any():
            self.add_work_int(int(arr[int_mask].astype(np.int64).sum()))
        frac = arr[~int_mask]
        if frac.size == 0:
            return
        seq = np.empty(frac.size + 1, dtype=np.float64)
        seq[1:] = frac
        seq[0] = self.total.work_frac
        self.total.work_frac = float(np.add.accumulate(seq)[-1])
        if self._phase_stack:
            stats = self.phases[self._phase_stack[-1]]
            seq[0] = stats.work_frac
            stats.work_frac = float(np.add.accumulate(seq)[-1])

    def add_span_sequence(self, amounts) -> None:
        """Charge an ordered batch of span amounts, one :meth:`add_span`
        call per element, bit for bit.

        Span has no exact integer bin (the critical path is one float
        accumulator), so the whole sequence is replayed sequentially with
        ``np.add.accumulate`` --- once seeded from the current frame's
        span, and, when the charge reaches the root frame inside a phase,
        once more seeded from the phase's span tally.  Batch baseline
        engines use this to reproduce per-peel span streams such as PND's
        ``16, log2(touched + 2), ...`` exactly.
        """
        arr = np.asarray(amounts, dtype=np.float64)
        if arr.size == 0:
            return
        seq = np.empty(arr.size + 1, dtype=np.float64)
        seq[1:] = arr
        frame = self._frames[-1]
        seq[0] = frame.span
        frame.span = float(np.add.accumulate(seq)[-1])
        if self._phase_stack and len(self._frames) == 1:
            stats = self.phases[self._phase_stack[-1]]
            seq[0] = stats.span
            stats.span = float(np.add.accumulate(seq)[-1])

    def add_span(self, amount: float) -> None:
        """Charge span to the current frame.

        Inside a parallel task, the charge lands on the task's frame and
        combines with sibling tasks by *max* when the region closes; the
        authoritative critical-path length is the root frame's
        (:attr:`span`).  Phase tallies follow the same rule: only charges
        that reach the root frame --- serial segments and the
        ``max + log2(k)`` a closing region contributes --- are attributed
        to the current phase, so per-phase spans are critical-path
        fragments that sum to :attr:`span` (not flat per-task sums, which
        would overstate span-heavy phases by the task count).
        """
        self._frames[-1].span += amount
        if self._phase_stack and len(self._frames) == 1:
            self.phases[self._phase_stack[-1]].span += amount

    def add_round(self, count: int = 1) -> None:
        self.total.rounds += count
        if self._phase_stack:
            self.phases[self._phase_stack[-1]].rounds += count

    def add_atomic(self, count: int = 1) -> None:
        self.total.atomic_ops += count
        if self._phase_stack:
            self.phases[self._phase_stack[-1]].atomic_ops += count

    def add_contention(self, serialized_span: float) -> None:
        """Charge span serialized by atomics colliding on a single address."""
        self.total.contention += serialized_span
        if self._phase_stack:
            self.phases[self._phase_stack[-1]].contention += serialized_span

    def add_cliques(self, count: int) -> None:
        self.total.cliques_enumerated += count
        if self._phase_stack:
            self.phases[self._phase_stack[-1]].cliques_enumerated += count

    def add_probes(self, count: int) -> None:
        self.total.table_probes += count
        if self._phase_stack:
            self.phases[self._phase_stack[-1]].table_probes += count

    def add_comm(self, messages: int, n_bytes: int) -> None:
        """Charge cross-shard communication: ``messages`` network messages
        carrying ``n_bytes`` payload bytes in total.

        Single-node algorithms never call this, so their ``comm`` term is
        exactly zero and every pre-sharding figure is unchanged.  The
        distributed exchange charges one message per non-empty
        (source, destination) shard pair per exchange round and the summed
        batch entry bytes --- batching is the point: the latency term is
        paid per batch, not per count-decrement (docs/sharding.md).
        """
        self.total.comm_messages += messages
        self.total.comm_bytes += n_bytes
        if self._phase_stack:
            stats = self.phases[self._phase_stack[-1]]
            stats.comm_messages += messages
            stats.comm_bytes += n_bytes

    def note_memory_units(self, units: int) -> None:
        """Record a high-water mark of data-structure memory (paper units)."""
        if units > self.peak_memory_units:
            self.peak_memory_units = units

    def access(self, address: int) -> None:
        """Feed one memory access to the attached cache simulator, if any.

        Sampled misses are attributed to the current phase (scaled by the
        simulator's sampling rate, matching its global counters) so
        :meth:`MachineModel.time_breakdown` can localize cache pressure.
        """
        if self._access_sink is not None:
            self._access_sink.append(int(address))
            return
        if self.cache is not None:
            hit = self.cache.access(address)
            if hit is False:
                self.total.cache_misses += self.cache.sample
                if self._phase_stack:
                    self.phases[self._phase_stack[-1]].cache_misses += \
                        self.cache.sample

    def access_sequence(self, addresses) -> None:
        """Feed an ordered batch of addresses to the cache simulator.

        Equivalent to calling :meth:`access` once per element in order ---
        the simulator replays the stream through its vectorized
        :meth:`~repro.machine.cache.CacheSimulator.access_many`, so miss
        counts, LRU state, and sampling phase come out identical.  This is
        how the batch peeling engine preserves cache-simulation exactness
        while charging per batch.
        """
        if self._access_sink is not None:
            self._access_sink.extend(int(a) for a in addresses)
            return
        if self.cache is None:
            return
        raw_misses = self.cache.access_many(addresses)
        if raw_misses:
            scaled = raw_misses * self.cache.sample
            self.total.cache_misses += scaled
            if self._phase_stack:
                self.phases[self._phase_stack[-1]].cache_misses += scaled

    def begin_access_capture(self) -> list[int]:
        """Divert subsequent :meth:`access` calls into a list (no simulation).

        Used by batch kernels that must *interleave* a sub-structure's
        address stream (e.g. the hash aggregator's probe addresses) into a
        larger batch stream before replaying it via :meth:`access_sequence`.
        Always pair with :meth:`end_access_capture`.
        """
        self._access_sink = []
        return self._access_sink

    def end_access_capture(self) -> list[int]:
        """Stop diverting accesses; returns the captured address list."""
        captured = self._access_sink if self._access_sink is not None else []
        self._access_sink = None
        return captured

    # -- structure --------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Attribute costs charged inside the block to a named phase.

        Also records measured wall-clock seconds for the block into
        :attr:`phase_wall` (nested phases are included in their parent's
        time).  Wall-clock is an observation of the host interpreter, kept
        strictly outside the simulated cost model.
        """
        if name not in self.phases:
            self.phases[name] = PhaseStats()
        self._phase_stack.append(name)
        if self.trace is not None:
            self.trace.begin_phase(self, name)
        wall_start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - wall_start
            self.phase_wall[name] = self.phase_wall.get(name, 0.0) + elapsed
            if self.trace is not None:
                self.trace.end_phase(self, name)
            self._phase_stack.pop()

    @contextmanager
    def parallel(self, n_tasks: int):
        """A parallel-for over ``n_tasks``; spans of tasks combine by max."""
        region = _ParallelRegion(self, n_tasks)
        try:
            yield region
        finally:
            region.close()

    # -- results ----------------------------------------------------------

    @property
    def work(self) -> float:
        return self.total.work

    @property
    def span(self) -> float:
        """Critical-path length: the root frame's accumulated span."""
        return self._frames[0].span

    @property
    def rounds(self) -> int:
        return self.total.rounds

    def summary(self) -> dict:
        """A plain-dict snapshot, convenient for harness tables and tests."""
        out = {
            "work": self.total.work,
            "span": self.span,
            "rounds": self.total.rounds,
            "atomic_ops": self.total.atomic_ops,
            "contention": self.total.contention,
            "cliques_enumerated": self.total.cliques_enumerated,
            "table_probes": self.total.table_probes,
            "peak_memory_units": self.peak_memory_units,
            "comm_messages": self.total.comm_messages,
            "comm_bytes": self.total.comm_bytes,
        }
        if self.cache is not None:
            out["cache_accesses"] = self.cache.accesses
            out["cache_misses"] = self.cache.misses
        return out


@dataclass
class MachineModel:
    """Converts :class:`CostTracker` counters into simulated running time.

    The model follows Brent's bound ``W/P + S`` with three realism terms the
    paper's evaluation depends on:

    * a per-round barrier cost growing with ``log2(P)`` (global peeling
      synchronizes every round -- this is what makes PND's 10^4x round
      blowup catastrophic);
    * serialized contention span from colliding atomics (what the simple
      array aggregation of Section 5.5 suffers from);
    * a cache-miss penalty applied to the tracked miss count (what the
      contiguous-space / stored-pointer / relabeling optimizations of
      Sections 5.2--5.4 improve).

    Hyper-threads past the physical core count contribute at a discounted
    rate (``ht_yield``), reproducing the paper's 30-core/60-thread shape.

    Times are in abstract "operation" units; only ratios are meaningful,
    which is all the paper's figures report.
    """

    cores: int = 30
    ht_yield: float = 0.35
    span_factor: float = 1.0
    barrier_base: float = 40.0
    barrier_per_log_thread: float = 12.0
    miss_penalty: float = 40.0
    contention_factor: float = 8.0
    #: Cross-shard communication: each message pays a fixed latency and
    #: each payload byte a bandwidth cost (operation units, like the other
    #: parameters).  Single-node trackers charge no comm, so the sixth
    #: ``comm`` term is exactly zero for them and every pre-sharding
    #: figure is unchanged (docs/sharding.md).
    comm_latency: float = 400.0
    comm_byte_time: float = 0.5

    def effective_parallelism(self, threads: int) -> float:
        """Physical-core-equivalent throughput of ``threads`` threads."""
        threads = max(1, threads)
        if threads <= self.cores:
            return float(threads)
        return self.cores + self.ht_yield * (threads - self.cores)

    def barrier_cost(self, threads: int) -> float:
        """Cost of one global round barrier at ``threads`` threads."""
        return self.barrier_base + self.barrier_per_log_thread * _log2(threads)

    def comm_cost(self, messages: int, n_bytes: int) -> float:
        """Simulated time of ``messages`` messages carrying ``n_bytes``.

        ``messages * comm_latency + n_bytes * comm_byte_time``: the
        closed-form the exchange unit tests pin.  Latency is paid per
        batch, which is why batching cross-shard count-decrements
        amortizes it.
        """
        return self.comm_latency * messages + self.comm_byte_time * n_bytes

    def _terms(self, work: float, span: float, rounds: int,
               contention: float, cache_misses: int,
               threads: int, comm_messages: int = 0,
               comm_bytes: int = 0) -> dict[str, float]:
        """The six additive components of the time estimate.

        ``time()`` is by construction the exact sum of these terms; the
        per-phase rows of :meth:`time_breakdown` reuse the same formula on
        :class:`PhaseStats` counters.  ``comm`` is zero unless the tracker
        was charged by the distributed exchange (:mod:`repro.distributed`).
        """
        p = self.effective_parallelism(threads)
        parallel = threads > 1  # barriers/collisions only hurt parallel runs
        return {
            "work": work / p,
            "span": self.span_factor * span,
            "barrier": rounds * self.barrier_cost(threads) if parallel
            else 0.0,
            "contention": self.contention_factor * contention if parallel
            else 0.0,
            "cache": self.miss_penalty * cache_misses / p,
            "comm": self.comm_cost(comm_messages, comm_bytes),
        }

    def time(self, tracker: CostTracker, threads: int = 1) -> float:
        """Simulated running time of a tracked run on ``threads`` threads."""
        misses = tracker.cache.misses if tracker.cache is not None else 0
        terms = self._terms(tracker.total.work, tracker.span,
                            tracker.total.rounds, tracker.total.contention,
                            misses, threads, tracker.total.comm_messages,
                            tracker.total.comm_bytes)
        return (terms["work"] + terms["span"] + terms["barrier"]
                + terms["contention"] + terms["cache"] + terms["comm"])

    def time_breakdown(self, tracker: CostTracker,
                       threads: int = 1) -> dict:
        """Decompose :meth:`time` into its six terms, per phase and total.

        Returns a dict with keys:

        * ``"threads"`` / ``"effective_parallelism"``;
        * ``"total"`` -- the six terms (``work``, ``span``, ``barrier``,
          ``contention``, ``cache``, ``comm``) plus their exact sum
          ``time``, equal to :meth:`time` for the same tracker and thread
          count;
        * ``"phases"`` -- the same six terms evaluated on each
          :class:`PhaseStats`.  Phase counters (including span, see
          :meth:`CostTracker.add_span`) partition the totals, so phase
          ``time`` entries sum to the total up to float error and any
          charges recorded outside all phases.
        """
        misses = tracker.cache.misses if tracker.cache is not None else 0
        total = self._terms(tracker.total.work, tracker.span,
                            tracker.total.rounds, tracker.total.contention,
                            misses, threads, tracker.total.comm_messages,
                            tracker.total.comm_bytes)
        total["time"] = (total["work"] + total["span"] + total["barrier"]
                         + total["contention"] + total["cache"]
                         + total["comm"])
        phases = {}
        for name, stats in tracker.phases.items():
            terms = self._terms(stats.work, stats.span, stats.rounds,
                                stats.contention, stats.cache_misses, threads,
                                stats.comm_messages, stats.comm_bytes)
            terms["time"] = (terms["work"] + terms["span"] + terms["barrier"]
                             + terms["contention"] + terms["cache"]
                             + terms["comm"])
            phases[name] = terms
        return {
            "threads": threads,
            "effective_parallelism": self.effective_parallelism(threads),
            "total": total,
            "phases": phases,
        }

    def speedup(self, tracker: CostTracker, threads: int) -> float:
        """Self-relative speedup ``T(1)/T(threads)`` for one tracked run."""
        return self.time(tracker, 1) / self.time(tracker, threads)
