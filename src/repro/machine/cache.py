"""Set-associative LRU cache simulator.

The practical optimizations of Section 5 are, at heart, cache optimizations:
contiguous slabs for the last-level tables (5.2), stored up-pointers instead
of binary searches (5.3), and orientation-order relabeling (5.4) all change
*which simulated addresses are touched in what order* when the clique table
``T`` is accessed.  Since we cannot observe a real machine's caches from
Python, this module simulates one: data structures map their cells into a
flat simulated address space, and every access is fed through a classic
set-associative LRU model.  Miss counts then feed the
:class:`~repro.parallel.runtime.MachineModel` time estimate.

The default geometry is a small L2-like cache; the figures only compare
configurations against each other, so the geometry's role is to make
locality differences visible, not to match Cascade Lake byte-for-byte.
"""

from __future__ import annotations

import numpy as np


class CacheSimulator:
    """A ``n_sets x ways`` LRU cache over a flat word-addressed space.

    Parameters
    ----------
    line_words:
        Words (table cells) per cache line; must be a power of two.
    n_sets:
        Number of sets; must be a power of two.
    ways:
        Associativity.
    sample:
        Simulate only every ``sample``-th access (1 = all).  Miss and access
        counts are scaled back up so ratios remain comparable.
    """

    def __init__(self, line_words: int = 8, n_sets: int = 256, ways: int = 8,
                 sample: int = 1):
        if line_words & (line_words - 1):
            raise ValueError("line_words must be a power of two")
        if n_sets & (n_sets - 1):
            raise ValueError("n_sets must be a power of two")
        self.line_bits = line_words.bit_length() - 1
        self.set_mask = n_sets - 1
        self.ways = ways
        self.sample = max(1, sample)
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((n_sets, ways), dtype=np.int64)
        self._clock = 0
        self._skip = 0
        self._raw_accesses = 0
        self._raw_misses = 0

    @property
    def accesses(self) -> int:
        return self._raw_accesses * self.sample

    @property
    def misses(self) -> int:
        return self._raw_misses * self.sample

    @property
    def miss_rate(self) -> float:
        return self._raw_misses / self._raw_accesses if self._raw_accesses else 0.0

    def access(self, address: int) -> bool | None:
        """Touch ``address``.

        Returns True on a simulated hit, False on a simulated miss, and
        ``None`` when the access was skipped by sampling (``sample > 1``).
        Skipped accesses are *not* hits --- callers attributing misses (e.g.
        per-phase profiling) must only act on an explicit False.
        """
        if self.sample > 1:
            self._skip += 1
            if self._skip < self.sample:
                return None
            self._skip = 0
        self._raw_accesses += 1
        self._clock += 1
        line = address >> self.line_bits
        set_idx = line & self.set_mask
        tags = self._tags[set_idx]
        hit = np.flatnonzero(tags == line)
        if hit.size:
            self._stamp[set_idx, hit[0]] = self._clock
            return True
        self._raw_misses += 1
        victim = int(np.argmin(self._stamp[set_idx]))
        tags[victim] = line
        self._stamp[set_idx, victim] = self._clock
        return False

    def access_many(self, addresses) -> int:
        """Touch an ordered batch of addresses; returns the raw miss count.

        Exactly equivalent to calling :meth:`access` once per element in
        order --- same sampling phase, same LRU clock values, same
        first-minimum victim choice --- but grouped per cache set so the
        Python-level work is proportional to the number of *simulated*
        accesses rather than paying numpy dispatch per call.  Accesses to
        different sets never interact (each set has its own tag/stamp rows
        and the global clock values are preserved per access), which is what
        makes the per-set replay legal.
        """
        addrs = np.asarray(addresses, dtype=np.int64).ravel()
        n = addrs.size
        if n == 0:
            return 0
        if self.sample > 1:
            # access() simulates every call where the incremented _skip
            # reaches sample; element i (0-based) is therefore simulated
            # iff (_skip + i + 1) % sample == 0, and the final phase is
            # (_skip + n) % sample regardless of how many fired.
            offsets = np.arange(1, n + 1, dtype=np.int64)
            simulated = np.flatnonzero((self._skip + offsets) % self.sample == 0)
            self._skip = (self._skip + n) % self.sample
            addrs = addrs[simulated]
            n = addrs.size
            if n == 0:
                return 0
        lines = addrs >> self.line_bits
        sets = (lines & self.set_mask).astype(np.int64)
        clocks = self._clock + 1 + np.arange(n, dtype=np.int64)
        self._clock += n
        self._raw_accesses += n
        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        boundaries = np.flatnonzero(sorted_sets[1:] != sorted_sets[:-1]) + 1
        misses = 0
        for group in np.split(order, boundaries):
            set_idx = int(sets[group[0]])
            tags = self._tags[set_idx].tolist()
            stamps = self._stamp[set_idx].tolist()
            for i in group:
                line = int(lines[i])
                clock = int(clocks[i])
                try:
                    way = tags.index(line)
                except ValueError:
                    misses += 1
                    way = stamps.index(min(stamps))
                    tags[way] = line
                stamps[way] = clock
            self._tags[set_idx] = tags
            self._stamp[set_idx] = stamps
        self._raw_misses += misses
        return misses

    def reset_counters(self) -> None:
        """Zero the counters *and* the sampling/recency state.

        Resetting must not let the sampling phase (``_skip``) or the LRU
        clock bleed from one measured region into the next, otherwise two
        identical access streams measured back to back disagree.  Cache
        *contents* (the tags) survive --- only measurement state resets; the
        recency stamps are re-zeroed with the clock so stamp comparisons
        stay consistent.
        """
        self._raw_accesses = 0
        self._raw_misses = 0
        self._skip = 0
        self._clock = 0
        self._stamp[:] = 0

    def reset(self) -> None:
        """Full reset: counters, sampling state, and cache contents."""
        self.reset_counters()
        self._tags[:] = -1


class AddressSpace:
    """Allocates disjoint simulated address ranges to data structures.

    Non-contiguous allocations are deliberately spread out (separated by a
    random-ish stride) the way independent ``malloc`` blocks are, while
    contiguous allocation packs ranges back to back --- reproducing the
    §5.2 distinction the cache simulator is meant to observe.
    """

    #: Gap inserted between independently-allocated blocks, mimicking heap
    #: fragmentation between separate allocations.
    SCATTER_GAP = 4096 + 64

    def __init__(self) -> None:
        self._next = 0

    def alloc(self, words: int, contiguous_with_previous: bool = False) -> int:
        """Reserve ``words`` cells; returns the base address."""
        if not contiguous_with_previous:
            self._next += self.SCATTER_GAP
        base = self._next
        self._next += int(words)
        return base
