"""Multi-level storage of overlapping sets --- the Section 5.1 generalization.

The paper remarks that the multi-level parallel hash table "is more
generally applicable in scenarios where the efficient storage and access of
sets with significant overlap is desired", naming hypergraph adjacency
lists as the example.  :class:`MultiLevelSetStore` is that generalization:
a trie of hash levels storing arbitrary-size sorted sets with an attached
value, sharing prefixes between sets, with the paper's memory-unit
accounting (one unit per stored element or pointer) so the flat-versus-
nested trade-off can be measured.

``levels`` bounds the trie depth: the first ``levels - 1`` elements of a
set each key one trie level, and the remaining elements are stored as a
packed suffix at the last level (exactly the CliqueTable layout, but for
variable-size sets).
"""

from __future__ import annotations


class _Node:
    __slots__ = ("children", "suffixes")

    def __init__(self) -> None:
        self.children: dict[int, _Node] = {}
        self.suffixes: dict[tuple, float] = {}


class MultiLevelSetStore:
    """Stores (sorted set -> value) associations with prefix sharing."""

    def __init__(self, levels: int = 2):
        if levels < 1:
            raise ValueError("levels must be at least 1")
        self.levels = levels
        self._root = _Node()
        self.size = 0

    def _locate(self, elements, create: bool) -> tuple[_Node, tuple] | None:
        ordered = tuple(sorted(int(x) for x in elements))
        if len(set(ordered)) != len(ordered):
            raise ValueError("sets may not contain duplicates")
        node = self._root
        depth = min(self.levels - 1, max(0, len(ordered) - 1))
        for element in ordered[:depth]:
            child = node.children.get(element)
            if child is None:
                if not create:
                    return None
                child = _Node()
                node.children[element] = child
            node = child
        return node, ordered[depth:]

    def insert(self, elements, value: float = 0.0) -> None:
        """Insert a set (or overwrite its value)."""
        node, suffix = self._locate(elements, create=True)
        if suffix not in node.suffixes:
            self.size += 1
        node.suffixes[suffix] = value

    def add(self, elements, delta: float) -> float:
        """Add ``delta`` to a stored set's value; returns the new value."""
        located = self._locate(elements, create=False)
        if located is None:
            raise KeyError(tuple(elements))
        node, suffix = located
        if suffix not in node.suffixes:
            raise KeyError(tuple(elements))
        node.suffixes[suffix] += delta
        return node.suffixes[suffix]

    def get(self, elements, default=None):
        located = self._locate(elements, create=False)
        if located is None:
            return default
        node, suffix = located
        return node.suffixes.get(suffix, default)

    def __contains__(self, elements) -> bool:
        return self.get(elements) is not None

    def __len__(self) -> int:
        return self.size

    def items(self):
        """Iterate (set, value) pairs, sets as sorted tuples."""
        stack = [(self._root, ())]
        while stack:
            node, prefix = stack.pop()
            for suffix, value in node.suffixes.items():
                yield prefix + suffix, value
            for element, child in node.children.items():
                stack.append((child, prefix + (element,)))

    @property
    def memory_units(self) -> int:
        """Paper-convention units: one per stored element or pointer.

        Intermediate trie entries cost 2 (element + pointer); last-level
        suffixes cost their length.
        """
        units = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            units += 2 * len(node.children)
            units += sum(len(suffix) for suffix in node.suffixes)
            stack.extend(node.children.values())
        return units


def flat_memory_units(sets) -> int:
    """Units of the flat (one-level) representation: every element stored."""
    return sum(len(s) for s in sets)
