"""Simulated machine components (cache model, address space)."""

from .cache import AddressSpace, CacheSimulator
from .setstore import MultiLevelSetStore, flat_memory_units

__all__ = ["CacheSimulator", "AddressSpace", "MultiLevelSetStore",
           "flat_memory_units"]
