"""The clique table ``T``: multi-level storage of per-r-clique counts.

Algorithm 2 keys a parallel hash table by r-cliques.  Concatenating ``r``
vertex ids per key is space-infeasible for large ``r`` (Section 5.1), so the
paper introduces layered layouts, all reproduced here behind one interface:

* **one-level** -- a single hash table keyed by whole r-cliques;
* **two-level** -- an array of size ``n`` indexed by the clique's first
  vertex, pointing at hash tables keyed by the remaining (r-1)-clique;
* **l-multi-level** -- nested hash tables, one vertex per intermediate
  level, the last level keyed by the remaining (r-l+1)-clique.

Orthogonal options (Sections 5.2--5.3):

* **contiguous** -- last-level tables packed back-to-back in one slab
  (their sizes prefix-summed), versus separately-allocated blocks;
* **inverse index map** -- translating a cell index back to its clique's
  vertices either by *binary search* over the table-start prefix sums, or
  by the *stored pointers* trick: scan right from the cell to the first
  empty cell (empty cells and inter-table barriers carry up-pointers to the
  owning table), which is cache-friendlier under contiguous layout.

The cell index of an r-clique (its position among all last-level cells) is
the identifier the bucketing structure ``B`` uses; the index is identical
whether or not the layout is contiguous (Section 5.3), so contiguity only
changes *simulated addresses* and therefore cache behavior.

Memory accounting follows Figures 3--4: one unit per stored vertex id and
per pointer; the two-level top array costs ``n`` units.
"""

from __future__ import annotations

import numpy as np

from ..cliques.encode import MAX_KEY_BITS, CliqueEncoder, KeyWidthError, \
    min_levels
from ..machine.cache import AddressSpace
from ..parallel.hashtable import EMPTY_KEY, hash64, hash64_many
from ..parallel.primitives import segment_offsets
from ..parallel.runtime import CostTracker, _log2

_EMPTY = np.uint64(EMPTY_KEY)


def _next_pow2(x: int) -> int:
    return 1 << max(2, (x - 1).bit_length())


class CliqueTable:
    """Per-r-clique count storage with the paper's layout options.

    Parameters
    ----------
    n:
        Number of graph vertices.
    r:
        Clique size stored (keys are r-cliques).
    cliques:
        Array of shape (count, r); each row one r-clique, vertices ascending.
    levels:
        Number of table levels, ``1 <= levels <= r``.
    style:
        ``"array"`` -- the two-level array+hash combination (requires
        ``levels == 2``); ``"hash"`` -- nested hash tables (the
        l-multi-level option).  Ignored for ``levels == 1``.
    contiguous:
        Pack last-level tables into one address slab (Section 5.2).
    inverse_map:
        ``"binary_search"`` or ``"stored_pointers"`` (the latter requires
        ``contiguous=True``, as in the paper).
    """

    def __init__(self, n: int, r: int, cliques: np.ndarray, levels: int = 1,
                 style: str = "hash", contiguous: bool = False,
                 inverse_map: str = "binary_search",
                 tracker: CostTracker | None = None,
                 address_space: AddressSpace | None = None,
                 max_load: float = 0.7):
        cliques = np.asarray(cliques, dtype=np.int64).reshape(-1, r)
        if not 1 <= levels <= r:
            raise ValueError(f"levels must be in [1, {r}], got {levels}")
        if style not in ("array", "hash"):
            raise ValueError("style must be 'array' or 'hash'")
        if style == "array" and levels != 2:
            raise ValueError("the array+hash combination is exactly two levels")
        if inverse_map not in ("binary_search", "stored_pointers"):
            raise ValueError("inverse_map must be 'binary_search' or "
                             "'stored_pointers'")
        if inverse_map == "stored_pointers" and not contiguous:
            raise ValueError("stored pointers require contiguous memory "
                             "(paper Section 5.3)")
        if levels < min_levels(n, r):
            raise KeyWidthError(n, r - levels + 1,
                                max(1, (max(2, n) - 1).bit_length()))
        self.n = n
        self.r = r
        self.levels = levels
        self.style = style
        self.contiguous = contiguous
        self.inverse_map = inverse_map
        self.tracker = tracker
        self.suffix_width = r - levels + 1
        self._encoder = CliqueEncoder(n, self.suffix_width)
        self._build(cliques, address_space or AddressSpace(), max_load)

    # -- construction -------------------------------------------------------

    def _build(self, cliques: np.ndarray, space: AddressSpace,
               max_load: float) -> None:
        count = cliques.shape[0]
        self.n_cliques = count
        prefix_w = self.levels - 1
        if count:
            order = np.lexsort(tuple(cliques[:, c] for c in range(self.r - 1, -1, -1)))
            cliques = cliques[order]
        if prefix_w and count:
            prefixes = cliques[:, :prefix_w]
            changed = np.any(np.diff(prefixes, axis=0) != 0, axis=1)
            group_starts = np.concatenate([[0], np.flatnonzero(changed) + 1])
            self._paths = prefixes[group_starts]
        else:
            group_starts = np.array([0] if count else [], dtype=np.int64)
            self._paths = np.zeros((1 if count else 0, 0), dtype=np.int64)
        group_sizes = np.diff(np.concatenate([group_starts, [count]])) \
            if count else np.array([], dtype=np.int64)
        self.n_tables = len(group_sizes)
        caps = np.array([_next_pow2(int(np.ceil(sz / max_load)) + 1)
                         for sz in group_sizes], dtype=np.int64)
        self._starts = np.zeros(self.n_tables + 1, dtype=np.int64)
        self._starts[1:] = np.cumsum(caps)
        self.total_cells = int(self._starts[-1])
        self._caps = caps
        self._keys = np.full(self.total_cells, _EMPTY, dtype=np.uint64)
        self._counts = np.zeros(self.total_cells, dtype=np.float64)
        # Owner array doubles as the stored up-pointers of Section 5.3.
        self._owner = np.zeros(self.total_cells, dtype=np.int64)
        for tid in range(self.n_tables):
            self._owner[self._starts[tid]:self._starts[tid + 1]] = tid

        # Simulated addresses: contiguous packs tables into one slab;
        # otherwise each table is a separate scattered allocation.
        if self.contiguous:
            base = space.alloc(self.total_cells)
            self._table_addr = base + self._starts[:-1]
        else:
            self._table_addr = np.array(
                [space.alloc(int(c)) for c in caps], dtype=np.int64)
        # Auxiliary address regions (prefix-sum array, intermediate levels).
        self._prefix_addr = space.alloc(self.n_tables + 1)
        self._level_addrs = [space.alloc(max(1, self.n))
                             for _ in range(max(0, self.levels - 1))]

        # Top-level routing: first-vertex array (two-level "array" style) or
        # a path dictionary standing in for the nested intermediate tables.
        self._path_to_tid: dict[tuple, int] = {
            tuple(int(x) for x in self._paths[tid]): tid
            for tid in range(self.n_tables)}
        if self.style == "array" and self.levels == 2:
            self._top_array = np.full(self.n, -1, dtype=np.int64)
            for tid in range(self.n_tables):
                self._top_array[int(self._paths[tid][0])] = tid

        # Insert every clique's suffix key.
        for row in cliques:
            tid = self._path_to_tid[tuple(int(x) for x in row[:prefix_w])]
            key = self._encoder.encode(row[prefix_w:])
            self._insert(tid, key)

        self.memory_units = self._memory_units()
        if self.tracker is not None:
            self.tracker.note_memory_units(self.memory_units)

        # Lazy caches for the vectorized (batch-engine) entry points; both
        # depend only on state that is frozen after construction.
        self._next_boundary: np.ndarray | None = None
        self._path_code_table: np.ndarray | None = None

    def _insert(self, tid: int, key: int) -> int:
        start = int(self._starts[tid])
        cap = int(self._caps[tid])
        slot = hash64(key) & (cap - 1)
        key_u = np.uint64(key)
        probes = 1
        while True:
            cell = start + slot
            if self._keys[cell] == _EMPTY:
                self._keys[cell] = key_u
                break
            if self._keys[cell] == key_u:
                break
            if probes >= cap:
                raise RuntimeError(
                    f"clique table sub-table {tid} is full: probed all "
                    f"{cap} slots inserting key {key} without finding it "
                    f"or an empty cell")
            slot = (slot + 1) & (cap - 1)
            probes += 1
        if self.tracker is not None:
            # Hashing/comparing a key costs work proportional to its width:
            # wide one-level keys are the expense the layered layouts avoid.
            self.tracker.add_work(float(probes * self.suffix_width))
            self.tracker.add_probes(probes)
        return cell

    def _memory_units(self) -> int:
        """Paper-convention memory units (Figures 3-4): vertices + pointers."""
        last = self.n_cliques * self.suffix_width
        if self.levels == 1:
            return last
        if self.style == "array":
            return self.n + last
        # Nested hash levels: each intermediate entry is a vertex + pointer.
        units = last
        if self.n_cliques:
            for depth in range(1, self.levels):
                prefixes = {tuple(int(x) for x in p[:depth])
                            for p in self._paths}
                units += 2 * len(prefixes)
        return units

    # -- lookup path ---------------------------------------------------------

    def _route(self, clique) -> int:
        """Table id for a clique, charging the intermediate-level walk."""
        prefix_w = self.levels - 1
        if prefix_w == 0:
            return 0 if self.n_tables else -1
        tracker = self.tracker
        if self.style == "array":
            if tracker is not None:
                tracker.add_work(1.0)
                tracker.access(self._level_addrs[0] + int(clique[0]))
            return int(self._top_array[int(clique[0])])
        if tracker is not None:
            for depth in range(prefix_w):
                tracker.add_work(1.0)
                tracker.add_probes(1)
                tracker.access(self._level_addrs[depth] + int(clique[depth]))
        return self._path_to_tid.get(
            tuple(int(x) for x in clique[:prefix_w]), -1)

    def cell_of(self, clique) -> int:
        """The global cell index of an r-clique (vertices ascending), or -1."""
        tid = self._route(clique)
        if tid < 0:
            return -1
        key = np.uint64(self._encoder.encode(clique[self.levels - 1:]))
        start = int(self._starts[tid])
        cap = int(self._caps[tid])
        slot = hash64(int(key)) & (cap - 1)
        probes = 1
        addr_base = int(self._table_addr[tid])
        while True:
            cell = start + slot
            found = self._keys[cell]
            if found == key:
                break
            if found == _EMPTY:
                cell = -1
                break
            slot = (slot + 1) & (cap - 1)
            probes += 1
        if self.tracker is not None:
            self.tracker.add_work(float(probes * self.suffix_width))
            self.tracker.add_probes(probes)
            self.tracker.access(addr_base + slot)
        return cell

    # -- counts ---------------------------------------------------------------

    def add_count(self, clique, delta: float) -> int:
        """Atomically add ``delta`` to the clique's count; returns its cell."""
        cell = self.cell_of(clique)
        if cell < 0:
            raise KeyError(f"clique {tuple(clique)} not present in table")
        self._counts[cell] += delta
        if self.tracker is not None:
            self.tracker.add_atomic()
            detector = self.tracker.race_detector
            if detector is not None:
                # The count update is a fetch-and-add in the paper's
                # implementation: shadow-log it as a mediated write.
                detector.log(self._address_of(cell), write=True, atomic=True)
        return cell

    def add_count_at(self, cell: int, delta: float) -> None:
        """Add ``delta`` at a known cell (charges the memory access only)."""
        self._counts[cell] += delta
        if self.tracker is not None:
            self.tracker.add_work(1.0)
            self.tracker.add_atomic()
            self.tracker.access(self._address_of(cell))
            detector = self.tracker.race_detector
            if detector is not None:
                detector.log(self._address_of(cell), write=True, atomic=True)

    def count_at(self, cell: int) -> float:
        return float(self._counts[cell])

    @property
    def counts(self) -> np.ndarray:
        """The raw per-cell count array (cells of absent keys hold 0)."""
        return self._counts

    def _address_of(self, cell: int) -> int:
        tid = int(self._owner[cell])
        return int(self._table_addr[tid]) + (cell - int(self._starts[tid]))

    # -- inverse index map (Section 5.3) ---------------------------------------

    def decode(self, cell: int) -> tuple[int, ...]:
        """Recover the r-clique stored at ``cell`` (vertices ascending)."""
        if self.inverse_map == "stored_pointers":
            tid = self._decode_tid_stored_pointers(cell)
        else:
            tid = self._decode_tid_binary_search(cell)
        suffix = self._encoder.decode(int(self._keys[cell]))
        path = tuple(int(x) for x in self._paths[tid])
        if self.tracker is not None:
            self.tracker.add_work(float(self.suffix_width))
        return path + suffix

    def _decode_tid_binary_search(self, cell: int) -> int:
        tid = int(np.searchsorted(self._starts, cell, side="right")) - 1
        if self.tracker is not None:
            steps = int(_log2(self.n_tables + 1))
            self.tracker.add_work(float(steps))
            # A binary search bounces across the prefix-sum array.
            lo, hi = 0, self.n_tables
            while lo < hi:
                mid = (lo + hi) // 2
                self.tracker.access(self._prefix_addr + mid)
                if self._starts[mid + 1] <= cell:
                    lo = mid + 1
                else:
                    hi = mid
        return tid

    def _decode_tid_stored_pointers(self, cell: int) -> int:
        """Linear scan right to the first empty cell / barrier (up-pointer)."""
        tid = int(self._owner[cell])
        end = int(self._starts[tid + 1])
        i = cell + 1
        steps = 1
        while i < end and self._keys[i] != _EMPTY:
            i += 1
            steps += 1
        if self.tracker is not None:
            self.tracker.add_work(float(steps))
            base = self._address_of(cell)
            for d in range(steps):
                self.tracker.access(base + 1 + d)
        return tid

    # -- vectorized entry points (batch peeling engine) ------------------------
    #
    # These methods process whole arrays of cells/cliques at once.  They
    # either charge the tracker the exact closed-form total the per-element
    # methods would (decode_many, add_count_at_many) or charge nothing and
    # hand the per-element charge profile back to the caller (lookup_many),
    # letting the batch engine splice probe/update address streams in the
    # scalar loop's order before replaying them.  See docs/cost-model.md.

    def route_charge_profile(self) -> tuple[int, int, int]:
        """Per-lookup routing charges ``(work, probes, addresses)``.

        Constants of the layout: what one :meth:`_route` call charges on
        top of the last-level probe loop.
        """
        if self.levels == 1:
            return 0, 0, 0
        if self.style == "array":
            return 1, 0, 1
        prefix_w = self.levels - 1
        return prefix_w, prefix_w, prefix_w

    def _route_addresses(self, cliques: np.ndarray) -> np.ndarray:
        """The ``(m, route_len)`` address matrix :meth:`_route` would touch."""
        if self.levels == 1:
            return np.empty((cliques.shape[0], 0), dtype=np.int64)
        if self.style == "array":
            return (self._level_addrs[0] + cliques[:, :1]).astype(np.int64)
        prefix_w = self.levels - 1
        level_addrs = np.asarray(self._level_addrs[:prefix_w], dtype=np.int64)
        return level_addrs[np.newaxis, :] + cliques[:, :prefix_w]

    def _route_many(self, cliques: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_route`: table ids per row (charging-free)."""
        m = cliques.shape[0]
        prefix_w = self.levels - 1
        if prefix_w == 0:
            return np.zeros(m, dtype=np.int64)
        if self.style == "array":
            return self._top_array[cliques[:, 0]]
        bits = self._encoder.bits_per_vertex
        if prefix_w * bits <= MAX_KEY_BITS:
            # _paths is in lexicographic row order, so fixed-width packed
            # codes are sorted and searchsorted recovers the table id.
            if self._path_code_table is None:
                packer = CliqueEncoder(self.n, prefix_w)
                self._path_code_table = packer.encode_many(self._paths) \
                    if self.n_tables else np.empty(0, dtype=np.uint64)
                self._path_packer = packer
            codes = self._path_packer.encode_many(cliques[:, :prefix_w])
            pos = np.searchsorted(self._path_code_table, codes)
            pos = np.minimum(pos, max(0, self.n_tables - 1))
            hit = self._path_code_table[pos] == codes if self.n_tables \
                else np.zeros(m, dtype=bool)
            return np.where(hit, pos, -1).astype(np.int64)
        return np.array(
            [self._path_to_tid.get(tuple(int(x) for x in row[:prefix_w]), -1)
             for row in cliques], dtype=np.int64)

    def lookup_many(self, cliques: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` over ``(m, r)`` ascending-vertex rows.

        Returns ``(cells, probes, slot_addrs, route_addrs)``: the global
        cell per row, the linear-probe count :meth:`cell_of` would report,
        the final-slot simulated address it would touch, and the
        ``(m, route_len)`` routing addresses preceding it.  Charges nothing
        --- callers apply :meth:`route_charge_profile` and the returned
        probe counts themselves.  Every row must be present in the table
        (the batch engine only looks up sub-cliques of stored cliques);
        raises ``KeyError`` otherwise.
        """
        cliques = np.asarray(cliques, dtype=np.int64).reshape(-1, self.r)
        m = cliques.shape[0]
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy(), \
                np.empty((0, self.route_charge_profile()[2]), dtype=np.int64)
        tids = self._route_many(cliques)
        if (tids < 0).any():
            raise KeyError("lookup_many requires every row to be present")
        keys = self._encoder.encode_many(cliques[:, self.levels - 1:])
        starts = self._starts[tids]
        masks = (self._caps[tids] - 1).astype(np.uint64)
        slots = (hash64_many(keys) & masks).astype(np.int64)
        probes = np.ones(m, dtype=np.int64)
        cells = np.empty(m, dtype=np.int64)
        active = np.arange(m)
        while active.size:
            found = self._keys[starts[active] + slots[active]]
            done = (found == keys[active]) | (found == _EMPTY)
            hit = active[done]
            cells[hit] = np.where(found[done] == keys[hit],
                                  starts[hit] + slots[hit], -1)
            active = active[~done]
            slots[active] = (slots[active] + 1) \
                & masks[active].astype(np.int64)
            probes[active] += 1
        if (cells < 0).any():
            raise KeyError("lookup_many requires every row to be present")
        slot_addrs = self._table_addr[tids] + slots
        return cells, probes, slot_addrs, self._route_addresses(cliques)

    def add_count_at_many(self, cells: np.ndarray, deltas: np.ndarray,
                          collect_addresses: bool = False
                          ) -> np.ndarray | None:
        """Vectorized :meth:`add_count_at`: ``np.add.at`` scatter plus the
        exact bulk charges (1 work + 1 atomic per update, applied in index
        order so float accumulation matches the scalar loop).

        With ``collect_addresses=True`` the per-update simulated addresses
        are *returned* instead of fed to the cache, so the caller can splice
        them into a larger in-order stream (see the batch engine).
        """
        cells = np.asarray(cells, dtype=np.int64)
        np.add.at(self._counts, cells, deltas)
        if self.tracker is None:
            return None
        self.tracker.add_work_int(cells.size)
        self.tracker.add_atomic(cells.size)
        addresses = self.addresses_of_many(cells)
        detector = self.tracker.race_detector
        if detector is not None:
            for address in addresses:
                detector.log(int(address), write=True, atomic=True)
        if collect_addresses:
            return addresses
        self.tracker.access_sequence(addresses)
        return None

    def add_count_many(self, cliques: np.ndarray, delta: float = 1.0,
                       collect_addresses: bool = False) -> np.ndarray | None:
        """Vectorized :meth:`add_count` over ``(m, r)`` ascending rows.

        Every row must already be present.  Charges exactly what ``m``
        scalar :meth:`add_count` calls would: per row the routing profile,
        ``probes * suffix_width`` work plus ``probes`` table probes, and
        one atomic; the count scatter runs in row order (``np.add.at``) so
        float accumulation matches the scalar loop, and the simulated
        address stream is each row's route addresses followed by its final
        slot address --- :meth:`add_count` touches no address for the count
        update itself.  With ``collect_addresses=True`` the stream is
        returned instead of replayed, as in :meth:`add_count_at_many`.
        """
        cliques = np.asarray(cliques, dtype=np.int64).reshape(-1, self.r)
        m = cliques.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64) if collect_addresses else None
        cells, probes, slot_addrs, route_addrs = self.lookup_many(cliques)
        np.add.at(self._counts, cells, delta)
        if self.tracker is None:
            return np.empty(0, dtype=np.int64) if collect_addresses else None
        route_work, route_probes, _ = self.route_charge_profile()
        total_probes = int(probes.sum())
        self.tracker.add_work_int(m * route_work
                                  + total_probes * self.suffix_width)
        self.tracker.add_probes(m * route_probes + total_probes)
        self.tracker.add_atomic(m)
        detector = self.tracker.race_detector
        if detector is not None:
            for address in self.addresses_of_many(cells):
                detector.log(int(address), write=True, atomic=True)
        addresses = np.concatenate(
            [route_addrs, slot_addrs[:, np.newaxis]], axis=1).reshape(-1)
        if collect_addresses:
            return addresses
        self.tracker.access_sequence(addresses)
        return None

    def addresses_of_many(self, cells: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_address_of`."""
        cells = np.asarray(cells, dtype=np.int64)
        tids = self._owner[cells]
        return self._table_addr[tids] + (cells - self._starts[tids])

    def decode_many(self, cells: np.ndarray, collect_addresses: bool = False
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`decode` with exact bulk charging.

        Returns ``(cliques, addresses, address_lens)`` where ``cliques`` is
        the ``(k, r)`` vertex matrix and, when ``collect_addresses`` is
        set, ``addresses`` / ``address_lens`` give the concatenated
        per-cell simulated address sequences the scalar decode would touch
        (in the same per-cell order).  Work is charged identically to ``k``
        scalar :meth:`decode` calls.
        """
        cells = np.asarray(cells, dtype=np.int64)
        k = cells.size
        empty_addr = np.empty(0, dtype=np.int64)
        zero_lens = np.zeros(k, dtype=np.int64)
        if k == 0:
            return np.empty((0, self.r), dtype=np.int64), empty_addr, zero_lens
        if self.inverse_map == "stored_pointers":
            tids = self._owner[cells]
            boundary = self._next_boundary_array()
            steps = np.minimum(boundary[cells + 1], self._starts[tids + 1]) \
                - cells
            tid_work = int(steps.sum())
            if collect_addresses:
                base = self.addresses_of_many(cells)
                addresses = np.repeat(base + 1, steps) \
                    + segment_offsets(steps)
                addr_lens = steps
            else:
                addresses, addr_lens = empty_addr, zero_lens
        else:
            tids = np.searchsorted(self._starts, cells, side="right") - 1
            tid_work = int(_log2(self.n_tables + 1)) * k
            if collect_addresses:
                addresses, addr_lens = self._bisect_addresses(cells)
            else:
                addresses, addr_lens = empty_addr, zero_lens
        if self.tracker is not None:
            self.tracker.add_work_int(tid_work + k * self.suffix_width)
        suffixes = self._encoder.decode_many(self._keys[cells])
        cliques = np.empty((k, self.r), dtype=np.int64)
        prefix_w = self.levels - 1
        if prefix_w:
            cliques[:, :prefix_w] = self._paths[tids]
        cliques[:, prefix_w:] = suffixes
        return cliques, addresses, addr_lens

    def _next_boundary_array(self) -> np.ndarray:
        """``b[p]``: smallest index >= p holding an empty key (else the cell
        count); the stored-pointer scan from ``cell`` stops at
        ``min(b[cell + 1], table end)``.  Keys are frozen after _build, so
        this is computed once."""
        if self._next_boundary is None:
            boundary = np.full(self.total_cells + 1, self.total_cells,
                               dtype=np.int64)
            empties = self._keys == _EMPTY
            idx = np.arange(self.total_cells, dtype=np.int64)
            vals = np.where(empties, idx, self.total_cells)
            boundary[:-1] = np.minimum.accumulate(vals[::-1])[::-1]
            self._next_boundary = boundary
        return self._next_boundary

    def _bisect_addresses(self, cells: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
        """Per-cell prefix-array addresses of the binary-search decode, as
        ``(concatenated addresses, per-cell lengths)`` in scalar order."""
        k = cells.size
        lo = np.zeros(k, dtype=np.int64)
        hi = np.full(k, self.n_tables, dtype=np.int64)
        columns: list[np.ndarray] = []
        masks: list[np.ndarray] = []
        alive = lo < hi
        while alive.any():
            mid = (lo + hi) // 2
            columns.append(self._prefix_addr + mid)
            masks.append(alive.copy())
            descend = self._starts[mid + 1] <= cells
            step = alive & descend
            lo[step] = mid[step] + 1
            hi[alive & ~descend] = mid[alive & ~descend]
            alive = lo < hi
        if not columns:
            return np.empty(0, dtype=np.int64), np.zeros(k, dtype=np.int64)
        addr_matrix = np.stack(columns, axis=1)
        mask_matrix = np.stack(masks, axis=1)
        return addr_matrix[mask_matrix], mask_matrix.sum(axis=1)

    # -- iteration --------------------------------------------------------------

    def occupied_cells(self) -> np.ndarray:
        """Cell indices of every stored r-clique (ascending)."""
        return np.flatnonzero(self._keys != _EMPTY)

    def __len__(self) -> int:
        return self.n_cliques

    def __repr__(self) -> str:
        kind = "one-level" if self.levels == 1 else (
            "two-level" if self.style == "array" else
            f"{self.levels}-multi-level")
        return (f"CliqueTable(r={self.r}, cliques={self.n_cliques}, {kind}, "
                f"contiguous={self.contiguous}, inverse={self.inverse_map}, "
                f"mem={self.memory_units}u)")
