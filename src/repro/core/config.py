"""Configuration of ARB-NUCLEUS-DECOMP's optimization knobs.

Every practical optimization of Section 5 is a switch here, so the tuning
experiments of Section 6.2 (Figures 8--11) are sweeps over
:class:`NucleusConfig` values.  Two factory methods encode the paper's
findings: :meth:`NucleusConfig.unoptimized` is the baseline configuration
of Section 6.2, and :meth:`NucleusConfig.optimal` is the best setting the
paper lands on (which differs between (2,3) and general (r,s)).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cliques.encode import min_levels


@dataclass(frozen=True)
class NucleusConfig:
    """All knobs of the nucleus decomposition implementation.

    Attributes
    ----------
    levels:
        Levels of the clique table ``T`` (Section 5.1); 1 = one-level.
    table_style:
        ``"array"`` = the two-level array+hash combination; ``"hash"`` =
        l-multi-level nested hash tables.  Ignored when ``levels == 1``.
    contiguous:
        Allocate last-level tables in one contiguous slab (Section 5.2).
    inverse_map:
        ``"binary_search"`` or ``"stored_pointers"`` (Section 5.3).
    relabel:
        Rename vertices by orientation rank before building ``T``
        (Section 5.4), making discovery order equal sorted order.
    aggregation:
        ``"array"``, ``"list_buffer"``, or ``"hash"`` for the updated-set
        ``U`` (Section 5.5).
    contraction:
        Periodically filter peeled edges out of adjacency lists; only legal
        for (r,s) = (2,3) (Section 5.6).
    bucketing:
        ``"julienne"`` (practical default), ``"fibonacci"`` (Theorem 4.2's
        structure), or ``"dense"`` (appendix variant).
    orientation:
        O(alpha)-orientation algorithm (see :mod:`repro.cliques.orient`).
    update_arithmetic:
        ``"fractional"`` -- the paper's atomic ``-1/a`` updates;
        ``"representative"`` -- exact-integer equivalent where only the
        least peeled r-clique of an s-clique subtracts 1.
    threads:
        Simulated thread count (drives the list buffer's cursor count and
        contention accounting).
    buffer_size:
        Block size of the list buffer.
    bucket_window:
        Number of low buckets Julienne materializes at once.
    engine:
        ``"scalar"`` -- the per-clique peeling loop (the oracle);
        ``"batch"`` -- the NumPy-vectorized batch peeling engine, which
        charges the identical simulated costs in closed form per peeled
        bucket (see docs/cost-model.md) but runs much faster on the host.
    listing_engine:
        ``"scalar"`` -- REC-LIST-CLIQUES as the per-vertex Python
        recursion (the oracle); ``"batch"`` -- the level-synchronous
        frontier engine of :mod:`repro.cliques.batchlist`, used by the
        count phase and (with ``engine="batch"``) the UPDATE completions
        during peeling.  Same bit-for-bit cost-parity contract as
        ``engine`` (see docs/cost-model.md); falls back to scalar when a
        race detector is attached.
    """

    levels: int = 2
    table_style: str = "array"
    contiguous: bool = True
    inverse_map: str = "stored_pointers"
    relabel: bool = True
    aggregation: str = "list_buffer"
    contraction: bool = False
    bucketing: str = "julienne"
    orientation: str = "goodrich_pszona"
    update_arithmetic: str = "fractional"
    threads: int = 60
    buffer_size: int = 64
    bucket_window: int = 64
    engine: str = "scalar"
    listing_engine: str = "scalar"

    @classmethod
    def unoptimized(cls) -> "NucleusConfig":
        """Section 6.2's baseline: one-level T, no relabeling, simple-array
        aggregation, no contraction."""
        return cls(levels=1, table_style="hash", contiguous=False,
                   inverse_map="binary_search", relabel=False,
                   aggregation="array", contraction=False)

    @classmethod
    def optimal(cls, r: int, s: int) -> "NucleusConfig":
        """The best overall setting found in Section 6.2.

        For (2,3): two-level T with contiguous space and stored pointers,
        hash-table aggregation, graph contraction, no relabeling.  For all
        other (r,s): the same T, list-buffer aggregation, graph relabeling.
        """
        if (r, s) == (2, 3):
            return cls(aggregation="hash", contraction=True, relabel=False)
        return cls(aggregation="list_buffer", relabel=True)

    def validated(self, n: int, r: int, s: int) -> "NucleusConfig":
        """Check the configuration against a concrete problem instance.

        Raises on impossible combinations; widens the table automatically
        when one-level keys cannot fit (the paper's infeasibility point for
        large r), returning a possibly-adjusted copy.
        """
        if not 1 <= r < s:
            raise ValueError(f"need 1 <= r < s, got r={r}, s={s}")
        if self.engine not in ("scalar", "batch"):
            raise ValueError(f"unknown engine {self.engine!r}; "
                             "options: 'scalar', 'batch'")
        if self.listing_engine not in ("scalar", "batch"):
            raise ValueError(f"unknown listing_engine "
                             f"{self.listing_engine!r}; "
                             "options: 'scalar', 'batch'")
        if self.contraction and (r, s) != (2, 3):
            raise ValueError("graph contraction only applies to (2,3) "
                             "nucleus decomposition (Section 5.6)")
        if self.inverse_map == "stored_pointers" and not self.contiguous:
            raise ValueError("stored pointers require contiguous memory")
        cfg = self
        if cfg.levels > r:
            cfg = replace(cfg, levels=r,
                          table_style="hash" if r != 2 else cfg.table_style)
        needed = min_levels(n, r)
        if cfg.levels < needed:
            cfg = replace(cfg, levels=needed,
                          table_style="hash" if needed != 2 else "array")
        if cfg.levels == 1:
            cfg = replace(cfg, inverse_map="binary_search", contiguous=False)
        if cfg.levels != 2 and cfg.table_style == "array":
            cfg = replace(cfg, table_style="hash")
        return cfg
