"""k-truss decomposition: the (2,3) specialization of the nucleus problem.

The paper frames k-truss as the k-(2,3) nucleus (Section 3) and reports it
under the *triangle-core* convention: the core number of an edge is the
maximum c such that the edge lives in a subgraph where every edge is in at
least c triangles (classic k-truss membership corresponds to c >= k - 2).

* :func:`k_truss` -- the tuned (2,3) path through ARB-NUCLEUS-DECOMP,
  using the paper's optimal configuration for (2,3): hash-table update
  aggregation plus graph contraction;
* :func:`trussness` -- convenience alias returning classical k-truss
  numbers (triangle-core + 2);
* :func:`max_truss_subgraph` -- the edge set of the innermost truss.
"""

from __future__ import annotations

from dataclasses import replace

from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker
from .config import NucleusConfig
from .decomp import NucleusResult, arb_nucleus_decomp


def k_truss(graph: CSRGraph, tracker: CostTracker | None = None,
            config: NucleusConfig | None = None,
            engine: str | None = None,
            listing_engine: str | None = None) -> NucleusResult:
    """Triangle-core numbers of every edge via (2,3) nucleus peeling.

    ``engine`` / ``listing_engine`` override the corresponding fields of
    ``config`` (convenience for routing the tuned (2,3) path through the
    batch engines without hand-building a config).
    """
    config = config or NucleusConfig.optimal(2, 3)
    if engine is not None:
        config = replace(config, engine=engine)
    if listing_engine is not None:
        config = replace(config, listing_engine=listing_engine)
    return arb_nucleus_decomp(graph, 2, 3, config, tracker)


def trussness(graph: CSRGraph) -> dict[tuple[int, int], int]:
    """Classical k-truss numbers: triangle-core + 2 per edge."""
    result = k_truss(graph)
    return {edge: core + 2 for edge, core in result.as_dict().items()}


def max_truss_subgraph(graph: CSRGraph) -> tuple[CSRGraph, list]:
    """The innermost (maximum) truss as an induced structure.

    Returns ``(subgraph, vertices)`` where ``subgraph`` contains exactly
    the edges at the maximum triangle-core, relabeled to ``0..k-1``, and
    ``vertices`` maps the subgraph's ids back to the input graph's.
    """
    result = k_truss(graph)
    cores = result.as_dict()
    top_edges = [edge for edge, core in cores.items()
                 if core == result.max_core]
    vertices = sorted({v for edge in top_edges for v in edge})
    local = {v: i for i, v in enumerate(vertices)}
    sub = CSRGraph.from_edges(
        len(vertices), [(local[u], local[v]) for u, v in top_edges])
    return sub, vertices
